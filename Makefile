# Convenience targets; everything works without make too.

.PHONY: install test test-fast bench reproduce examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

reproduce:
	python -m repro reproduce --scale small

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
