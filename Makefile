# Convenience targets; everything works without make too.
#
# CI (.github/workflows/ci.yml) invokes these exact targets, so local
# `make <target>` and the CI jobs cannot drift.  Knobs:
#   BENCH_SCALE     ?= tiny|small|medium|large  instance preset for bench targets
#   BENCH_GATE      ?= 0|1             1 makes bench-compare fail on regression
#   BENCH_JSON      ?= path            fresh document bench-compare diffs
#   BENCH_TOLERANCE ?= fraction        wall-time slack for bench-compare (0.5 =
#                                      +50%; generous because the committed
#                                      baseline and the runner differ)
#   EQ_SCALE        ?= preset          scale for the speedup-gated equivalence leg
#   EQ_MIN_SPEEDUP  ?= factor          required vectorized-over-naive speedup
#   OBS_SCALE       ?= preset          scale for the emission-overhead gate
#   OBS_RETRIES     ?= n               re-measure attempts for the obs gate
#   OUT_DIR         ?= dir             where campaign artifacts land

BENCH_SCALE ?= tiny
BENCH_GATE ?= 0
BENCH_BASELINE ?= benchmarks/baseline_tiny.json
BENCH_JSON ?= bench.json
BENCH_TOLERANCE ?= 0.5
EQ_SCALE ?= small
EQ_MIN_SPEEDUP ?= 3
OBS_SCALE ?= tiny
OBS_RETRIES ?= 2
OUT_DIR ?= out

.PHONY: install test test-fast test-slow bench bench-json bench-compare \
        equivalence obs-gate trace audit chaos adversary serve shard \
        resilience resilience-smoke lint reproduce examples clean

# Chaos campaign knobs (see docs/robustness.md).
CHAOS_SEED ?= 5
CHAOS_MAX_DEGRADATION ?= 1.05

# Adversary campaign knobs (see docs/robustness.md, "Byzantine model").
ADV_SEED ?= 3
ADV_MAX_DEGRADATION ?= 1.10
ADV_MIN_RECALL ?= 0.95

# Shard campaign knobs (see docs/robustness.md, "Partition tolerance").
SHARD_SEED ?= 2007
SHARD_PARTITION_SEED ?= 2007
SHARD_REGIONS ?= 8
SHARD_MAX_DEGRADATION ?= 1.0
SHARD_MIN_MSG_REDUCTION ?= 2

# Resilience campaign knobs (see docs/robustness.md, "Composed failure
# planes").
RESILIENCE_LOTTERY ?= 2
RESILIENCE_LOTTERY_SEED ?= 0

# Serving campaign knobs (see docs/serving.md).
SERVE_SEED ?= 11
SERVE_FAULT_SEED ?= 5
SERVE_MIN_AVAILABILITY ?= 0.99
SERVE_MAX_P99 ?= 150

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

test-slow:
	pytest tests/ -m slow

bench:
	REPRO_BENCH_SCALE=$(BENCH_SCALE) pytest benchmarks/ --benchmark-only

bench-json:
	REPRO_BENCH_SCALE=$(BENCH_SCALE) python -m repro bench --out bench.json

bench-compare:
	python -m repro bench --compare $(BENCH_BASELINE) $(BENCH_JSON) \
		--tolerance $(BENCH_TOLERANCE) \
		$(if $(filter 1,$(BENCH_GATE)),--fail-on-regression,)

# Prove the naive and vectorized AGT-RAM engines are bit-for-bit
# identical (winners, second prices, placements, full event stream) and
# that the vectorized engine actually earns its keep.  The tiny leg is
# an identity-only check; the $(EQ_SCALE) leg also enforces the speedup
# floor (see docs/performance.md for why tiny is excluded from it).
equivalence:
	python -m repro audit --compare-engines --scale tiny
	python -m repro audit --compare-engines --scale $(EQ_SCALE) \
		--repeats 5 --min-speedup $(EQ_MIN_SPEEDUP)

# Emission gate: prove the buffered columnar path is byte-equivalent to
# the legacy per-object path (deterministic, hard fail) and bound the
# eventing-on overhead against the per-scale budget (noisy half;
# re-measures on failure, keeping the best attempt — see
# docs/observability.md "The emission gate").
obs-gate:
	python -m repro audit --emission-gate --scale $(OBS_SCALE) \
		--retries $(OBS_RETRIES)

# bench-json plus the full observability exports: JSONL event log,
# Perfetto-loadable Chrome trace, OpenMetrics textfile.
trace:
	REPRO_BENCH_SCALE=$(BENCH_SCALE) python -m repro bench --out bench.json \
		--events events.jsonl --chrome-trace trace.json \
		--metrics-out metrics.prom

# Offline axiom verification of the recorded event log.
audit:
	python -m repro audit events.jsonl

# Seeded fault-injection campaign: lossy channel + crash schedule +
# central crashes, gated on OTC degradation, then audited offline.
chaos:
	python -m repro chaos --servers 16 --objects 60 --requests 8000 \
		--seed 101 --fault-seed $(CHAOS_SEED) \
		--central-crash-rate 0.03 \
		--max-degradation $(CHAOS_MAX_DEGRADATION) \
		--out-dir $(OUT_DIR) \
		--events chaos_events.jsonl --report chaos_report.json \
		--fault-log chaos_faults.json
	python -m repro audit $(OUT_DIR)/chaos_events.jsonl

# Seeded Byzantine campaign: misreports, malformed bids and collusion
# injected into the bid stream, gated on detection recall, zero false
# quarantines and OTC degradation, then audited offline.
adversary:
	python -m repro adversary --servers 12 --objects 40 --requests 4000 \
		--seed 5 --adv-seed $(ADV_SEED) \
		--fraction 0.25 --fraction 0.4 \
		--min-recall $(ADV_MIN_RECALL) \
		--max-degradation $(ADV_MAX_DEGRADATION) \
		--out-dir $(OUT_DIR) \
		--events adversary_events.jsonl --report adversary_report.json
	python -m repro audit $(OUT_DIR)/adversary_events.jsonl

# Resilient serving campaign: stream workload traffic against the
# auctioned placement while 5% of the servers crash per round, gated on
# availability and tail latency, then audited offline.  A second drift
# run exercises the drift-triggered incremental re-auction path.
serve:
	python -m repro serve --workload worldcup \
		--serve-seed $(SERVE_SEED) --fault-seed $(SERVE_FAULT_SEED) \
		--crash-rate 0.05 --straggler-rate 0.02 \
		--min-availability $(SERVE_MIN_AVAILABILITY) \
		--max-p99 $(SERVE_MAX_P99) \
		--out-dir $(OUT_DIR) \
		--events serve_events.jsonl --report serve_report.json
	python -m repro serve --workload drift \
		--serve-seed $(SERVE_SEED) \
		--min-availability $(SERVE_MIN_AVAILABILITY) \
		--out-dir $(OUT_DIR) \
		--events serve_drift_events.jsonl --report serve_drift_report.json
	python -m repro audit $(OUT_DIR)/serve_events.jsonl
	python -m repro audit $(OUT_DIR)/serve_drift_events.jsonl

# Partition-tolerance campaign: sweep partition fractions (with
# regional-central crashes) on the sharded central, gated on the
# null-schedule byte-identity, OTC degradation, and the message
# reduction vs the single central; then the per-shard + cross-shard
# audit re-verifies the recorded event log offline.
shard:
	python -m repro shard --scale tiny \
		--regions $(SHARD_REGIONS) --shard-seed $(SHARD_SEED) \
		--partition-seed $(SHARD_PARTITION_SEED) \
		--crash-rate 0.01 --check-null \
		--max-degradation $(SHARD_MAX_DEGRADATION) \
		--min-message-reduction $(SHARD_MIN_MSG_REDUCTION) \
		--out-dir $(OUT_DIR) \
		--events shard_events.jsonl --report shard_report.json \
		--plan-out shard_plans.json
	python -m repro audit --sharded $(OUT_DIR)/shard_events.jsonl

# Composed failure-plane survivability campaign: every catalog scenario
# (fault storm, Byzantine, split-brain, and the flash-crowd showcase
# composing all three) plus random lottery compositions, run over the
# sharded serving stack with the online invariant monitor armed, gated
# on availability / invariants / composed audits / degradation budget /
# detection recall.  Failing scenarios shrink to minimal repro JSONs in
# $(OUT_DIR).
resilience:
	python -m repro resilience \
		--lottery $(RESILIENCE_LOTTERY) \
		--lottery-seed $(RESILIENCE_LOTTERY_SEED) \
		--out-dir $(OUT_DIR) --report resilience_report.json

# CI-sized leg: the smallest catalog scenario plus one lottery ticket.
resilience-smoke:
	python -m repro resilience --scenario smoke \
		--lottery 1 --lottery-seed $(RESILIENCE_LOTTERY_SEED) \
		--out-dir $(OUT_DIR) --report resilience_report.json

lint:
	ruff check src/repro/obs
	ruff format --check src/repro/obs
	mypy src/repro/obs

reproduce:
	python -m repro reproduce --scale small

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .ruff_cache \
		.mypy_cache bench.json events.jsonl trace.json metrics.prom \
		out \
		chaos_events.jsonl chaos_report.json chaos_faults.json \
		adversary_events.jsonl adversary_report.json \
		serve_events.jsonl serve_report.json serve_drift_events.jsonl \
		serve_drift_report.json shard_events.jsonl shard_report.json \
		shard_plans.json
	find . -name __pycache__ -type d -exec rm -rf {} +
