"""Shared benchmark configuration (scales, grids, specs).

Every table and figure of the paper's evaluation has one file here; each
prints the same rows/series the paper reports (scaled sizes — see
DESIGN.md §3 and EXPERIMENTS.md) and registers one pytest-benchmark
measurement for the end-to-end experiment.

Scale can be lowered for smoke runs:  REPRO_BENCH_SCALE=tiny pytest benchmarks/
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.obs.report import bench_config, bench_scale

_SCALE = bench_scale()

#: Base configuration for figure sweeps (paper: M=3718, N=25,000 — the
#: N/M proportion and all knobs are preserved at reduced size).  The
#: presets live in :mod:`repro.obs.report` so the pytest-benchmark suite
#: and ``python -m repro bench`` measure identical instances.
BENCH_BASE: ExperimentConfig = bench_config(_SCALE)

#: Scaled Table 1 grid — 3x3 (M, N) sizes, proportions as in the paper.
#: The grids are defined for the smoke scales; the ``large`` preset
#: (nightly engine-scaling runs) reuses the medium grids — the figure
#: sweeps are about proportions, not absolute size.
_TABLE1_GRIDS: dict[str, tuple[tuple[int, int], ...]] = {
    "tiny": ((12, 40), (12, 60), (16, 40), (16, 60)),
    "small": (
        (30, 150), (30, 200), (30, 250),
        (40, 150), (40, 200), (40, 250),
        (50, 150), (50, 200), (50, 250),
    ),
    "medium": (
        (60, 300), (60, 400), (60, 500),
        (80, 300), (80, 400), (80, 500),
        (100, 300), (100, 400), (100, 500),
    ),
}
TABLE1_BENCH_GRID: tuple[tuple[int, int], ...] = _TABLE1_GRIDS.get(
    _SCALE, _TABLE1_GRIDS["medium"]
)

#: Scaled Table 2 instance specs (M, N, C%, R/W), rows as in the paper.
_TABLE2_SPECS: dict[str, tuple[tuple[int, int, float, float], ...]] = {
    "tiny": ((10, 40, 0.2, 0.75), (14, 56, 0.3, 0.9)),
    "small": (
        (16, 70, 0.20, 0.75),
        (20, 90, 0.20, 0.80),
        (24, 110, 0.25, 0.95),
        (28, 130, 0.35, 0.95),
        (32, 160, 0.25, 0.75),
        (36, 190, 0.30, 0.65),
        (38, 190, 0.25, 0.85),
        (40, 220, 0.25, 0.65),
        (44, 250, 0.35, 0.50),
        (46, 250, 0.10, 0.40),
    ),
    "medium": (
        (30, 140, 0.20, 0.75),
        (40, 180, 0.20, 0.80),
        (50, 220, 0.25, 0.95),
        (60, 280, 0.35, 0.95),
        (70, 380, 0.25, 0.75),
        (80, 480, 0.30, 0.65),
        (85, 480, 0.25, 0.85),
        (90, 580, 0.25, 0.65),
        (95, 650, 0.35, 0.50),
        (100, 650, 0.10, 0.40),
    ),
}
TABLE2_BENCH_SPECS: tuple[tuple[int, int, float, float], ...] = _TABLE2_SPECS.get(
    _SCALE, _TABLE2_SPECS["medium"]
)
