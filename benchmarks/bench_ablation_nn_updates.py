"""Ablation: eager vs lazy NN-table broadcasts (DESIGN.md §5).

The paper's protocol broadcasts the NN update after every allocation
(Figure 2 lines 19–21).  Broadcasting every T rounds instead trades
NN-update message volume against bid staleness; this bench measures the
frontier.
"""

from _config import BENCH_BASE
from repro.experiments.instances import paper_instance
from repro.runtime.simulator import SemiDistributedSimulator
from repro.utils.tables import render_table

PERIODS = (1, 4, 16)


def run_ablation():
    instance = paper_instance(
        BENCH_BASE.with_(
            n_servers=24,
            n_objects=100,
            total_requests=15_000,
            rw_ratio=0.95,
            capacity_fraction=0.4,
            name="nn-ablation",
        )
    )
    out = []
    for period in PERIODS:
        res = SemiDistributedSimulator(nn_update_period=period).run(instance)
        metrics = res.extra["metrics"]
        out.append(
            {
                "period": period,
                "savings": res.savings_percent,
                "nn_messages": metrics.log.counts.get("NNUpdateMessage", 0),
                "replicas": res.replicas_allocated,
            }
        )
    return out


def test_nn_update_cadence_ablation(benchmark, report):
    data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [d["period"], d["savings"], d["nn_messages"], d["replicas"]]
        for d in data
    ]
    report(
        render_table(
            ["broadcast period", "savings (%)", "NN-update msgs", "replicas"],
            rows,
            title="Ablation — NN-table broadcast cadence (eager=1 is the paper)",
        )
    )
    eager, *lazies = data
    for lazy in lazies:
        # Lazy protocols save NN-update messages...
        assert lazy["nn_messages"] < eager["nn_messages"]
        # ...and can only lose solution quality.
        assert lazy["savings"] <= eager["savings"] + 0.5
    benchmark.extra_info["eager_savings"] = round(eager["savings"], 2)
    benchmark.extra_info["laziest_savings"] = round(data[-1]["savings"], 2)
