"""Ablation: second-price (Axiom 5) vs first-price payments.

The design claim: the second-best payment is what makes truth-telling
dominant.  Measured as the best one-shot utility gain a strategic agent
can extract under each rule — zero (to numerical noise) under second
price, strictly positive under first price.
"""

from _config import BENCH_BASE
from repro.core.strategies import OverProjection, UnderProjection
from repro.core.equilibrium import truthfulness_gap
from repro.experiments.instances import paper_instance
from repro.utils.tables import render_table


def run_ablation():
    instance = paper_instance(
        BENCH_BASE.with_(rw_ratio=0.9, capacity_fraction=0.4, name="ablation-pay")
    )
    strategies = {
        "over x2": lambda: OverProjection(2.0),
        "under x0.5": lambda: UnderProjection(0.5),
    }
    results = {}
    for rule in ("second_price", "first_price"):
        for label, factory in strategies.items():
            # Sample every agent: only the round winner can profit from
            # first-price bid shading, and it must be in the sample.
            comps = truthfulness_gap(
                instance,
                factory,
                n_agents=instance.n_servers,
                payment_rule=rule,
                one_shot=True,
                seed=10,
            )
            results[(rule, label)] = max(c.gain_from_deviation for c in comps)
    return results


def test_payment_rule_ablation(benchmark, report):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [rule, label, gain] for (rule, label), gain in sorted(results.items())
    ]
    report(
        render_table(
            ["payment rule", "strategy", "best deviation gain"],
            rows,
            title="Ablation — manipulability by payment rule "
            "(gain > 0 means lying pays)",
        )
    )
    # Second price: no manipulation ever profits.
    assert results[("second_price", "over x2")] <= 1e-9
    assert results[("second_price", "under x0.5")] <= 1e-9
    # First price: bid-shading profits for at least one agent.
    assert results[("first_price", "under x0.5")] > 0.0
