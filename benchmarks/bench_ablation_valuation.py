"""Ablation: the price of semi-distribution.

AGT-RAM's agents value objects with their private Eq. 5 CoR.  Swapping
in the exact global ΔOTC oracle (hypothetically telling every agent how
everyone else would benefit) recovers Greedy-grade quality — so the gap
between the two runs *is* the cost of keeping valuations private and
local, and the runtime gap is what the locality buys back.
"""

from _config import BENCH_BASE
from repro.core.agt_ram import run_agt_ram
from repro.experiments.instances import paper_instance
from repro.utils.tables import render_table


def run_ablation():
    instance = paper_instance(
        BENCH_BASE.with_(rw_ratio=0.95, capacity_fraction=0.45, name="ablation-val")
    )
    local = run_agt_ram(instance, valuation="local")
    glob = run_agt_ram(instance, valuation="global")
    return local, glob


def test_valuation_oracle_ablation(benchmark, report):
    local, glob = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        ["local CoR (paper)", local.savings_percent, local.runtime_s * 1e3,
         local.replicas_allocated],
        ["global ΔOTC (oracle)", glob.savings_percent, glob.runtime_s * 1e3,
         glob.replicas_allocated],
    ]
    report(
        render_table(
            ["valuation", "savings (%)", "runtime (ms)", "replicas"],
            rows,
            title="Ablation — local vs global valuation oracle "
            "[R/W=0.95, C=45%]",
        )
    )
    benchmark.extra_info["locality_quality_cost_pct"] = round(
        glob.savings_percent - local.savings_percent, 2
    )
    # The oracle can only improve quality...
    assert glob.savings_percent >= local.savings_percent - 1e-9
    # ...but the local engine is far cheaper per round.
    assert local.runtime_s < glob.runtime_s
