"""Extension: adaptive re-replication under demand drift.

The paper frames AGT-RAM as "a protocol for automatic replication and
migration of objects in response to demand changes."  Measured over
drifting Zipf popularity: freezing the epoch-0 scheme decays; the
adaptive evict-then-reallocate protocol tracks the rebuild-from-scratch
quality ceiling at a fraction of its migration volume.
"""

from _config import BENCH_BASE
from repro.core.adaptive import AdaptiveReplicator
from repro.experiments.instances import paper_instance
from repro.utils.tables import render_table
from repro.workload.drift import drifting_workloads

N_EPOCHS = 5


def run_policies():
    template = paper_instance(
        BENCH_BASE.with_(rw_ratio=0.95, capacity_fraction=0.4, name="adaptive")
    )
    epochs = drifting_workloads(
        template.n_servers,
        template.n_objects,
        N_EPOCHS,
        total_requests=BENCH_BASE.total_requests,
        rw_ratio=0.95,
        drift_fraction=0.3,
        seed=BENCH_BASE.seed,
    )
    return {
        policy: AdaptiveReplicator(policy=policy).run(template, epochs)
        for policy in ("static", "adaptive", "rebuild")
    }


def test_adaptive_replication(benchmark, report):
    outcomes = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    rows = []
    for policy, out in outcomes.items():
        rows.append(
            [
                policy,
                out[0].savings_percent,
                out[-1].savings_percent,
                sum(o.evictions for o in out),
                sum(o.migration_volume for o in out[1:]),
            ]
        )
    report(
        render_table(
            [
                "policy",
                "epoch-0 savings (%)",
                "final-epoch savings (%)",
                "evictions",
                "migration volume (epochs 1+)",
            ],
            rows,
            title=f"Adaptive re-replication over {N_EPOCHS} drifting epochs",
        )
    )

    static, adaptive, rebuild = (
        outcomes["static"],
        outcomes["adaptive"],
        outcomes["rebuild"],
    )
    # Drift erodes the frozen scheme; adaptation recovers most of it.
    # (The recovery ratio vs rebuild shrinks at tiny scales where one
    # drift step reshuffles most of the catalog — keep the bound loose
    # enough to be scale-robust.)
    assert adaptive[-1].savings_percent > static[-1].savings_percent
    assert adaptive[-1].savings_percent > 0.6 * rebuild[-1].savings_percent
    # Adaptation migrates less than rebuilding every epoch.
    assert sum(o.migration_volume for o in adaptive[1:]) < sum(
        o.migration_volume for o in rebuild[1:]
    )
    benchmark.extra_info["static_decay_pp"] = round(
        static[0].savings_percent - static[-1].savings_percent, 2
    )
