"""Micro-benchmarks of the library's hot paths.

These are regression guards rather than paper reproductions: cost-matrix
construction, full OTC evaluation, the local benefit engine's round
update, and one complete AGT-RAM run on the small preset.
"""

import pytest

from _config import BENCH_BASE
from repro.core.agt_ram import run_agt_ram
from repro.drp.benefit import BenefitEngine
from repro.drp.cost import total_otc
from repro.drp.state import ReplicationState
from repro.experiments.instances import paper_instance
from repro.topology import cost_matrix, random_graph


@pytest.fixture(scope="module")
def instance():
    return paper_instance(BENCH_BASE.with_(rw_ratio=0.9, name="micro"))


def test_cost_matrix_build(benchmark):
    topo = random_graph(BENCH_BASE.n_servers, 0.4, seed=0)
    benchmark(cost_matrix, topo)


def test_total_otc_eval(benchmark, instance):
    state = ReplicationState.primaries_only(instance)
    # A mid-density scheme is the representative workload.
    engine = BenefitEngine(instance, state)
    for _ in range(instance.n_servers):
        vals, objs = engine.best_per_server()
        import numpy as np

        w = int(np.argmax(vals))
        if not np.isfinite(vals[w]) or vals[w] <= 0:
            break
        state.add_replica(w, int(objs[w]))
        engine.notify_allocation(w, int(objs[w]))
    benchmark(total_otc, state)


def test_benefit_engine_round(benchmark, instance):
    state = ReplicationState.primaries_only(instance)
    engine = BenefitEngine(instance, state)

    import numpy as np

    def one_round():
        vals, objs = engine.best_per_server()
        return int(np.argmax(vals))

    benchmark(one_round)


def test_agt_ram_end_to_end(benchmark, instance):
    benchmark.pedantic(lambda: run_agt_ram(instance), rounds=3, iterations=1)
