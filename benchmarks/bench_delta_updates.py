"""Cost-model policy sweep: partial-update shipping (Section 2 footnote).

"We can move only the updated parts of it (modeling such policies can
also be done using our framework)" — measured: shrinking the shipped
fraction δ makes replicas cheaper to keep current, so savings rise and
replication spreads, most dramatically on write-heavy workloads where
whole-object shipping shuts replication down entirely.
"""

from _config import BENCH_BASE
from repro.core.agt_ram import run_agt_ram
from repro.drp.transforms import delta_update_instance
from repro.experiments.instances import paper_instance
from repro.utils.tables import render_table

DELTAS = (1.0, 0.5, 0.2, 0.05)


def run_sweep():
    instance = paper_instance(
        BENCH_BASE.with_(rw_ratio=0.70, capacity_fraction=0.4, name="delta")
    )
    out = []
    for delta in DELTAS:
        inst = delta_update_instance(instance, delta)
        res = run_agt_ram(inst)
        out.append(
            {
                "delta": delta,
                "savings": res.savings_percent,
                "replicas": res.replicas_allocated,
            }
        )
    return out


def test_partial_update_policy(benchmark, report):
    data = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [[d["delta"], d["savings"], d["replicas"]] for d in data]
    report(
        render_table(
            ["shipped fraction δ", "AGT-RAM savings (%)", "replicas"],
            rows,
            title="Partial-update shipping on a 70%-read workload "
            "(δ=1 is the paper's whole-object assumption)",
        )
    )
    savings = [d["savings"] for d in data]
    replicas = [d["replicas"] for d in data]
    # Monotone: cheaper updates -> more replication -> more savings.
    assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))
    assert all(b >= a for a, b in zip(replicas, replicas[1:]))
    benchmark.extra_info["savings_delta_1.0"] = round(savings[0], 2)
    benchmark.extra_info["savings_delta_0.05"] = round(savings[-1], 2)
