"""Figure 3: OTC savings (%) vs server capacity, R/W = 0.95.

Paper shape: steep initial gains that flatten once the most beneficial
objects are replicated; AGT-RAM and Greedy lead; GRA trails; methods
within ~15% of each other at high capacity.
"""

from _config import BENCH_BASE
from repro.experiments.figures import figure3_capacity_sweep
from repro.experiments.report import format_series

CAPACITIES = (0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40)


def test_fig3_capacity_sweep(benchmark, report):
    series = benchmark.pedantic(
        lambda: figure3_capacity_sweep(
            base=BENCH_BASE, capacities=CAPACITIES, seed=3
        ),
        rounds=1,
        iterations=1,
    )
    report(
        format_series(
            series,
            x_label="capacity C",
            title="Figure 3 — OTC savings (%) vs server capacity [R/W=0.95]",
        )
    )
    # Record headline numbers in the benchmark JSON.
    for alg, pts in series.items():
        benchmark.extra_info[f"savings_at_40pct[{alg}]"] = round(pts[-1][1], 2)

    # Shape assertions (the reproduction's contract).
    agt = dict(series["AGT-RAM"])
    assert agt[0.40] >= agt[0.10]
    first_gain = agt[0.25] - agt[0.10]
    late_gain = agt[0.40] - agt[0.25]
    assert first_gain >= late_gain - 1.0  # diminishing returns
    gra = dict(series["GRA"])
    assert gra[0.40] <= agt[0.40]  # GRA trails AGT-RAM
