"""Figure 4: OTC savings (%) vs read/write ratio, C = 45%.

Paper shape: savings grow with the read share for every method
(replication pays when reads dominate); AGT-RAM and Greedy climb
highest while GRA saturates far lower.
"""

from _config import BENCH_BASE
from repro.experiments.figures import figure4_rw_sweep
from repro.experiments.report import format_series

RATIOS = (0.05, 0.20, 0.35, 0.50, 0.65, 0.80, 0.95)


def test_fig4_rw_sweep(benchmark, report):
    series = benchmark.pedantic(
        lambda: figure4_rw_sweep(base=BENCH_BASE, ratios=RATIOS, seed=4),
        rounds=1,
        iterations=1,
    )
    report(
        format_series(
            series,
            x_label="R/W ratio",
            title="Figure 4 — OTC savings (%) vs read/write ratio [C=45%]",
        )
    )
    for alg, pts in series.items():
        benchmark.extra_info[f"savings_at_rw95[{alg}]"] = round(pts[-1][1], 2)

    # Shape assertions.
    for alg in ("AGT-RAM", "Greedy", "DA", "EA"):
        pts = dict(series[alg])
        assert pts[0.95] > pts[0.35], alg  # read-heavy saves more
    agt, gra = dict(series["AGT-RAM"]), dict(series["GRA"])
    assert agt[0.95] > gra[0.95]  # the paper's headline gap
