"""Extension (paper §7): hierarchical/regional mechanisms.

"This would enable the system to be less vulnerable to the failures of
a single mechanism" — measured: the sequential two-level game exactly
reproduces the flat mechanism; the concurrent regional game converges
in far fewer global rounds for a small quality cost; and killing one
regional body degrades savings gracefully where the flat design would
lose everything.
"""

from _config import BENCH_BASE
from repro.core.agt_ram import run_agt_ram
from repro.core.hierarchical import HierarchicalAGTRam
from repro.experiments.instances import paper_instance
from repro.utils.tables import render_table

N_REGIONS = 5


def run_all():
    instance = paper_instance(
        BENCH_BASE.with_(rw_ratio=0.95, capacity_fraction=0.45, name="hier")
    )
    flat = run_agt_ram(instance)
    seq = HierarchicalAGTRam(n_regions=N_REGIONS, mode="sequential", seed=1).run(
        instance
    )
    con = HierarchicalAGTRam(n_regions=N_REGIONS, mode="concurrent", seed=1).run(
        instance
    )
    coop = HierarchicalAGTRam(
        n_regions=N_REGIONS, mode="concurrent", regional_game="cooperative", seed=1
    ).run(instance)
    one_down = HierarchicalAGTRam(
        n_regions=N_REGIONS, mode="concurrent", seed=1, failed_regions=[0]
    ).run(instance)
    return {
        "flat": flat,
        "sequential": seq,
        "concurrent": con,
        "concurrent+cooperative": coop,
        "1-region-down": one_down,
    }


def test_hierarchical_extension(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, res.savings_percent, res.rounds, res.replicas_allocated]
        for name, res in results.items()
    ]
    report(
        render_table(
            ["variant", "savings (%)", "global rounds", "replicas"],
            rows,
            title=f"Hierarchical mechanism ({N_REGIONS} regions) vs flat "
            "[R/W=0.95, C=45%]",
        )
    )
    flat, seq, con, down = (
        results["flat"],
        results["sequential"],
        results["concurrent"],
        results["1-region-down"],
    )
    import numpy as np

    # Sequential two-level game is allocation-identical to flat.
    assert np.array_equal(seq.state.x, flat.state.x)
    # Concurrent autonomy: ~n_regions x fewer global rounds...
    assert con.rounds < flat.rounds * 0.6
    # ...at a bounded quality cost.
    assert con.savings_percent > 0.85 * flat.savings_percent
    # Failure resilience: one dead region still leaves most of the value.
    assert down.savings_percent > 0.6 * flat.savings_percent
    benchmark.extra_info["concurrent_round_reduction"] = round(
        1 - con.rounds / flat.rounds, 3
    )
