"""Optimality gap of every method against the exact solver.

The paper cannot report this (NP-complete at its scale); at toy scale
the exact branch-and-bound anchors the whole comparison: how much of
the truly available savings does each method capture, and how much of
the AGT-RAM/Greedy gap is real headroom vs. shared suboptimality.
"""

import statistics

from repro.baselines.optimal import OptimalPlacer
from repro.drp.cost import primary_only_otc
from repro.drp.instance import build_instance
from repro.experiments.runner import run_algorithms
from repro.topology import random_graph
from repro.utils.tables import render_table
from repro.workload.synthetic import synthesize_workload

ALGS = ("Greedy", "AGT-RAM", "DA", "EA", "GRA")
N_INSTANCES = 4


def tiny_instances():
    out = []
    for seed in range(N_INSTANCES):
        topo = random_graph(5, 0.5, seed=seed)
        w = synthesize_workload(
            5, 5, total_requests=800, rw_ratio=0.9, server_skew=1.0, seed=seed
        )
        out.append(
            build_instance(topo, w, capacity_fraction=0.4, seed=seed,
                           name=f"tiny-{seed}")
        )
    return out


def run_gap_study():
    rows = []
    for inst in tiny_instances():
        base = primary_only_otc(inst)
        opt = OptimalPlacer().place(inst)
        optimal_savings = base - opt.otc
        results = run_algorithms(
            inst, ALGS,
            placer_kwargs={"GRA": {"population_size": 10, "generations": 15}},
        )
        captured = {}
        for alg, res in results.items():
            saved = base - res.otc
            captured[alg] = (
                100.0 * saved / optimal_savings if optimal_savings > 0 else 100.0
            )
        rows.append((inst.name, captured))
    return rows


def test_optimality_gap(benchmark, report):
    rows = benchmark.pedantic(run_gap_study, rounds=1, iterations=1)
    table = [
        [name] + [captured[a] for a in ALGS] for name, captured in rows
    ]
    report(
        render_table(
            ["instance"] + list(ALGS),
            table,
            title="%% of the optimal savings captured (exact solver = 100)",
        )
    )
    mean_captured = {
        a: statistics.mean(captured[a] for _, captured in rows) for a in ALGS
    }
    for a, v in mean_captured.items():
        benchmark.extra_info[f"captured[{a}]"] = round(v, 2)

    # No method exceeds the optimum, greedy is near-optimal, and even
    # the local mechanism captures most of the true headroom.  (At toy
    # scale GRA's population search can rival the mechanisms — its
    # weakness only emerges with size, see Figure 3/4 benches — so no
    # GRA ordering is asserted here.)
    for _, captured in rows:
        for a in ALGS:
            assert captured[a] <= 100.0 + 1e-6
    assert mean_captured["Greedy"] >= 95.0
    assert mean_captured["AGT-RAM"] >= 70.0
