"""Protocol-level scalability of the semi-distributed design.

Measures what the paper argues qualitatively: the central body's load
(one binary decision per round) and the protocol byte volume grow
gently with system size, while the heavy valuation work stays on the
servers and parallelizes (PARFOR speedup ~ M).
"""

from _config import BENCH_BASE
from repro.experiments.instances import paper_instance
from repro.runtime.simulator import SemiDistributedSimulator
from repro.utils.tables import render_table

SIZES = (10, 20, 40)


def run_scaling():
    out = []
    for m in SIZES:
        cfg = BENCH_BASE.with_(
            n_servers=m,
            n_objects=4 * m,
            total_requests=400 * m,
            rw_ratio=0.9,
            capacity_fraction=0.35,
            name=f"protocol-{m}",
        )
        inst = paper_instance(cfg)
        res = SemiDistributedSimulator().run(inst)
        metrics = res.extra["metrics"]
        out.append(
            {
                "m": m,
                "rounds": metrics.rounds,
                "messages": metrics.log.total_messages(),
                "kbytes": metrics.log.bytes_total / 1024.0,
                "speedup": metrics.parallel_speedup,
            }
        )
    return out


def test_protocol_overhead_scaling(benchmark, report):
    data = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    rows = [
        [d["m"], d["rounds"], d["messages"], d["kbytes"], d["speedup"]]
        for d in data
    ]
    report(
        render_table(
            ["servers M", "rounds", "messages", "protocol kB", "PARFOR speedup"],
            rows,
            title="Semi-distributed protocol overhead vs system size",
        )
    )
    # The PARFOR speedup must grow with the agent population: the heavy
    # work is on the servers, which is the semi-distributed claim.
    speedups = [d["speedup"] for d in data]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > SIZES[-1] / 4  # meaningful fraction of M
