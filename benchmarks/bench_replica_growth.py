"""Section 5's replica-count observation: "the increase in capacity from
10% to 18% resulted in 4 times (on average) more replicas for all the
algorithms".

At our scale the growth factor depends on workload skew; the claim to
preserve is super-linear early replica growth (factor well above the
1.8x capacity increase itself), roughly uniform across methods.
"""

import statistics

from _config import BENCH_BASE
from repro.experiments.figures import replica_growth
from repro.utils.tables import render_table

ALGS = ("Greedy", "AGT-RAM", "DA", "EA")


def test_replica_growth_10_to_18(benchmark, report):
    growth = benchmark.pedantic(
        lambda: replica_growth(
            base=BENCH_BASE,
            algorithms=ALGS,
            capacities=(0.10, 0.18),
            seed=9,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [[alg, factor] for alg, factor in growth.items()]
    report(
        render_table(
            ["method", "replica growth (C 10% -> 18%)"],
            rows,
            title="Replica-count growth when capacity rises 10% -> 18%",
        )
    )
    benchmark.extra_info["mean_growth"] = round(
        statistics.mean(growth.values()), 2
    )
    # Every method allocates strictly more replicas with more room.  The
    # paper reports ~4x for 10%->18%; our capacity normalization (C% of
    # the whole catalog per server) makes C=10% far less binding, so the
    # measured factor is smaller — see EXPERIMENTS.md.
    for alg, factor in growth.items():
        assert factor > 1.1, alg
    assert statistics.mean(growth.values()) > 1.25
