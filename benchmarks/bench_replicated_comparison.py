"""Multi-draw replication of the headline comparison.

The paper evaluated every setup thirteen times (one per Friday log) and
reported averages.  This bench replicates the headline regime across
independent instance draws and reports mean ± std — confirming the
orderings are not one-seed artifacts.
"""

from _config import BENCH_BASE
from repro.experiments.replication import replicate_comparison
from repro.utils.tables import render_table

N_REPS = 5
ALGS = ("Greedy", "AGT-RAM", "DA", "EA", "GRA")


def test_replicated_headline_comparison(benchmark, report):
    rc = benchmark.pedantic(
        lambda: replicate_comparison(
            BENCH_BASE.with_(
                n_servers=24,
                n_objects=100,
                total_requests=15_000,
                rw_ratio=0.95,
                capacity_fraction=0.45,
                name="replicated",
            ),
            n_replications=N_REPS,
            algorithms=ALGS,
            placer_kwargs={"GRA": {"population_size": 10, "generations": 10}},
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            alg,
            s.savings_mean,
            s.savings_std,
            s.runtime_mean * 1e3,
            s.replicas_mean,
        ]
        for alg, s in rc.summaries.items()
    ]
    report(
        render_table(
            ["method", "savings mean (%)", "std", "runtime mean (ms)", "replicas"],
            rows,
            title=f"Headline comparison over {N_REPS} independent draws "
            "[R/W=0.95, C=45%]",
        )
    )

    means = rc.mean_savings()
    # The orderings reported in Tables 1-2 hold on averages too.
    assert means["AGT-RAM"] > means["GRA"]
    assert means["AGT-RAM"] >= means["EA"] - 0.5
    assert means["Greedy"] >= means["AGT-RAM"] - 1e-9
    times = rc.mean_runtimes()
    assert times["AGT-RAM"] < times["Greedy"]
    assert times["AGT-RAM"] < times["GRA"]
