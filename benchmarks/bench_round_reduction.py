"""Round-reduction variants: batched rounds and concurrent regions.

Every mechanism round is a synchronization of the whole system, so
deployments care about the rounds-vs-quality frontier.  Two variants
trade intra-round staleness for fewer rounds: AGT-RAM's batched rounds
(the paper's "list of objects" phrasing) and the hierarchical
concurrent mode (§7).  This bench maps the frontier.
"""

from _config import BENCH_BASE
from repro.core.agt_ram import AGTRam
from repro.core.hierarchical import HierarchicalAGTRam
from repro.experiments.instances import paper_instance
from repro.utils.tables import render_table


def run_frontier():
    instance = paper_instance(
        BENCH_BASE.with_(rw_ratio=0.95, capacity_fraction=0.45, name="rounds")
    )
    variants = {
        "Figure 2 (1/round)": AGTRam(),
        "batched B=4": AGTRam(batch_size=4),
        "batched B=16": AGTRam(batch_size=16),
        "concurrent 5 regions": HierarchicalAGTRam(
            n_regions=5, mode="concurrent", seed=2
        ),
    }
    out = {}
    for label, mech in variants.items():
        out[label] = mech.run(instance)
    return out


def test_round_reduction_frontier(benchmark, report):
    results = benchmark.pedantic(run_frontier, rounds=1, iterations=1)
    base = results["Figure 2 (1/round)"]
    rows = [
        [
            label,
            res.rounds,
            res.savings_percent,
            res.savings_percent - base.savings_percent,
        ]
        for label, res in results.items()
    ]
    report(
        render_table(
            ["variant", "rounds", "savings (%)", "Δ vs Figure 2 (pp)"],
            rows,
            title="Rounds-vs-quality frontier [R/W=0.95, C=45%]",
        )
    )
    for label, res in results.items():
        if label == "Figure 2 (1/round)":
            continue
        # Every variant cuts rounds substantially...
        assert res.rounds < 0.7 * base.rounds, label
        # ...while staying within a few points of the eager quality.
        assert res.savings_percent > base.savings_percent - 5.0, label
    benchmark.extra_info["base_rounds"] = base.rounds
    benchmark.extra_info["best_reduction"] = min(
        r.rounds for l, r in results.items() if l != "Figure 2 (1/round)"
    )
