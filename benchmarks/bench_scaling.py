"""Runtime scaling of AGT-RAM vs Greedy with system size.

Theorem 4's O(M·N²) worst case aside, the practical scaling story is
the per-round costs: AGT-RAM pays O(M + N) incremental updates plus an
O(MN) argmax per allocation, while Greedy pays an extra O(M²) exact
column refresh.  Doubling M should therefore widen the gap — the
mechanism's scalability claim, measured.
"""

import numpy as np

from repro.baselines.greedy import GreedyPlacer
from repro.core.agt_ram import run_agt_ram
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.utils.tables import render_table

SIZES = ((40, 200), (80, 400), (160, 800))


def run_scaling():
    out = []
    for m, n in SIZES:
        cfg = ExperimentConfig(
            n_servers=m,
            n_objects=n,
            total_requests=5 * m * n,
            rw_ratio=0.9,
            capacity_fraction=0.35,
            seed=31,
            name=f"scale-{m}x{n}",
        )
        inst = paper_instance(cfg)
        agt = run_agt_ram(inst)
        greedy = GreedyPlacer().place(inst)
        out.append(
            {
                "m": m,
                "n": n,
                "agt_s": agt.runtime_s,
                "greedy_s": greedy.runtime_s,
                "agt_savings": agt.savings_percent,
                "greedy_savings": greedy.savings_percent,
            }
        )
    return out


def test_runtime_scaling(benchmark, report):
    data = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    rows = [
        [
            f"M={d['m']}, N={d['n']}",
            d["agt_s"],
            d["greedy_s"],
            d["greedy_s"] / d["agt_s"],
            d["agt_savings"],
            d["greedy_savings"],
        ]
        for d in data
    ]
    report(
        render_table(
            [
                "size",
                "AGT-RAM (s)",
                "Greedy (s)",
                "Greedy/AGT-RAM",
                "AGT-RAM savings (%)",
                "Greedy savings (%)",
            ],
            rows,
            title="Runtime scaling with system size (request density fixed)",
        )
    )
    # AGT-RAM stays ahead at every size and the gap does not shrink as
    # the system quadruples twice.
    ratios = [d["greedy_s"] / d["agt_s"] for d in data]
    for d in data:
        assert d["agt_s"] < d["greedy_s"], d
    assert ratios[-1] > 0.8 * ratios[0]
    benchmark.extra_info["speedup_smallest"] = round(ratios[0], 2)
    benchmark.extra_info["speedup_largest"] = round(ratios[-1], 2)
