"""Runtime scaling of the AGT-RAM engines with system size.

Theorem 4's O(M·N²) worst case aside, the practical scaling story is
the per-round cost: the naive engine rebuilds the full (M, N) benefit
matrix and argmaxes it every round, while the vectorized engine
delta-maintains each agent's dominant report from the NN broadcast's
dirty set — O(M + |dirty|·N) per round (see docs/performance.md).
Doubling the system should therefore *widen* the gap, while the
placements stay bit-for-bit identical.  Greedy rides along as the
baseline the paper compares against.
"""

import time

import numpy as np

from repro.baselines.greedy import GreedyPlacer
from repro.core.agt_ram import run_agt_ram
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.utils.tables import render_table

SIZES = ((40, 200), (80, 400), (160, 800))
REPEATS = 3


def _best_wall(instance, engine):
    best = None
    wall = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        best = run_agt_ram(instance, engine=engine)
        wall = min(wall, time.perf_counter() - t0)
    return wall, best


def run_scaling():
    out = []
    for m, n in SIZES:
        cfg = ExperimentConfig(
            n_servers=m,
            n_objects=n,
            total_requests=5 * m * n,
            rw_ratio=0.9,
            capacity_fraction=0.35,
            seed=31,
            name=f"scale-{m}x{n}",
        )
        inst = paper_instance(cfg)
        naive_s, naive = _best_wall(inst, "naive")
        vec_s, vec = _best_wall(inst, "vectorized")
        greedy = GreedyPlacer().place(inst)
        assert np.array_equal(naive.state.x, vec.state.x), (m, n)
        assert naive.otc == vec.otc, (m, n)
        out.append(
            {
                "m": m,
                "n": n,
                "naive_s": naive_s,
                "vec_s": vec_s,
                "greedy_s": greedy.runtime_s,
                "agt_savings": vec.savings_percent,
                "greedy_savings": greedy.savings_percent,
            }
        )
    return out


def test_runtime_scaling(benchmark, report):
    data = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    rows = [
        [
            f"M={d['m']}, N={d['n']}",
            d["naive_s"] * 1e3,
            d["vec_s"] * 1e3,
            d["naive_s"] / d["vec_s"],
            d["greedy_s"] * 1e3,
            d["agt_savings"],
        ]
        for d in data
    ]
    report(
        render_table(
            [
                "size",
                "naive (ms)",
                "vectorized (ms)",
                "speedup",
                "Greedy (ms)",
                "AGT-RAM savings (%)",
            ],
            rows,
            title="Engine scaling with system size (request density fixed; "
            "placements verified identical)",
        )
    )
    speedups = [d["naive_s"] / d["vec_s"] for d in data]
    # The vectorized engine wins at every size, decisively at the
    # largest (the gated CI thresholds live in `make equivalence`; this
    # one is deliberately loose — it shares a runner with other work).
    for d in data:
        assert d["vec_s"] < d["naive_s"], d
    assert speedups[-1] > 1.5
    # AGT-RAM (vectorized) also stays ahead of the Greedy baseline.
    assert data[-1]["vec_s"] < data[-1]["greedy_s"]
    benchmark.extra_info["speedup_smallest"] = round(speedups[0], 2)
    benchmark.extra_info["speedup_largest"] = round(speedups[-1], 2)
