"""Robustness of the headline ordering across modeling choices.

The paper evaluates on GT-ITM random graphs with one workload model;
this bench re-runs the AGT-RAM / Greedy / GRA comparison across four
topology families and a range of popularity / client-concentration
skews, asserting the reproduced ordering is not an artifact of any one
modeling choice.
"""

from _config import BENCH_BASE
from repro.experiments.sensitivity import sensitivity_study
from repro.utils.tables import render_table


def test_ordering_robustness(benchmark, report):
    base = BENCH_BASE.with_(
        n_servers=24,
        n_objects=100,
        total_requests=18_000,
        rw_ratio=0.95,
        capacity_fraction=0.45,
        name="sensitivity",
    )
    rows = benchmark.pedantic(
        lambda: sensitivity_study(
            base,
            placer_kwargs={"GRA": {"population_size": 10, "generations": 12}},
        ),
        rounds=1,
        iterations=1,
    )
    table = [
        [
            r.knob,
            str(r.value),
            r.savings["Greedy"],
            r.savings["AGT-RAM"],
            r.savings["GRA"],
            "yes" if r.ordering_holds else "NO",
        ]
        for r in rows
    ]
    report(
        render_table(
            ["knob", "value", "Greedy", "AGT-RAM", "GRA", "ordering holds"],
            table,
            title="Sensitivity — GRA <= AGT-RAM <= Greedy(+5pp) across "
            "modeling choices [R/W=0.95, C=45%]",
        )
    )
    held = sum(r.ordering_holds for r in rows)
    benchmark.extra_info["settings_held"] = f"{held}/{len(rows)}"
    # The ordering must hold at every setting.
    for r in rows:
        assert r.ordering_holds, f"{r.knob}={r.value}: {r.savings}"
