"""Table 1: running time (s) of the placement methods over a size grid.

Paper shape (C=45%, R/W=0.85): AGT-RAM terminates fastest, then Greedy,
with the auctions next and Aε-Star / GRA slowest; the "Improvement
brought by AGT-RAM (%)" column is computed against the best competitor.
"""

import statistics

from _config import BENCH_BASE, TABLE1_BENCH_GRID
from repro.experiments.report import format_table_rows
from repro.experiments.tables import table1_running_time


def test_table1_running_time(benchmark, report):
    rows = benchmark.pedantic(
        lambda: table1_running_time(BENCH_BASE, grid=TABLE1_BENCH_GRID, seed=6),
        rounds=1,
        iterations=1,
    )
    report(
        format_table_rows(
            rows,
            metric_label=(
                "Table 1 — running time (s) [C=45%, R/W=0.85]; improvement "
                "= (Greedy - AGT-RAM) / Greedy x 100"
            ),
        )
    )
    median_improvement = statistics.median(r.improvement_percent for r in rows)
    benchmark.extra_info["median_improvement_pct"] = round(median_improvement, 2)

    # Shape assertions: AGT-RAM always beats the centralized quality
    # methods.  (Our in-process DA/EA clocks are cheaper than the paper's
    # distributed auctions — see EXPERIMENTS.md — so they are excluded
    # from the ordering assertion.)
    for r in rows:
        assert r.values["AGT-RAM"] < r.values["Ae-Star"]
        assert r.values["AGT-RAM"] < r.values["GRA"]
        # The AGT-RAM/Greedy gap is asymptotic (O(M+N) vs O(M^2) per
        # step); below M=20 fixed per-call constants can mask it, so
        # the strict ordering is only asserted at meaningful sizes.
        m = int(r.label.split(",")[0].split("=")[1])
        if m >= 20:
            assert r.values["AGT-RAM"] < r.values["Greedy"], r.label
