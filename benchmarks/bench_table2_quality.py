"""Table 2: average OTC savings (%) on randomly-parameterized instances.

Paper shape: AGT-RAM leads with Greedy and Aε-Star in close competition;
EA and GRA trail.  Our exact-ΔOTC Greedy is stronger than the paper's
(see EXPERIMENTS.md), so the honest expectation here is AGT-RAM within
a few percent of Greedy and clearly ahead of EA/GRA.
"""

import statistics

from _config import BENCH_BASE, TABLE2_BENCH_SPECS
from repro.experiments.report import format_table_rows
from repro.experiments.tables import table2_quality


def test_table2_quality(benchmark, report):
    rows = benchmark.pedantic(
        lambda: table2_quality(BENCH_BASE, specs=TABLE2_BENCH_SPECS, seed=7),
        rounds=1,
        iterations=1,
    )
    report(
        format_table_rows(
            rows,
            metric_label=(
                "Table 2 — OTC savings (%) on mixed instances; improvement "
                "= (AGT-RAM - best other) / best other x 100"
            ),
        )
    )
    benchmark.extra_info["mean_agt_ram_savings"] = round(
        statistics.mean(r.values["AGT-RAM"] for r in rows), 2
    )

    # Shape assertions.  The local-CoR methods only shine when reads
    # dominate (the regime the paper's rows emphasize); on write-heavy
    # rows every method's savings shrink toward zero (see EXPERIMENTS.md
    # for why the absolute low-R/W numbers deviate from the paper's).
    for r in rows:
        read_heavy = any(
            f"R/W={v}" in r.label for v in ("0.75", "0.80", "0.85", "0.90", "0.95")
        )
        if read_heavy:
            # AGT-RAM leads the distributed/local-information class.
            assert r.values["AGT-RAM"] >= r.values["EA"] - 0.5, r.label
            assert r.values["AGT-RAM"] >= r.values["DA"] - 0.5, r.label
        if "R/W=0.9" in r.label or "R/W=0.95" in r.label:
            # GRA's population search competes at small scale and low
            # read share; its gap is structural only in the paper's
            # headline read-heavy regime.
            assert r.values["AGT-RAM"] >= r.values["GRA"] - 1e-9, r.label
        if "R/W=0.95" in r.label:
            # In the paper's headline regime it stays within ~25% of the
            # fully-informed Greedy across scales.
            best = max(r.values.values())
            assert r.values["AGT-RAM"] >= 0.75 * best, r.label
        # No method may ever *worsen* the system (beyond float noise).
        for alg, v in r.values.items():
            assert v >= -1e-6, f"{r.label}: {alg}"
