"""Section 5's robustness text: "further experiments with various update
ratios (5%, 10%, and 20%) showed similar plot trends".

An update ratio U% is a write fraction (rw_ratio = 1 - U).  The claim to
preserve: the method ordering is stable across update ratios, with
absolute savings shrinking as updates grow.
"""

from _config import BENCH_BASE
from repro.experiments.report import format_sweep
from repro.experiments.sweeps import update_ratio_sweep

UPDATE_RATIOS = (0.05, 0.10, 0.20)
ALGS = ("Greedy", "AGT-RAM", "DA", "EA", "GRA")


def test_update_ratio_trends(benchmark, report):
    rows = benchmark.pedantic(
        lambda: update_ratio_sweep(
            BENCH_BASE.with_(capacity_fraction=0.45),
            update_ratios=UPDATE_RATIOS,
            algorithms=ALGS,
            seed=8,
        ),
        rounds=1,
        iterations=1,
    )
    report(
        format_sweep(
            rows,
            title=(
                "Update-ratio robustness — OTC savings (%) at U = 5/10/20% "
                "(shown as R/W = 0.95/0.90/0.80) [C=45%]"
            ),
        )
    )

    by = {
        (r.sweep_value, r.algorithm): r.savings_percent for r in rows
    }
    for alg in ALGS:
        # Savings shrink monotonically as the update share grows.
        assert by[(0.95, alg)] >= by[(0.90, alg)] - 1.0, alg
        assert by[(0.90, alg)] >= by[(0.80, alg)] - 1.0, alg
    for rw in (0.95, 0.90, 0.80):
        # Ordering stable: AGT-RAM above GRA at every update ratio.
        assert by[(rw, "AGT-RAM")] > by[(rw, "GRA")]
