"""Benchmark fixtures (shared config lives in _config.py)."""

from __future__ import annotations

import pytest


@pytest.fixture()
def report(capsys):
    """Print benchmark tables straight to the terminal (tee-able)."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}")

    return _report
