#!/usr/bin/env python
"""Adaptive replication under shifting demand.

AGT-RAM is "a protocol for automatic replication and migration of
objects in response to demand changes".  This example drifts the Zipf
popularity ranking across epochs (yesterday's hot pages cool off) and
compares three policies: freezing the initial scheme, adapting with
evict-then-reallocate, and rebuilding from scratch each epoch.

Run:  python examples/adaptive_demand.py
"""

from repro import AdaptiveReplicator, ExperimentConfig, drifting_workloads, paper_instance
from repro.utils.ascii_chart import ascii_chart
from repro.utils.tables import render_table
from repro.workload.drift import rank_displacement

N_EPOCHS = 8


def main() -> None:
    template = paper_instance(
        ExperimentConfig(
            n_servers=30,
            n_objects=120,
            total_requests=25_000,
            rw_ratio=0.95,
            capacity_fraction=0.4,
            seed=7,
            name="adaptive-demo",
        )
    )
    epochs = drifting_workloads(
        template.n_servers,
        template.n_objects,
        N_EPOCHS,
        total_requests=25_000,
        rw_ratio=0.95,
        drift_fraction=0.35,
        seed=8,
    )
    disp = rank_displacement(epochs)
    print(
        f"{N_EPOCHS} epochs; mean popularity-rank displacement per epoch: "
        f"{sum(disp) / len(disp):.1f} positions"
    )

    outcomes = {
        policy: AdaptiveReplicator(policy=policy).run(template, epochs)
        for policy in ("static", "adaptive", "rebuild")
    }

    series = {
        policy: [(o.epoch, o.savings_percent) for o in out]
        for policy, out in outcomes.items()
    }
    print()
    print(ascii_chart(series, y_label="OTC savings (%)", x_label="epoch"))

    rows = []
    for policy, out in outcomes.items():
        rows.append(
            [
                policy,
                out[-1].savings_percent,
                sum(o.evictions for o in out),
                sum(o.allocations for o in out[1:]),
                sum(o.migration_volume for o in out[1:]),
            ]
        )
    print()
    print(
        render_table(
            ["policy", "final savings (%)", "evictions", "re-allocations",
             "migration volume"],
            rows,
            title="policy comparison after drift",
        )
    )
    print(
        "\nThe frozen scheme decays as demand moves; the adaptive protocol "
        "tracks the rebuild ceiling while moving far less data."
    )


if __name__ == "__main__":
    main()
