#!/usr/bin/env python
"""AGT-RAM at AS-level scale (a 1/10-scale 1998 Internet).

The paper sized its system from the Inet-estimated 1998 AS-level
Internet: 3718 autonomous systems serving 25,000 objects.  This example
runs the mechanism on a 1/10-scale power-law topology (372 nodes, 2,500
objects) — large enough that the semi-distributed design's complexity
properties, not constants, dominate.

Run:  python examples/as_level_scale.py        (~10-30 s)
"""

import numpy as np

from repro import ExperimentConfig, paper_instance, run_agt_ram
from repro.analysis.trajectory import rounds_to_fraction, savings_trajectory
from repro.utils.timing import format_seconds

M, N = 372, 2_500


def main() -> None:
    cfg = ExperimentConfig(
        n_servers=M,
        n_objects=N,
        topology="powerlaw",
        topology_params={"m": 2},
        total_requests=1_000_000,  # the paper's 1-2M request range
        rw_ratio=0.95,
        capacity_fraction=0.35,
        server_skew=1.5,
        seed=1998,
        name="as-level",
    )
    print(f"building instance: M={M} AS-level nodes, N={N} objects, "
          f"{cfg.total_requests:,} requests ...")
    instance = paper_instance(cfg)
    print(f"instance ready: {instance}")

    result = run_agt_ram(instance, record_audit=True)
    print(
        f"\nAGT-RAM: {result.replicas_allocated:,} replicas in "
        f"{result.rounds:,} rounds, {format_seconds(result.runtime_s)}"
    )
    print(f"OTC savings: {result.savings_percent:.1f}%")
    print(f"payments issued: {result.extra['payments'].sum():,.0f} cost units")

    traj = savings_trajectory(instance, result)
    r90 = rounds_to_fraction(traj, 0.9)
    print(
        f"90% of the savings arrived within the first {r90:,} rounds "
        f"({100 * r90 / max(1, result.rounds):.0f}% of the run)."
    )

    per_server = result.state.x.sum(axis=1) - np.bincount(
        instance.primaries, minlength=M
    )
    print(
        f"replica distribution: max {int(per_server.max())} per server, "
        f"median {int(np.median(per_server))}, "
        f"{int((per_server == 0).sum())} servers host none."
    )
    print(
        "\nAt this scale the centralized Greedy baseline pays an O(M^2) "
        "refresh per placement; run benchmarks/bench_scaling.py to see "
        "the widening gap."
    )


if __name__ == "__main__":
    main()
