#!/usr/bin/env python
"""CDN scenario: replica placement across a transit-stub internetwork.

The paper's motivating application is a content distribution network:
stub domains (edge ISPs) hang off transit backbones, and placing object
replicas inside the right stubs spares their clients the backbone
crossing.  This example builds that world explicitly, runs all six
placement methods of the paper on it, and reports the comparison the
way Section 5 does — savings, runtime, replica counts, and the
performance-tier classification.

Run:  python examples/cdn_scenario.py
"""

import numpy as np

from repro import build_instance, synthesize_workload, transit_stub_graph
from repro.analysis.compare import classify_performance, rank_by_runtime, rank_by_savings
from repro.experiments.runner import run_algorithms
from repro.utils.tables import render_table


def main() -> None:
    # A 2-backbone internetwork: 2 transit domains x 3 routers, each
    # router serving 2 stub domains of 4 edge servers -> 54 servers.
    topo = transit_stub_graph(
        n_transit_domains=2,
        transit_size=3,
        stubs_per_transit_node=2,
        stub_size=4,
        seed=11,
    )
    print(f"topology: {topo}")

    # A read-mostly catalog of 250 objects (videos, images, pages).
    workload = synthesize_workload(
        topo.n_nodes,
        250,
        total_requests=60_000,
        rw_ratio=0.93,
        server_skew=1.2,
        seed=12,
    )
    instance = build_instance(
        topo, workload, capacity_fraction=0.35, seed=13, name="cdn"
    )
    print(f"instance: {instance}\n")

    results = run_algorithms(instance, seed=14)

    rows = [
        [
            alg,
            res.savings_percent,
            res.runtime_s * 1e3,
            res.replicas_allocated,
            res.rounds,
        ]
        for alg, res in results.items()
    ]
    print(
        render_table(
            ["method", "OTC savings (%)", "runtime (ms)", "replicas", "rounds"],
            rows,
            title="CDN replica placement comparison",
        )
    )

    print("\nbest savings :", " > ".join(rank_by_savings(results)))
    print("fastest      :", " > ".join(rank_by_runtime(results)))

    tiers = classify_performance(results)
    print("\nperformance tiers (paper's Section 5 classification style):")
    for alg in rank_by_savings(results):
        print(f"  {alg:8s} {tiers[alg]}")

    # The paper's headline is user-perceived access delay; translate the
    # winning scheme back into read latencies.
    from repro.analysis.latency import read_latency_report
    from repro.drp.state import ReplicationState

    before = read_latency_report(ReplicationState.primaries_only(instance))
    after = read_latency_report(results["AGT-RAM"].state)
    print(f"\nread latency before replication: {before}")
    print(f"read latency after AGT-RAM:      {after}")

    # Where did the replicas go?  Stub servers should host most of them.
    agt = results["AGT-RAM"]
    per_server = agt.state.x.sum(axis=1) - np.bincount(
        instance.primaries, minlength=instance.n_servers
    )
    transit_nodes = 2 * 3
    print(
        f"\nAGT-RAM replicas on transit routers: "
        f"{int(per_server[:transit_nodes].sum())}, "
        f"on stub/edge servers: {int(per_server[transit_nodes:].sum())}"
    )


if __name__ == "__main__":
    main()
