#!/usr/bin/env python
"""Convergence of the mechanism's rounds.

The paper claims "replica allocations were made in a fast algorithmic
turn-around time" and Figure 3's discussion notes an "immediate initial
increase" followed by near-constant performance.  This example replays
an audited AGT-RAM run into its per-round savings curve, compares it
against Greedy's allocation order, and quantifies front-loading.

Run:  python examples/convergence_study.py
"""

from repro import ExperimentConfig, GreedyPlacer, paper_instance, run_agt_ram
from repro.analysis.trajectory import rounds_to_fraction, savings_trajectory
from repro.drp.cost import primary_only_otc, total_otc
from repro.drp.state import ReplicationState
from repro.utils.ascii_chart import ascii_chart


def greedy_trajectory(instance, max_steps=None):
    """Greedy's own per-step savings curve (it is incremental too)."""
    from repro.drp.global_engine import GlobalBenefitEngine
    import numpy as np

    baseline = primary_only_otc(instance)
    state = ReplicationState.primaries_only(instance)
    engine = GlobalBenefitEngine(instance, state)
    out = [(0, 0.0)]
    step = 0
    while max_steps is None or step < max_steps:
        i, k, gain = engine.best_cell()
        if not np.isfinite(gain) or gain <= 0:
            break
        state.add_replica(i, k)
        engine.notify_allocation(i, k)
        step += 1
        out.append((step, 100.0 * (baseline - total_otc(state)) / baseline))
    return out


def main() -> None:
    instance = paper_instance(
        ExperimentConfig(
            n_servers=30,
            n_objects=120,
            total_requests=25_000,
            rw_ratio=0.95,
            capacity_fraction=0.45,
            seed=23,
            name="convergence",
        )
    )
    agt = run_agt_ram(instance, record_audit=True)
    agt_traj = savings_trajectory(instance, agt)
    greedy_traj = greedy_trajectory(instance)

    print(
        ascii_chart(
            {"AGT-RAM": agt_traj, "Greedy": greedy_traj},
            y_label="OTC savings (%)",
            x_label="allocation round",
            height=18,
        )
    )

    r50 = rounds_to_fraction(agt_traj, 0.5)
    r90 = rounds_to_fraction(agt_traj, 0.9)
    print(
        f"\nAGT-RAM: {agt.rounds} rounds total; 50% of the final savings "
        f"after {r50} rounds ({100 * r50 / agt.rounds:.0f}%), 90% after "
        f"{r90} rounds ({100 * r90 / agt.rounds:.0f}%)."
    )
    g = GreedyPlacer().place(instance)
    print(
        f"final: AGT-RAM {agt.savings_percent:.1f}% in {agt.runtime_s*1e3:.1f} ms "
        f"vs Greedy {g.savings_percent:.1f}% in {g.runtime_s*1e3:.1f} ms —\n"
        "the mechanism's rounds are heavily front-loaded, which is what "
        "makes early termination (or a round budget) practical."
    )


if __name__ == "__main__":
    main()
