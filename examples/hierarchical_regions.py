#!/usr/bin/env python
"""Regional (hierarchical) AGT-RAM — the paper's Section 7 extension.

Servers are partitioned into proximity regions, each with its own
regional mechanism; a root body composes them.  The example contrasts:

* sequential composition (provably identical to the flat mechanism),
* concurrent regional autonomy (fewer global rounds, small quality cost),
* resilience when a regional body fails (the flat design's single
  central body is a total single point of failure).

Run:  python examples/hierarchical_regions.py
"""

import numpy as np

from repro import ExperimentConfig, HierarchicalAGTRam, paper_instance, run_agt_ram
from repro.utils.tables import render_table


def main() -> None:
    instance = paper_instance(
        ExperimentConfig(
            n_servers=40,
            n_objects=160,
            total_requests=30_000,
            rw_ratio=0.95,
            capacity_fraction=0.45,
            seed=17,
            name="regions-demo",
        )
    )
    n_regions = 5

    flat = run_agt_ram(instance)
    seq = HierarchicalAGTRam(n_regions=n_regions, mode="sequential", seed=2).run(
        instance
    )
    con = HierarchicalAGTRam(n_regions=n_regions, mode="concurrent", seed=2).run(
        instance
    )

    rows = [
        ["flat AGT-RAM", flat.savings_percent, flat.rounds],
        ["hierarchical (sequential)", seq.savings_percent, seq.rounds],
        ["hierarchical (concurrent)", con.savings_percent, con.rounds],
    ]
    for dead in range(n_regions):
        res = HierarchicalAGTRam(
            n_regions=n_regions, mode="concurrent", seed=2, failed_regions=[dead]
        ).run(instance)
        rows.append(
            [f"concurrent, region {dead} down", res.savings_percent, res.rounds]
        )
    print(
        render_table(
            ["variant", "OTC savings (%)", "global rounds"],
            rows,
            title=f"hierarchical mechanism over {n_regions} proximity regions",
        )
    )

    assert np.array_equal(seq.state.x, flat.state.x)
    print(
        "\nsequential composition allocated the *identical* scheme to the "
        "flat mechanism (verified), while the concurrent variant used "
        f"{flat.rounds - con.rounds} fewer global rounds.\n"
        "Losing any single regional body costs a few points of savings; "
        "losing the flat design's central body would cost all of them."
    )

    stats = con.extra["region_stats"]
    rows = [
        [s.region, s.servers, s.allocations, s.payments]
        for s in stats.values()
    ]
    print()
    print(
        render_table(
            ["region", "servers", "allocations", "payments"],
            rows,
            title="per-region accounting (concurrent mode)",
        )
    )


if __name__ == "__main__":
    main()
