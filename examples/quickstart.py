#!/usr/bin/env python
"""Quickstart: build a DRP instance, run AGT-RAM, inspect the outcome.

Run:  python examples/quickstart.py
"""

from repro import (
    ExperimentConfig,
    paper_instance,
    primary_only_otc,
    run_agt_ram,
    verify_axioms,
)


def main() -> None:
    # 1. Build a problem instance: a 40-server random topology (the
    #    paper's GT-ITM family) with a Zipf-skewed, read-mostly workload.
    cfg = ExperimentConfig(
        n_servers=40,
        n_objects=200,
        total_requests=40_000,
        rw_ratio=0.95,          # 95% reads — the paper's headline regime
        capacity_fraction=0.30, # each server can hold ~30% of the catalog
        seed=1,
    )
    instance = paper_instance(cfg)
    print(f"instance: {instance}")
    print(f"primaries-only OTC: {primary_only_otc(instance):,.0f}")

    # 2. Run the mechanism (with an audit transcript so we can verify
    #    the six axioms afterwards).
    result = run_agt_ram(instance, record_audit=True)
    print(f"\nAGT-RAM finished in {result.rounds} rounds "
          f"({result.runtime_s * 1e3:.1f} ms)")
    print(f"replicas allocated: {result.replicas_allocated}")
    print(f"final OTC:          {result.otc:,.0f}")
    print(f"OTC savings:        {result.savings_percent:.1f}%")
    print(f"total payments:     {result.extra['payments'].sum():,.0f}")

    # 3. Verify the six axioms on the recorded run.
    print("\naxiom verification:")
    for name, check in verify_axioms(instance, result).items():
        print(f"  {name:28s} {'PASS' if check.passed else 'FAIL'}  {check.detail}")


if __name__ == "__main__":
    main()
