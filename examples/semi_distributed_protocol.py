#!/usr/bin/env python
"""The semi-distributed protocol, message by message.

The paper's scalability argument: servers do the heavy valuation work
in parallel, the central body only takes a binary decision per round.
This example runs the message-granular simulator and reports what a
deployment engineer would budget — message counts, protocol bytes, the
per-round critical path, and the ideal PARFOR speedup — and confirms
the simulated protocol lands on exactly the same replication scheme as
the vectorized engine.

Run:  python examples/semi_distributed_protocol.py
"""

import numpy as np

from repro import ExperimentConfig, SemiDistributedSimulator, paper_instance, run_agt_ram
from repro.utils.tables import render_table


def main() -> None:
    instance = paper_instance(
        ExperimentConfig(
            n_servers=25,
            n_objects=100,
            total_requests=20_000,
            rw_ratio=0.9,
            capacity_fraction=0.35,
            seed=55,
        )
    )

    sim = SemiDistributedSimulator(max_workers=4).run(instance)
    eng = run_agt_ram(instance)
    metrics = sim.extra["metrics"]

    assert np.array_equal(sim.state.x, eng.state.x), "protocol != engine!"
    print("simulated protocol reproduces the vectorized engine's scheme: OK\n")

    print(f"rounds played:        {metrics.rounds}")
    print(f"replicas allocated:   {sim.replicas_allocated}")
    print(f"OTC savings:          {sim.savings_percent:.1f}%\n")

    rows = [[name, count] for name, count in sorted(metrics.log.counts.items())]
    print(render_table(["message type", "count"], rows, title="protocol traffic"))
    print(f"\ntotal protocol bytes: {metrics.log.bytes_total:,} "
          f"({metrics.log.bytes_total / 1024:.1f} kB)")

    print(f"\nbid-evaluation work (object valuations):")
    print(f"  serial total:        {metrics.total_work:,}")
    print(f"  parallel critical path: {metrics.critical_path_work:,}")
    print(f"  ideal PARFOR speedup:   {metrics.parallel_speedup:.1f}x")

    central_share = metrics.rounds / max(1, metrics.total_work)
    print(
        f"\nThe central body performed {metrics.rounds} binary decisions "
        f"against {metrics.total_work:,} agent-side valuations — "
        f"{100 * central_share:.2f}% of the system's work, which is the "
        "semi-distributed property the paper claims."
    )


if __name__ == "__main__":
    main()
