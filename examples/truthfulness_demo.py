#!/usr/bin/env python
"""Truthfulness demo: why lying to AGT-RAM doesn't pay.

Axiom 5's analysis considers three manipulations — over projection,
under projection, random projection.  This example measures each
against truthful play in the one-shot game (where second-price
dominance is exact) and across full mechanism runs, then repeats the
experiment under a first-price payment rule to show truthfulness
collapsing (the ablation of DESIGN.md §5).

Run:  python examples/truthfulness_demo.py
"""

from repro import (
    ExperimentConfig,
    OverProjection,
    RandomProjection,
    UnderProjection,
    paper_instance,
)
from repro.core.equilibrium import truthfulness_gap
from repro.utils.tables import render_table


def main() -> None:
    instance = paper_instance(
        ExperimentConfig(
            n_servers=30,
            n_objects=120,
            total_requests=25_000,
            rw_ratio=0.9,
            capacity_fraction=0.4,
            seed=99,
        )
    )
    strategies = {
        "over x2": lambda: OverProjection(2.0),
        "over x10": lambda: OverProjection(10.0),
        "under x0.5": lambda: UnderProjection(0.5),
        "random sigma=1": lambda: RandomProjection(1.0, seed=7),
    }

    for rule in ("second_price", "first_price"):
        rows = []
        for label, factory in strategies.items():
            comps = truthfulness_gap(
                instance,
                factory,
                n_agents=12,
                payment_rule=rule,
                one_shot=True,
                seed=5,
            )
            gains = [c.gain_from_deviation for c in comps]
            rows.append(
                [
                    label,
                    sum(c.truthful for c in comps) / len(comps),
                    sum(c.deviating for c in comps) / len(comps),
                    max(gains),
                ]
            )
        print(
            render_table(
                ["strategy", "mean truthful u", "mean deviating u", "max gain"],
                rows,
                title=f"\none-shot utilities under {rule} payments "
                "(gain > 0 would mean lying pays)",
            )
        )

    print(
        "\nUnder second-price payments every deviation gain is <= 0 — "
        "truth-telling is dominant (Lemma 1 / Theorem 5).\n"
        "Under first-price payments, shading the bid shows positive "
        "gains: the paper's payment rule is what buys truthfulness."
    )


if __name__ == "__main__":
    main()
