#!/usr/bin/env python
"""WorldCup'98 trace pipeline replay.

Reproduces the paper's exact data-processing chain on synthetic logs
(the real 1998 trace is not redistributable; point ``--log`` at a real
common-log-format file to use one):

  access log  ->  parser (objects present often enough, per-client
  counts, object sizes from response bytes)  ->  1-M client->server
  mapping  ->  (reads, writes) matrices  ->  DRP instance  ->  AGT-RAM.

Run:  python examples/worldcup_replay.py [--log PATH]
"""

import argparse

import numpy as np

from repro import (
    WorldCupLogGenerator,
    build_instance,
    map_clients_to_servers,
    parse_common_log,
    random_graph,
    run_agt_ram,
    trace_to_matrices,
)
from repro.baselines.greedy import GreedyPlacer
from repro.workload.synthetic import SyntheticWorkload
from repro.workload.zipf import empirical_zipf_alpha


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--log", help="real common-log-format file (optional)")
    ap.add_argument("--servers", type=int, default=40)
    ap.add_argument("--requests", type=int, default=80_000)
    args = ap.parse_args()

    # -- stage 1: obtain log lines -------------------------------------
    if args.log:
        with open(args.log) as fh:
            lines = fh.readlines()
        print(f"read {len(lines)} lines from {args.log}")
    else:
        gen = WorldCupLogGenerator(
            n_objects=400,
            n_clients=150,
            write_fraction=0.05,
            seed=1998,
        )
        lines = list(gen.generate_log(args.requests))
        print(f"generated {len(lines)} synthetic WC'98-style log lines")
        print("sample:", lines[0])

    # -- stage 2: parse, as the paper's processing script did ----------
    trace = parse_common_log(lines, min_requests_per_object=2)
    counts = np.zeros(trace.catalog.n_objects, dtype=np.int64)
    for req in trace:
        counts[req.obj] += 1
    print(
        f"\nparsed trace: {len(trace):,} requests, "
        f"{trace.catalog.n_objects} objects, {trace.n_clients} clients"
    )
    print(f"read share: {trace.read_write_ratio():.3f}")
    print(f"object sizes: mean {np.mean(trace.catalog.sizes):.1f} units, "
          f"std {np.std(trace.catalog.sizes):.1f}")
    print(f"popularity Zipf exponent (fit): {empirical_zipf_alpha(counts):.2f}")

    # -- stage 3: map clients onto the topology (1-M, skewed) ----------
    topo = random_graph(args.servers, 0.4, weight_range=(1.0, 40.0), seed=2)
    mapping = map_clients_to_servers(trace.n_clients, topo.n_nodes, skew=1.0, seed=3)
    reads, writes = trace_to_matrices(trace, mapping, topo.n_nodes)

    workload = SyntheticWorkload(
        reads=reads,
        writes=writes,
        sizes=np.asarray(trace.catalog.sizes),
        rw_ratio=trace.read_write_ratio(),
    )
    instance = build_instance(
        topo, workload, capacity_fraction=0.3, seed=4, name="worldcup"
    )
    print(f"\ninstance: {instance}")

    # -- stage 4: place replicas ----------------------------------------
    agt = run_agt_ram(instance)
    greedy = GreedyPlacer().place(instance)
    print(f"\nAGT-RAM : {agt.savings_percent:5.1f}% savings, "
          f"{agt.replicas_allocated} replicas, {agt.runtime_s*1e3:.1f} ms")
    print(f"Greedy  : {greedy.savings_percent:5.1f}% savings, "
          f"{greedy.replicas_allocated} replicas, {greedy.runtime_s*1e3:.1f} ms")

    # -- stage 5: who benefited? -----------------------------------------
    from repro.analysis.breakdown import concentration, object_attribution
    from repro.drp.state import ReplicationState

    baseline = ReplicationState.primaries_only(instance)
    rows = object_attribution(baseline, agt.state)
    n80 = concentration(rows, 0.8)
    print(
        f"\nsavings concentration: the top {n80} of "
        f"{instance.n_objects} objects carry 80% of the savings"
    )
    for row in rows[:5]:
        print(
            f"  {trace.catalog.names[row.index][:48]:50s} "
            f"saved {row.saved:,.0f} cost units"
        )

    # -- stage 6: trace-driven adaptation ---------------------------------
    from repro.core.adaptive import AdaptiveReplicator
    from repro.workload.epochs import epochs_from_trace

    epochs = epochs_from_trace(trace, mapping, topo.n_nodes, n_epochs=4)
    outcomes = AdaptiveReplicator(policy="adaptive").run(instance, epochs)
    print("\ntrace-driven adaptation across 4 time windows of the day:")
    for o in outcomes:
        print(
            f"  window {o.epoch}: savings {o.savings_percent:5.1f}%, "
            f"{o.evictions} evictions, {o.allocations} re-allocations"
        )


if __name__ == "__main__":
    main()
