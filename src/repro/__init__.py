"""repro — AGT-RAM: semi-distributed axiomatic game-theoretic replica
placement.

A full reproduction of S. U. Khan & I. Ahmad, *"A Semi-Distributed
Axiomatic Game Theoretical Mechanism for Replicating Data Objects in
Large Distributed Computing Systems"* (IPPS 2007): the Data Replication
Problem model, the AGT-RAM mechanism with its six axioms, the five
comparison baselines, the network/workload substrates, and the full
evaluation harness.

Quickstart
----------
>>> from repro import (
...     ExperimentConfig, paper_instance, run_agt_ram, otc_savings_percent,
... )
>>> instance = paper_instance(ExperimentConfig(n_servers=20, n_objects=80))
>>> result = run_agt_ram(instance)
>>> result.savings_percent > 0
True
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    InfeasibleInstanceError,
    CapacityError,
    MechanismProtocolError,
    ConvergenceError,
)
from repro.result import PlacementResult
from repro.topology import (
    Topology,
    random_graph,
    waxman_graph,
    transit_stub_graph,
    powerlaw_graph,
    cost_matrix,
    make_topology,
)
from repro.workload import (
    synthesize_workload,
    SyntheticWorkload,
    WorldCupLogGenerator,
    parse_common_log,
    map_clients_to_servers,
    trace_to_matrices,
)
from repro.drp import (
    DRPInstance,
    build_instance,
    ReplicationState,
    total_otc,
    primary_only_otc,
    otc_of_matrix,
    otc_savings_percent,
    BenefitEngine,
    global_benefit,
)
from repro.core import (
    AGTRam,
    run_agt_ram,
    verify_axioms,
    TruthfulStrategy,
    OverProjection,
    UnderProjection,
    RandomProjection,
    one_shot_utilities,
    full_run_utilities,
    HierarchicalAGTRam,
    partition_by_proximity,
    AdaptiveReplicator,
)
from repro.workload.drift import drifting_workloads
from repro.io import (
    save_instance,
    load_instance,
    save_scheme,
    load_scheme,
    save_result,
    load_result_summary,
)
from repro.baselines import (
    GreedyPlacer,
    GRAPlacer,
    AEStarPlacer,
    DutchAuctionPlacer,
    EnglishAuctionPlacer,
    RandomPlacer,
    make_placer,
)
from repro.runtime import SemiDistributedSimulator
from repro.experiments import (
    ExperimentConfig,
    SCALES,
    paper_instance,
    worldcup_instance,
    run_algorithms,
    PAPER_ALGORITHMS,
    figure3_capacity_sweep,
    figure4_rw_sweep,
    table1_running_time,
    table2_quality,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "InfeasibleInstanceError",
    "CapacityError",
    "MechanismProtocolError",
    "ConvergenceError",
    # result
    "PlacementResult",
    # topology
    "Topology",
    "random_graph",
    "waxman_graph",
    "transit_stub_graph",
    "powerlaw_graph",
    "cost_matrix",
    "make_topology",
    # workload
    "synthesize_workload",
    "SyntheticWorkload",
    "WorldCupLogGenerator",
    "parse_common_log",
    "map_clients_to_servers",
    "trace_to_matrices",
    # drp
    "DRPInstance",
    "build_instance",
    "ReplicationState",
    "total_otc",
    "primary_only_otc",
    "otc_of_matrix",
    "otc_savings_percent",
    "BenefitEngine",
    "global_benefit",
    # core
    "AGTRam",
    "run_agt_ram",
    "verify_axioms",
    "TruthfulStrategy",
    "OverProjection",
    "UnderProjection",
    "RandomProjection",
    "one_shot_utilities",
    "full_run_utilities",
    "HierarchicalAGTRam",
    "partition_by_proximity",
    "AdaptiveReplicator",
    "drifting_workloads",
    # io
    "save_instance",
    "load_instance",
    "save_scheme",
    "load_scheme",
    "save_result",
    "load_result_summary",
    # baselines
    "GreedyPlacer",
    "GRAPlacer",
    "AEStarPlacer",
    "DutchAuctionPlacer",
    "EnglishAuctionPlacer",
    "RandomPlacer",
    "make_placer",
    # runtime
    "SemiDistributedSimulator",
    # experiments
    "ExperimentConfig",
    "SCALES",
    "paper_instance",
    "worldcup_instance",
    "run_algorithms",
    "PAPER_ALGORITHMS",
    "figure3_capacity_sweep",
    "figure4_rw_sweep",
    "table1_running_time",
    "table2_quality",
    "__version__",
]
