"""Post-hoc analysis of placement results."""

from repro.analysis.metrics import summarize_results, ResultSummary
from repro.analysis.compare import (
    rank_by_savings,
    rank_by_runtime,
    classify_performance,
    PERFORMANCE_TIERS,
)
from repro.analysis.trajectory import (
    savings_trajectory,
    rounds_to_fraction,
    marginal_gains,
)
from repro.analysis.stats import (
    BootstrapCI,
    bootstrap_ci,
    PairedComparison,
    paired_comparison,
)
from repro.analysis.latency import (
    LatencyReport,
    read_latency_report,
    latency_improvement,
)
from repro.analysis.breakdown import (
    AttributionRow,
    object_attribution,
    server_attribution,
    concentration,
)

__all__ = [
    "summarize_results",
    "ResultSummary",
    "rank_by_savings",
    "rank_by_runtime",
    "classify_performance",
    "PERFORMANCE_TIERS",
    "savings_trajectory",
    "rounds_to_fraction",
    "marginal_gains",
    "BootstrapCI",
    "bootstrap_ci",
    "PairedComparison",
    "paired_comparison",
    "LatencyReport",
    "read_latency_report",
    "latency_improvement",
    "AttributionRow",
    "object_attribution",
    "server_attribution",
    "concentration",
]
