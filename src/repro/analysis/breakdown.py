"""Savings attribution: which objects and servers gained what.

The OTC model separates per object, and per requesting server with a
natural write-fan-out attribution, so a scheme's savings decompose
exactly.  Operators read these tables to learn *why* a placement works
("the top 10 objects carry 80% of the savings") and where the residual
cost lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drp.cost import otc_by_object, otc_by_server
from repro.drp.state import ReplicationState


@dataclass(frozen=True)
class AttributionRow:
    """One entity's (object's or server's) cost before/after."""

    index: int
    baseline: float
    current: float

    @property
    def saved(self) -> float:
        return self.baseline - self.current


def object_attribution(
    baseline: ReplicationState, current: ReplicationState
) -> list[AttributionRow]:
    """Per-object savings, largest first.

    Both states must belong to the same instance; ``baseline`` is
    typically the primaries-only scheme.
    """
    if baseline.instance is not current.instance:
        raise ValueError("states belong to different instances")
    b = otc_by_object(baseline)
    c = otc_by_object(current)
    rows = [
        AttributionRow(index=k, baseline=float(b[k]), current=float(c[k]))
        for k in range(len(b))
    ]
    rows.sort(key=lambda r: r.saved, reverse=True)
    return rows


def server_attribution(
    baseline: ReplicationState, current: ReplicationState
) -> list[AttributionRow]:
    """Per-requesting-server savings, largest first."""
    if baseline.instance is not current.instance:
        raise ValueError("states belong to different instances")
    b = otc_by_server(baseline)
    c = otc_by_server(current)
    rows = [
        AttributionRow(index=i, baseline=float(b[i]), current=float(c[i]))
        for i in range(len(b))
    ]
    rows.sort(key=lambda r: r.saved, reverse=True)
    return rows


def concentration(rows: list[AttributionRow], fraction: float = 0.8) -> int:
    """How many top entities carry ``fraction`` of the total savings.

    Returns 0 when nothing was saved.
    """
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    total = sum(max(0.0, r.saved) for r in rows)
    if total <= 0:
        return 0
    acc = 0.0
    for n, row in enumerate(rows, start=1):
        acc += max(0.0, row.saved)
        if acc >= fraction * total:
            return n
    return len(rows)
