"""Algorithm comparison utilities.

The paper closes Section 5 with a four-tier classification of the
methods by solution quality; :func:`classify_performance` reproduces
that bucketing from measured savings so EXPERIMENTS.md can report
paper-tier vs measured-tier side by side.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.result import PlacementResult

#: The paper's Section 5 classification.
PERFORMANCE_TIERS: dict[str, str] = {
    "AGT-RAM": "High",
    "Greedy": "Medium-High",
    "Ae-Star": "Medium",
    "DA": "Medium",
    "EA": "Low",
    "GRA": "Low",
}


def rank_by_savings(results: Mapping[str, PlacementResult]) -> list[str]:
    """Algorithm labels ordered best-savings first."""
    return sorted(results, key=lambda a: results[a].savings_percent, reverse=True)


def rank_by_runtime(results: Mapping[str, PlacementResult]) -> list[str]:
    """Algorithm labels ordered fastest first."""
    return sorted(results, key=lambda a: results[a].runtime_s)


def classify_performance(
    results: Mapping[str, PlacementResult],
    *,
    tier_labels: Sequence[str] = ("High", "Medium-High", "Medium", "Low"),
) -> dict[str, str]:
    """Bucket algorithms into quality tiers by measured savings.

    The best method anchors the "High" tier; each further tier spans an
    equal slice of the best-to-worst savings range.  Mirrors how the
    paper's qualitative tiers relate to its Table 2 numbers.
    """
    if not results:
        return {}
    savings = {a: r.savings_percent for a, r in results.items()}
    best = max(savings.values())
    worst = min(savings.values())
    span = best - worst
    out: dict[str, str] = {}
    n = len(tier_labels)
    for alg, s in savings.items():
        if span == 0:
            out[alg] = tier_labels[0]
            continue
        # Position 0 = best, 1 = worst.
        pos = (best - s) / span
        idx = min(n - 1, int(pos * n))
        out[alg] = tier_labels[idx]
    return out
