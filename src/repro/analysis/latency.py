"""User-perceived access-latency view of a replication scheme.

The paper's opening sentence: "Replicating data objects onto servers
across a system can alleviate access delays."  The optimization runs on
transfer *costs*; this module translates a scheme back into the
latencies a user would perceive, via the paper's copper-wire mapping
(:func:`repro.topology.propagation_delays`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.topology.costs import COPPER_SPEED_M_PER_S, propagation_delays


@dataclass(frozen=True)
class LatencyReport:
    """Read-latency statistics, request-weighted."""

    mean_s: float
    p95_s: float
    worst_s: float
    local_fraction: float  # reads served from the requesting server

    def __str__(self) -> str:
        return (
            f"mean {self.mean_s * 1e3:.2f} ms, p95 {self.p95_s * 1e3:.2f} ms, "
            f"worst {self.worst_s * 1e3:.2f} ms, "
            f"{self.local_fraction:.0%} served locally"
        )


def read_latency_report(
    state: ReplicationState,
    *,
    meters_per_cost_unit: float = 1_000.0,
    speed_m_per_s: float = COPPER_SPEED_M_PER_S,
) -> LatencyReport:
    """Request-weighted read-latency statistics for ``state``.

    Each read travels the NN distance; the report weights every (server,
    object) cell by its read count.  Write latency is not reported — the
    paper's model makes writes asynchronous broadcasts.
    """
    inst = state.instance
    delays = state.nn_dist * (meters_per_cost_unit / speed_m_per_s)
    weights = inst.reads.astype(np.float64)
    total = weights.sum()
    if total == 0:
        return LatencyReport(mean_s=0.0, p95_s=0.0, worst_s=0.0, local_fraction=1.0)
    mean = float((weights * delays).sum() / total)
    flat_d = delays.ravel()
    flat_w = weights.ravel()
    order = np.argsort(flat_d)
    cum = np.cumsum(flat_w[order]) / total
    p95 = float(flat_d[order][np.searchsorted(cum, 0.95)])
    served = flat_d[flat_w > 0]
    worst = float(served.max()) if len(served) else 0.0
    local = float(flat_w[flat_d == 0.0].sum() / total)
    return LatencyReport(mean_s=mean, p95_s=p95, worst_s=worst, local_fraction=local)


def latency_improvement(
    before: ReplicationState, after: ReplicationState, **kwargs
) -> float:
    """Fractional mean-read-latency reduction between two schemes."""
    a = read_latency_report(before, **kwargs)
    b = read_latency_report(after, **kwargs)
    if a.mean_s == 0:
        return 0.0
    return (a.mean_s - b.mean_s) / a.mean_s
