"""Summary statistics over repeated runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.result import PlacementResult


@dataclass(frozen=True)
class ResultSummary:
    """Mean/stddev summary of one algorithm across seeds/instances."""

    algorithm: str
    n_runs: int
    savings_mean: float
    savings_std: float
    runtime_mean: float
    runtime_std: float
    replicas_mean: float

    def __str__(self) -> str:
        return (
            f"{self.algorithm}: savings {self.savings_mean:.2f}±"
            f"{self.savings_std:.2f}%, runtime {self.runtime_mean:.3f}±"
            f"{self.runtime_std:.3f}s over {self.n_runs} runs"
        )


def summarize_results(results: Sequence[PlacementResult]) -> ResultSummary:
    """Aggregate repeated runs of one algorithm."""
    if not results:
        raise ValueError("cannot summarize an empty result list")
    names = {r.algorithm for r in results}
    if len(names) != 1:
        raise ValueError(f"mixed algorithms in summary: {sorted(names)}")
    savings = np.array([r.savings_percent for r in results])
    runtimes = np.array([r.runtime_s for r in results])
    replicas = np.array([r.replicas_allocated for r in results])
    return ResultSummary(
        algorithm=results[0].algorithm,
        n_runs=len(results),
        savings_mean=float(savings.mean()),
        savings_std=float(savings.std()),
        runtime_mean=float(runtimes.mean()),
        runtime_std=float(runtimes.std()),
        replicas_mean=float(replicas.mean()),
    )
