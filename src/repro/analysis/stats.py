"""Statistical comparison of algorithms across replications.

The paper averages thirteen runs per setup without dispersion;
:func:`bootstrap_ci` and :func:`paired_comparison` give the replication
study confidence intervals and paired win-rates so "A beats B" claims
carry uncertainty, as a modern evaluation should.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class BootstrapCI:
    """Percentile bootstrap confidence interval for a sample mean."""

    mean: float
    lo: float
    hi: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        return (
            f"{self.mean:.2f} [{self.lo:.2f}, {self.hi:.2f}] "
            f"@{self.confidence:.0%}"
        )


def bootstrap_ci(
    samples: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    seed: SeedLike = None,
) -> BootstrapCI:
    """Percentile bootstrap CI for the mean of ``samples``."""
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 1 or len(x) == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    rng = as_generator(seed)
    idx = rng.integers(0, len(x), size=(n_resamples, len(x)))
    means = x[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapCI(
        mean=float(x.mean()), lo=float(lo), hi=float(hi), confidence=confidence
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired comparison of two algorithms over shared instances."""

    a: str
    b: str
    n_pairs: int
    wins_a: int
    wins_b: int
    ties: int
    mean_diff: float  # mean of (a - b)
    diff_ci: BootstrapCI

    @property
    def a_significantly_better(self) -> bool:
        """The CI of the paired difference excludes zero on the + side."""
        return self.diff_ci.lo > 0.0

    @property
    def b_significantly_better(self) -> bool:
        return self.diff_ci.hi < 0.0


def paired_comparison(
    name_a: str,
    values_a: Sequence[float],
    name_b: str,
    values_b: Sequence[float],
    *,
    tie_tolerance: float = 1e-9,
    confidence: float = 0.95,
    seed: SeedLike = None,
) -> PairedComparison:
    """Compare two algorithms measured on the *same* instances.

    Pairing removes the instance-to-instance variance that dominates
    unpaired comparisons; ``values_a[i]`` and ``values_b[i]`` must come
    from instance i.
    """
    a = np.asarray(values_a, dtype=np.float64)
    b = np.asarray(values_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1 or len(a) == 0:
        raise ValueError("paired samples must be non-empty and equal-length")
    diff = a - b
    return PairedComparison(
        a=name_a,
        b=name_b,
        n_pairs=len(a),
        wins_a=int((diff > tie_tolerance).sum()),
        wins_b=int((diff < -tie_tolerance).sum()),
        ties=int((np.abs(diff) <= tie_tolerance).sum()),
        mean_diff=float(diff.mean()),
        diff_ci=bootstrap_ci(diff, confidence=confidence, seed=seed),
    )
