"""Per-round convergence trajectories.

The mechanism's audit transcript lets us replay the allocation sequence
and record the OTC after every round — the convergence curve of the
"fast algorithmic turn-around" the paper claims.  Greedy and the other
incremental baselines expose the same view through their allocation
order.
"""

from __future__ import annotations

import numpy as np

from repro.drp.cost import primary_only_otc, total_otc
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ReproError
from repro.result import PlacementResult


def savings_trajectory(
    instance: DRPInstance, result: PlacementResult
) -> list[tuple[int, float]]:
    """Replay a mechanism audit into per-round savings.

    Returns ``[(round, savings_percent), ...]`` starting at round 0 with
    0% (primaries only).  Requires the result to carry an audit
    transcript (``run_agt_ram(..., record_audit=True)``).
    """
    audit = result.extra.get("audit")
    if audit is None:
        raise ReproError(
            "result carries no audit transcript; run with record_audit=True"
        )
    baseline = primary_only_otc(instance)
    state = ReplicationState.primaries_only(instance)
    out = [(0, 0.0)]
    rnd = 0
    for rec in audit.rounds:
        if rec.winner < 0:
            continue
        state.add_replica(rec.winner, rec.obj)
        rnd += 1
        if baseline > 0:
            out.append((rnd, 100.0 * (baseline - total_otc(state)) / baseline))
        else:
            out.append((rnd, 0.0))
    return out


def rounds_to_fraction(
    trajectory: list[tuple[int, float]], fraction: float = 0.9
) -> int:
    """First round at which ``fraction`` of the final savings is reached.

    The paper's "immediate initial increase ... afterward near constant
    performance" observation, as a single number.
    """
    if not trajectory:
        raise ValueError("empty trajectory")
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    final = trajectory[-1][1]
    if final <= 0:
        return 0
    target = fraction * final
    for rnd, sav in trajectory:
        if sav >= target:
            return rnd
    return trajectory[-1][0]


def marginal_gains(trajectory: list[tuple[int, float]]) -> np.ndarray:
    """Per-round savings increments (diminishing under the mechanism)."""
    vals = np.array([s for _, s in trajectory])
    return np.diff(vals)
