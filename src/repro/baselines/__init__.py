"""The paper's five comparison algorithms plus a random-placement sanity
baseline (Section 5, "Comparative algorithms").

* :class:`GreedyPlacer` — the global-benefit greedy of Qiu et al. [26],
* :class:`AEStarPlacer` — the Aε-Star ε-relaxed branch-and-bound [16],
* :class:`GRAPlacer` — the genetic replication algorithm [21],
* :class:`DutchAuctionPlacer` / :class:`EnglishAuctionPlacer` — the
  descending / ascending price auctions [15],
* :class:`RandomPlacer` — feasible random allocation (sanity floor).

All placers share the :class:`~repro.baselines.base.ReplicaPlacer`
interface and return :class:`~repro.result.PlacementResult`.
"""

from repro.baselines.base import ReplicaPlacer, ALGORITHM_REGISTRY, make_placer
from repro.baselines.random_placement import RandomPlacer
from repro.baselines.greedy import GreedyPlacer
from repro.baselines.aestar import AEStarPlacer
from repro.baselines.gra import GRAPlacer
from repro.baselines.dutch import DutchAuctionPlacer
from repro.baselines.english import EnglishAuctionPlacer
from repro.baselines.optimal import OptimalPlacer, brute_force_otc

__all__ = [
    "ReplicaPlacer",
    "ALGORITHM_REGISTRY",
    "make_placer",
    "RandomPlacer",
    "GreedyPlacer",
    "AEStarPlacer",
    "GRAPlacer",
    "DutchAuctionPlacer",
    "EnglishAuctionPlacer",
    "OptimalPlacer",
    "brute_force_otc",
]
