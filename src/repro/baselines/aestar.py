"""Aε-Star — ε-relaxed best-first branch-and-bound [16].

Khan & Ahmad's Aε-Star searches the tree of replica-allocation sequences
with an A*-style evaluation and an ε band that lets it expand nodes whose
estimate is within (1 + ε) of the best frontier node, trading optimality
for speed.  Our reconstruction:

* a search node is a sequence of allocations (replayed onto the initial
  state when expanded — cheap, O(M) per allocation);
* children are the top-``branching`` candidate allocations, ranked by the
  cheap local benefit and re-scored with the exact global ΔOTC;
* ``f(node) = OTC(node) - optimistic_remaining(node)`` where the
  optimistic term sums the best candidates' positive global benefits
  (an over-estimate of remaining savings, i.e. an optimistic bound);
* the frontier is ε-relaxed: any node with ``f <= (1 + ε) * f_best`` may
  be expanded (we pop in f-order, so the relaxation governs pruning);
* the search stops after ``node_budget`` expansions and returns the best
  *complete* allocation seen (a node with no improving candidate), or the
  best partial one otherwise.

The quality lands near Greedy's (the paper's "Medium performance" tier)
while the tree exploration makes it markedly slower — the behaviour
Tables 1–2 report.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.baselines.base import ReplicaPlacer
from repro.drp.benefit import BenefitEngine, global_benefit
from repro.drp.cost import primary_only_otc, total_otc
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.obs import tracer as obs
from repro.result import PlacementResult
from repro.utils.timing import Timer, perf_counter


class AEStarPlacer(ReplicaPlacer):
    """ε-relaxed best-first search over allocation sequences.

    Parameters
    ----------
    epsilon:
        Relaxation band; larger values prune more aggressively.
    branching:
        Children generated per expansion.
    node_budget:
        Maximum node expansions (bounds runtime).
    candidate_pool:
        How many cheap-ranked candidates are re-scored exactly per
        expansion (>= branching).
    """

    name = "Ae-Star"

    def __init__(
        self,
        *,
        epsilon: float = 0.1,
        branching: int = 3,
        node_budget: int = 120,
        candidate_pool: int = 8,
    ):
        if epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        if branching <= 0 or node_budget <= 0:
            raise ValueError("branching and node_budget must be > 0")
        if candidate_pool < branching:
            raise ValueError("candidate_pool must be >= branching")
        self.epsilon = epsilon
        self.branching = branching
        self.node_budget = node_budget
        self.candidate_pool = candidate_pool

    # -- helpers -----------------------------------------------------------

    def _replay(self, instance: DRPInstance, path: tuple) -> ReplicationState:
        state = ReplicationState.primaries_only(instance)
        for i, k in path:
            state.add_replica(i, k)
        return state

    def _candidates(
        self, instance: DRPInstance, state: ReplicationState
    ) -> list[tuple[float, int, int]]:
        """Top candidate allocations: cheap local ranking, exact rescoring.

        Returns (global_gain, server, object) triples with positive gain,
        best first.
        """
        engine = BenefitEngine(instance, state)
        flat = engine.matrix.ravel()
        pool = min(self.candidate_pool, flat.size)
        idx = np.argpartition(flat, -pool)[-pool:]
        scored = []
        n = instance.n_objects
        for f in idx:
            if not np.isfinite(flat[f]):
                continue
            i, k = divmod(int(f), n)
            g = global_benefit(instance, state, i, k)
            if g > 0.0:
                scored.append((g, i, k))
        scored.sort(reverse=True)
        return scored

    # -- search ------------------------------------------------------------

    def _place(self, instance: DRPInstance) -> PlacementResult:
        timer = Timer()
        tracer = obs.current()
        traced = tracer.enabled
        with timer:
            root_otc = primary_only_otc(instance)
            counter = itertools.count()  # heap tiebreaker
            # Heap entries: (f, tiebreak, otc, path)
            frontier: list[tuple[float, int, float, tuple]] = []
            heapq.heappush(frontier, (root_otc, next(counter), root_otc, ()))
            best_complete: tuple[float, tuple] | None = None
            best_partial: tuple[float, tuple] = (root_otc, ())
            expansions = 0
            f_best = root_otc

            while frontier and expansions < self.node_budget:
                f, _, otc, path = heapq.heappop(frontier)
                # ε pruning: discard nodes far outside the best band.
                if f > (1.0 + self.epsilon) * f_best:
                    continue
                f_best = min(f_best, f)
                expansions += 1

                t0 = perf_counter() if traced else 0.0
                state = self._replay(instance, path)
                if traced:
                    tracer.add("replay", perf_counter() - t0)
                    t0 = perf_counter()
                candidates = self._candidates(instance, state)
                if traced:
                    tracer.add("candidates", perf_counter() - t0)
                if not candidates:
                    # Complete: no improving allocation remains.
                    if best_complete is None or otc < best_complete[0]:
                        best_complete = (otc, path)
                    continue

                optimistic = sum(g for g, _, _ in candidates)
                for g, i, k in candidates[: self.branching]:
                    child_otc = otc - g
                    child_path = path + ((i, k),)
                    child_f = child_otc - (optimistic - g)
                    heapq.heappush(
                        frontier, (child_f, next(counter), child_otc, child_path)
                    )
                    if child_otc < best_partial[0]:
                        best_partial = (child_otc, child_path)

            # Prefer a complete leaf; otherwise greedily finish the best
            # partial path so the returned scheme leaves no obvious gain
            # on the table.
            chosen = best_complete if best_complete is not None else best_partial
            t0 = perf_counter() if traced else 0.0
            state = self._replay(instance, chosen[1])
            finishing = 0
            while True:
                candidates = self._candidates(instance, state)
                if not candidates:
                    break
                _, i, k = candidates[0]
                state.add_replica(i, k)
                finishing += 1
            if traced:
                tracer.add("finish", perf_counter() - t0)
                tracer.count("expansions", expansions)

        return PlacementResult(
            algorithm=self.name,
            state=state,
            otc=total_otc(state),
            runtime_s=timer.elapsed,
            rounds=expansions,
            extra={"expansions": expansions, "finishing_steps": finishing},
        )
