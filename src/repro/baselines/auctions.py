"""Shared machinery for the Dutch and English auction comparators [15].

Both auctions sell replication rights: in every sale the winning agent
gets to place its preferred object on its server at the clock price.
Agents value objects with the same private Eq. 5 CoR that AGT-RAM uses;
what differs is *price discovery* — a descending clock (Dutch) or an
ascending clock (English) with finite tick granularity, instead of
AGT-RAM's sealed-bid second-price round.  The granularity is exactly why
the auctions lose solution quality: allocations whose benefit falls
between clock ticks are missed or mis-assigned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drp.benefit import BenefitEngine
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState


@dataclass
class AuctionContext:
    """Mutable bundle shared by one auction run."""

    instance: DRPInstance
    state: ReplicationState
    engine: BenefitEngine
    payments: np.ndarray
    sales: int = 0
    ticks: int = 0

    @classmethod
    def fresh(cls, instance: DRPInstance) -> "AuctionContext":
        state = ReplicationState.primaries_only(instance)
        return cls(
            instance=instance,
            state=state,
            engine=BenefitEngine(instance, state),
            payments=np.zeros(instance.n_servers),
        )

    def best_values(self) -> tuple[np.ndarray, np.ndarray]:
        """Each agent's best local valuation and the object realizing it."""
        return self.engine.best_per_server()

    def max_value(self) -> float:
        vals, _ = self.best_values()
        finite = vals[np.isfinite(vals)]
        return float(finite.max()) if len(finite) else -np.inf

    def sell(self, agent: int, obj: int, price: float) -> None:
        """Allocate ``obj`` on ``agent``'s server at ``price``."""
        self.state.add_replica(agent, obj)
        self.engine.notify_allocation(agent, obj)
        self.payments[agent] += price
        self.sales += 1
