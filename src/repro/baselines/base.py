"""Common interface for replica-placement algorithms.

Every algorithm — AGT-RAM included, through a thin adapter registered
here — consumes a :class:`~repro.drp.instance.DRPInstance` and returns a
:class:`~repro.result.PlacementResult`, which is what lets the experiment
harness sweep "all six methods of the paper" generically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.obs import events as ev
from repro.obs import tracer as obs
from repro.drp.instance import DRPInstance
from repro.errors import ConfigurationError
from repro.result import PlacementResult


class ReplicaPlacer(ABC):
    """A replica-placement algorithm.

    :meth:`place` is the public entry point; it wraps the concrete
    :meth:`_place` in an observability span (``baseline/<name>``) so
    every algorithm is traced uniformly when a tracer is active (see
    :mod:`repro.obs`) at zero cost otherwise.
    """

    name: str = "placer"

    def place(self, instance: DRPInstance) -> PlacementResult:
        """Compute a feasible replication scheme for ``instance``."""
        sink = ev.current()
        if sink.enabled:
            sink.emit(ev.RunStart(t=ev.now(), algorithm=self.name))
        with obs.current().span(f"baseline/{self.name}"):
            result = self._place(instance)
        if sink.enabled:
            sink.emit(
                ev.RunEnd(
                    t=ev.now(),
                    algorithm=result.algorithm,
                    otc=result.otc,
                    rounds=result.rounds,
                )
            )
        return result

    @abstractmethod
    def _place(self, instance: DRPInstance) -> PlacementResult:
        """Algorithm-specific placement; implemented by subclasses."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _make_agt_ram(**kwargs) -> ReplicaPlacer:
    """Adapter presenting AGT-RAM through the ReplicaPlacer interface."""
    from repro.core.agt_ram import AGTRam

    class _AGTRamPlacer(ReplicaPlacer):
        name = "AGT-RAM"

        def __init__(self):
            self._mech = AGTRam(**kwargs)

        def _place(self, instance: DRPInstance) -> PlacementResult:
            return self._mech.run(instance)

    return _AGTRamPlacer()


def _registry() -> dict[str, Callable[..., ReplicaPlacer]]:
    from repro.baselines.aestar import AEStarPlacer
    from repro.baselines.dutch import DutchAuctionPlacer
    from repro.baselines.english import EnglishAuctionPlacer
    from repro.baselines.gra import GRAPlacer
    from repro.baselines.greedy import GreedyPlacer
    from repro.baselines.optimal import OptimalPlacer
    from repro.baselines.random_placement import RandomPlacer

    return {
        "AGT-RAM": _make_agt_ram,
        "Greedy": GreedyPlacer,
        "GRA": GRAPlacer,
        "Ae-Star": AEStarPlacer,
        "DA": DutchAuctionPlacer,
        "EA": EnglishAuctionPlacer,
        "Random": RandomPlacer,
        "Optimal": OptimalPlacer,
    }


#: Lazily-populated algorithm registry; see :func:`make_placer`.
ALGORITHM_REGISTRY: dict[str, Callable[..., ReplicaPlacer]] = {}


def make_placer(name: str, **kwargs) -> ReplicaPlacer:
    """Instantiate an algorithm by its paper label.

    Valid names: ``"AGT-RAM"``, ``"Greedy"``, ``"GRA"``, ``"Ae-Star"``,
    ``"DA"``, ``"EA"``, ``"Random"``.  Keyword arguments are forwarded to
    the algorithm's constructor.
    """
    if not ALGORITHM_REGISTRY:
        ALGORITHM_REGISTRY.update(_registry())
    try:
        factory = ALGORITHM_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; expected one of "
            f"{sorted(_registry())}"
        ) from None
    return factory(**kwargs)
