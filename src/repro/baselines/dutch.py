"""The Dutch (descending-price) auction comparator.

The auctioneer opens the clock at the highest plausible valuation and
lowers it multiplicatively.  At each price level every agent whose best
local valuation meets the price raises its hand; the auctioneer serves
hand-raisers one at a time in random order ("first to accept wins"),
re-checking each claim against the live price because earlier sales in
the same level may have changed an agent's valuations.  When a level
clears with no claims the clock drops; the auction ends at the price
floor.

Two quality leaks relative to AGT-RAM, both inherent to the format:
the random service order within a price level can allocate an object to
a lower-valuation claimant than the best one, and the floor (plus the
multiplicative grid) leaves small-benefit placements unallocated.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.auctions import AuctionContext
from repro.baselines.base import ReplicaPlacer
from repro.drp.cost import total_otc
from repro.drp.instance import DRPInstance
from repro.result import PlacementResult
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer


class DutchAuctionPlacer(ReplicaPlacer):
    """Descending-clock auction replica placement.

    Parameters
    ----------
    decrement:
        Fractional price drop per empty level (clock multiplier 1 - d).
    floor_fraction:
        The auction stops when the clock falls below
        ``floor_fraction * opening_price``.
    """

    name = "DA"

    def __init__(
        self,
        *,
        decrement: float = 0.10,
        floor_fraction: float = 0.001,
        seed: SeedLike = None,
    ):
        if not (0.0 < decrement < 1.0):
            raise ValueError(f"decrement must be in (0, 1), got {decrement}")
        if not (0.0 < floor_fraction < 1.0):
            raise ValueError(
                f"floor_fraction must be in (0, 1), got {floor_fraction}"
            )
        self.decrement = decrement
        self.floor_fraction = floor_fraction
        self.seed = seed

    def _place(self, instance: DRPInstance) -> PlacementResult:
        rng = as_generator(self.seed)
        timer = Timer()
        with timer:
            ctx = AuctionContext.fresh(instance)
            opening = ctx.max_value()
            if not np.isfinite(opening) or opening <= 0.0:
                return PlacementResult(
                    algorithm=self.name,
                    state=ctx.state,
                    otc=total_otc(ctx.state),
                    runtime_s=timer.elapsed,
                    rounds=0,
                    extra={"payments": ctx.payments},
                )
            price = opening
            floor = self.floor_fraction * opening

            while price >= floor:
                ctx.ticks += 1
                vals, objs = ctx.best_values()
                claimants = np.flatnonzero(np.isfinite(vals) & (vals >= price))
                if len(claimants) == 0:
                    price *= 1.0 - self.decrement
                    continue
                rng.shuffle(claimants)
                for agent in claimants:
                    # Re-check: earlier sales this level may have changed
                    # this agent's valuations or capacity.
                    row = ctx.engine.matrix[agent]
                    obj = int(np.argmax(row))
                    if np.isfinite(row[obj]) and row[obj] >= price:
                        ctx.sell(int(agent), obj, price)
                # Stay at this level; the next loop iteration collects any
                # remaining claims before the clock drops.
                vals, _ = ctx.best_values()
                if not np.any(np.isfinite(vals) & (vals >= price)):
                    price *= 1.0 - self.decrement

        return PlacementResult(
            algorithm=self.name,
            state=ctx.state,
            otc=total_otc(ctx.state),
            runtime_s=timer.elapsed,
            rounds=ctx.ticks,
            extra={"payments": ctx.payments, "sales": ctx.sales},
        )
