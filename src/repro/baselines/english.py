"""The English (ascending-price) auction comparator.

One English auction is run per replica sale: the clock opens at a small
reserve and rises by a fixed increment; agents stay in while their best
local valuation meets the clock.  When at most one agent remains, the
last survivor wins at the final clock price (random tie-break when
several drop simultaneously).  The process repeats until an auction
attracts no bidder above the reserve.

The coarse additive increment makes the English auction the weakest of
the price-discovery trio: every sale burns several clock ticks (slow),
the winner within the last increment is decided by tie-break (possible
mis-allocation), and any placement worth less than one increment above
the reserve never sells — missing more of the benefit tail than the
Dutch clock's multiplicative grid.  This reproduces the paper's "Low
performance" classification for EA.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.auctions import AuctionContext
from repro.baselines.base import ReplicaPlacer
from repro.drp.cost import total_otc
from repro.drp.instance import DRPInstance
from repro.result import PlacementResult
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer


class EnglishAuctionPlacer(ReplicaPlacer):
    """Ascending-clock auction replica placement.

    Parameters
    ----------
    increment_fraction:
        Clock increment as a fraction of the opening maximum valuation.
    reserve_fraction:
        Reserve price as a fraction of the opening maximum valuation;
        sales below the reserve never happen.
    max_sales:
        Safety cap on the number of auctions.
    """

    name = "EA"

    def __init__(
        self,
        *,
        increment_fraction: float = 0.02,
        reserve_fraction: float = 0.005,
        max_sales: int | None = None,
        seed: SeedLike = None,
    ):
        if not (0.0 < increment_fraction < 1.0):
            raise ValueError(
                f"increment_fraction must be in (0, 1), got {increment_fraction}"
            )
        if not (0.0 <= reserve_fraction < 1.0):
            raise ValueError(
                f"reserve_fraction must be in [0, 1), got {reserve_fraction}"
            )
        if max_sales is not None and max_sales < 0:
            raise ValueError("max_sales must be >= 0")
        self.increment_fraction = increment_fraction
        self.reserve_fraction = reserve_fraction
        self.max_sales = max_sales
        self.seed = seed

    def _place(self, instance: DRPInstance) -> PlacementResult:
        rng = as_generator(self.seed)
        timer = Timer()
        with timer:
            ctx = AuctionContext.fresh(instance)
            opening = ctx.max_value()
            if not np.isfinite(opening) or opening <= 0.0:
                return PlacementResult(
                    algorithm=self.name,
                    state=ctx.state,
                    otc=total_otc(ctx.state),
                    runtime_s=timer.elapsed,
                    rounds=0,
                    extra={"payments": ctx.payments},
                )
            increment = self.increment_fraction * opening
            reserve = self.reserve_fraction * opening
            cap = (
                self.max_sales
                if self.max_sales is not None
                else instance.n_servers * instance.n_objects
            )

            while ctx.sales < cap:
                vals, objs = ctx.best_values()
                active = np.flatnonzero(np.isfinite(vals) & (vals > reserve))
                if len(active) == 0:
                    break
                price = reserve
                # Ascending clock: raise until at most one bidder stays.
                # If everyone drops in the same tick, the tie is broken
                # randomly among the bidders active at the previous level.
                while True:
                    ctx.ticks += 1
                    staying = active[vals[active] >= price + increment]
                    if len(staying) == 0:
                        break
                    active = staying
                    price += increment
                    if len(staying) == 1:
                        break
                winner = int(rng.choice(active))
                obj = int(objs[winner])
                ctx.sell(winner, obj, price)

        return PlacementResult(
            algorithm=self.name,
            state=ctx.state,
            otc=total_otc(ctx.state),
            runtime_s=timer.elapsed,
            rounds=ctx.ticks,
            extra={"payments": ctx.payments, "sales": ctx.sales},
        )
