"""GRA — the Genetic Replication Algorithm of Loukopoulos & Ahmad [21].

A population of candidate replication matrices evolves under tournament
selection, per-object uniform crossover, bit-flip mutation, and a repair
operator that restores capacity feasibility.  The paper's analysis of
why GRA trails the pack — "GRA specifically depends on the initial
selection of gene population" and "maintains a localized network
perception" — falls straight out of this design: fitness only sees whole
schemes, so the fine-grained marginal structure that greedy/mechanism
methods exploit is invisible to it at practical population sizes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ReplicaPlacer
from repro.drp.cost import otc_of_matrix, total_otc
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.result import PlacementResult
from repro.utils.rng import SeedLike, as_generator, spawn_children
from repro.utils.timing import Timer


class GRAPlacer(ReplicaPlacer):
    """Genetic-algorithm replica placement.

    Parameters
    ----------
    population_size:
        Chromosomes per generation (paper-era GAs used 10–30).
    generations:
        Evolution budget.
    crossover_rate:
        Probability a child is produced by crossover (else cloned).
    mutation_flips:
        Expected number of bit flips per child.
    elitism:
        Chromosomes copied unchanged into the next generation.
    tournament:
        Tournament size for parent selection.
    """

    name = "GRA"

    def __init__(
        self,
        *,
        population_size: int = 16,
        generations: int = 25,
        crossover_rate: float = 0.9,
        mutation_flips: float = 4.0,
        elitism: int = 2,
        tournament: int = 3,
        seed: SeedLike = None,
    ):
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if not (0.0 <= crossover_rate <= 1.0):
            raise ValueError("crossover_rate must be in [0, 1]")
        if mutation_flips < 0:
            raise ValueError("mutation_flips must be >= 0")
        if not (0 <= elitism < population_size):
            raise ValueError("elitism must be in [0, population_size)")
        if tournament < 1:
            raise ValueError("tournament must be >= 1")
        self.population_size = population_size
        self.generations = generations
        self.crossover_rate = crossover_rate
        self.mutation_flips = mutation_flips
        self.elitism = elitism
        self.tournament = tournament
        self.seed = seed

    # -- GA operators -------------------------------------------------------

    def _random_chromosome(
        self, instance: DRPInstance, rng: np.random.Generator, density: float
    ) -> np.ndarray:
        """Random feasible scheme filling ~``density`` of the headroom."""
        m, n = instance.n_servers, instance.n_objects
        x = np.zeros((m, n), dtype=bool)
        x[instance.primaries, np.arange(n)] = True
        residual = instance.replica_headroom().astype(np.int64).copy()
        budget = int(density * residual.sum())
        used = 0
        for flat in rng.permutation(m * n):
            if used >= budget:
                break
            i, k = divmod(int(flat), n)
            size = int(instance.sizes[k])
            if not x[i, k] and size <= residual[i]:
                x[i, k] = True
                residual[i] -= size
                used += size
        return x

    def _repair(self, instance: DRPInstance, x: np.ndarray, rng) -> None:
        """Drop random non-primary replicas from overloaded servers."""
        used = x @ instance.sizes
        over = np.flatnonzero(used > instance.capacities)
        cols = np.arange(instance.n_objects)
        for i in over:
            removable = np.flatnonzero(x[i] & (instance.primaries != i))
            rng.shuffle(removable)
            for k in removable:
                if used[i] <= instance.capacities[i]:
                    break
                x[i, k] = False
                used[i] -= instance.sizes[k]
        # Ensure primaries survived (mutation may have cleared them).
        x[instance.primaries, cols] = True

    def _crossover(self, a: np.ndarray, b: np.ndarray, rng) -> np.ndarray:
        """Uniform per-object column crossover."""
        take_a = rng.random(a.shape[1]) < 0.5
        child = np.where(take_a[None, :], a, b)
        return child.copy()

    def _mutate(self, instance: DRPInstance, x: np.ndarray, rng) -> None:
        m, n = x.shape
        n_flips = rng.poisson(self.mutation_flips)
        if n_flips == 0:
            return
        flat = rng.integers(0, m * n, size=n_flips)
        i, k = np.divmod(flat, n)
        keep = instance.primaries[k] != i  # never flip a primary cell
        x[i[keep], k[keep]] ^= True

    # -- main loop -----------------------------------------------------------

    def _place(self, instance: DRPInstance) -> PlacementResult:
        rng_init, rng_evolve = spawn_children(as_generator(self.seed), 2)
        timer = Timer()
        cache: dict[bytes, float] = {}

        def fitness(x: np.ndarray) -> float:
            key = np.packbits(x).tobytes()
            if key not in cache:
                cache[key] = otc_of_matrix(instance, x)
            return cache[key]

        with timer:
            # Seed with the primaries-only scheme so (via elitism) the GA
            # never returns something worse than no replication at all,
            # plus random fills at mixed densities.
            empty = np.zeros((instance.n_servers, instance.n_objects), dtype=bool)
            empty[instance.primaries, np.arange(instance.n_objects)] = True
            pop = [empty] + [
                self._random_chromosome(
                    instance, rng_init, density=float(rng_init.uniform(0.1, 0.8))
                )
                for _ in range(self.population_size - 1)
            ]
            costs = np.array([fitness(x) for x in pop])

            for _gen in range(self.generations):
                order = np.argsort(costs)
                elites = [pop[int(j)].copy() for j in order[: self.elitism]]
                children = list(elites)
                while len(children) < self.population_size:
                    # Tournament selection of two parents.
                    idx_a = min(
                        rng_evolve.integers(0, self.population_size, self.tournament),
                        key=lambda j: costs[j],
                    )
                    idx_b = min(
                        rng_evolve.integers(0, self.population_size, self.tournament),
                        key=lambda j: costs[j],
                    )
                    if rng_evolve.random() < self.crossover_rate:
                        child = self._crossover(pop[int(idx_a)], pop[int(idx_b)], rng_evolve)
                    else:
                        child = pop[int(idx_a)].copy()
                    self._mutate(instance, child, rng_evolve)
                    self._repair(instance, child, rng_evolve)
                    children.append(child)
                pop = children
                costs = np.array([fitness(x) for x in pop])

            best = pop[int(np.argmin(costs))]
            state = ReplicationState.from_matrix(instance, best)

        return PlacementResult(
            algorithm=self.name,
            state=state,
            otc=total_otc(state),
            runtime_s=timer.elapsed,
            rounds=self.generations,
            extra={"evaluations": len(cache)},
        )
