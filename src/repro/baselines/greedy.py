"""The Greedy comparator — Qiu, Padmanabhan & Voelker's greedy [26].

The paper selects this greedy "because it is shown to be the best
compared with 4 other approaches".  It is the fully-informed centralized
counterpart of AGT-RAM: in every step it evaluates the *exact* system-wide
OTC reduction of every feasible (server, object) placement and commits
the best one, stopping when no placement reduces OTC.

Complexity: O(M²N) to build the benefit table, then O(M² + MN) per
placement (one column refresh plus the global argmax) — strictly heavier
per step than AGT-RAM's O(M + N + MN), which is the runtime gap Table 1
measures.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ReplicaPlacer
from repro.drp.cost import total_otc
from repro.drp.global_engine import GlobalBenefitEngine
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.obs import tracer as obs
from repro.result import PlacementResult
from repro.utils.timing import Timer, perf_counter


class GreedyPlacer(ReplicaPlacer):
    """Exact-marginal-gain greedy replica placement.

    Parameters
    ----------
    max_steps:
        Optional cap on placements (default: run to exhaustion).
    """

    name = "Greedy"

    def __init__(self, *, max_steps: int | None = None):
        if max_steps is not None and max_steps < 0:
            raise ValueError("max_steps must be >= 0")
        self.max_steps = max_steps

    def _place(self, instance: DRPInstance) -> PlacementResult:
        timer = Timer()
        tracer = obs.current()
        traced = tracer.enabled
        with timer:
            t0 = perf_counter() if traced else 0.0
            state = ReplicationState.primaries_only(instance)
            engine = GlobalBenefitEngine(instance, state)
            if traced:
                tracer.add("engine_init", perf_counter() - t0)
            steps = 0
            cap = (
                self.max_steps
                if self.max_steps is not None
                else instance.n_servers * instance.n_objects
            )
            while steps < cap:
                t0 = perf_counter() if traced else 0.0
                i, k, gain = engine.best_cell()
                if traced:
                    tracer.add("select", perf_counter() - t0)
                if not np.isfinite(gain) or gain <= 0.0:
                    break
                t0 = perf_counter() if traced else 0.0
                state.add_replica(i, k)
                engine.notify_allocation(i, k)
                steps += 1
                if traced:
                    tracer.add("commit", perf_counter() - t0)
            if traced:
                tracer.count("steps", steps)
        return PlacementResult(
            algorithm=self.name,
            state=state,
            otc=total_otc(state),
            runtime_s=timer.elapsed,
            rounds=steps,
        )
