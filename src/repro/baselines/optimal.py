"""Exact optimal replica placement for small instances.

The DRP is NP-complete (Eswaran 1974, cited by the paper), so exact
solutions exist only at toy scale — but there they anchor everything:
the optimality gap of AGT-RAM and every baseline is measured against
this solver in the evaluation (``bench_optimality_gap.py``) and the
test suite.

The search enumerates, object by object, which additional servers
replicate that object, with two prunings:

* **bound** — a node is cut when its OTC, minus an optimistic bound on
  the savings still available from undecided objects (each object's
  best-case savings ignoring capacity interactions), cannot beat the
  incumbent;
* **dominance** — per object, candidate servers with zero reads for it
  and no transit value can only add update cost... kept implicit in the
  bound, which already prices them correctly.

Complexity is exponential in M·N; callers must keep M, N tiny
(``max_nodes`` guards against accidents).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.baselines.base import ReplicaPlacer
from repro.drp.benefit import global_benefit_column
from repro.drp.cost import primary_only_otc, total_otc
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConvergenceError
from repro.result import PlacementResult
from repro.utils.timing import Timer


class OptimalPlacer(ReplicaPlacer):
    """Exhaustive branch-and-bound over replication schemes.

    Parameters
    ----------
    max_nodes:
        Hard cap on search nodes; exceeding it raises
        :class:`~repro.errors.ConvergenceError` rather than silently
        returning a non-optimal scheme.
    """

    name = "Optimal"

    def __init__(self, *, max_nodes: int = 2_000_000):
        if max_nodes <= 0:
            raise ValueError("max_nodes must be > 0")
        self.max_nodes = max_nodes

    def _place(self, instance: DRPInstance) -> PlacementResult:
        timer = Timer()
        with timer:
            best_x, best_otc, nodes = self._search(instance)
            state = ReplicationState.from_matrix(instance, best_x)
        return PlacementResult(
            algorithm=self.name,
            state=state,
            otc=total_otc(state),
            runtime_s=timer.elapsed,
            rounds=nodes,
            extra={"nodes": nodes},
        )

    # -- search --------------------------------------------------------------

    def _search(self, instance: DRPInstance):
        m, n = instance.n_servers, instance.n_objects
        base_state = ReplicationState.primaries_only(instance)
        base_x = base_state.x

        # Optimistic per-object savings: the best single-replica gain per
        # object, times the number of candidate servers, is a loose upper
        # bound; we use the tighter sum of positive single-replica gains
        # (supermodularity of reads means adding more replicas to one
        # object can't save more than the sum of their standalone gains
        # ... actually standalone gains overcount shared reads, which is
        # exactly what makes this an upper bound).
        opt_gain = np.zeros(n)
        for k in range(n):
            col = global_benefit_column(instance, base_state, k)
            finite = col[np.isfinite(col)]
            opt_gain[k] = float(finite[finite > 0].sum()) if len(finite) else 0.0
        suffix_gain = np.concatenate([np.cumsum(opt_gain[::-1])[::-1], [0.0]])

        best = {
            "x": base_x.copy(),
            "otc": primary_only_otc(instance),
        }
        nodes = 0

        def candidates_for(k: int, residual: np.ndarray) -> list[int]:
            return [
                i
                for i in range(m)
                if not base_x[i, k] and instance.sizes[k] <= residual[i]
            ]

        def recurse(k: int, x: np.ndarray, residual: np.ndarray, otc_now: float):
            nonlocal nodes
            nodes += 1
            if nodes > self.max_nodes:
                raise ConvergenceError(
                    f"optimal search exceeded {self.max_nodes} nodes; "
                    "instance too large for exact solving"
                )
            if otc_now < best["otc"]:
                best["otc"] = otc_now
                best["x"] = x.copy()
            if k == n:
                return
            # Bound: even saving every remaining object's optimistic gain
            # cannot beat the incumbent.
            if otc_now - suffix_gain[k] >= best["otc"]:
                return
            cands = candidates_for(k, residual)
            # Score every replica subset for object k, then recurse
            # best-first: a strong incumbent found early prunes siblings.
            scored: list[tuple[float, tuple[int, ...]]] = []
            for r in range(0, len(cands) + 1):
                for subset in combinations(cands, r):
                    for i in subset:
                        x[i, k] = True
                    scored.append(
                        (self._otc_with(instance, x, otc_now, k), subset)
                    )
                    for i in subset:
                        x[i, k] = False
            scored.sort(key=lambda t: t[0])
            for child_otc, subset in scored:
                for i in subset:
                    x[i, k] = True
                    residual[i] -= instance.sizes[k]
                recurse(k + 1, x, residual, child_otc)
                for i in subset:
                    x[i, k] = False
                    residual[i] += instance.sizes[k]

        # Precompute per-object primary-only OTC so deltas are local.
        self._per_obj_base = self._per_object_otc(instance, base_x)
        recurse(0, base_x.copy(), instance.replica_headroom().astype(np.int64).copy(),
                primary_only_otc(instance))
        return best["x"], best["otc"], nodes

    # -- per-object OTC helpers ------------------------------------------------

    @staticmethod
    def _object_otc(instance: DRPInstance, x: np.ndarray, k: int) -> float:
        reps = np.flatnonzero(x[:, k])
        c = instance.cost
        o = float(instance.sizes[k])
        d = c[:, reps[0]] if len(reps) == 1 else c[:, reps].min(axis=1)
        read = o * float(instance.reads[:, k] @ d)
        cp = instance.primary_cost_rows()[k]
        b = float(cp[reps].sum())
        w = instance.writes[:, k].astype(np.float64)
        write = o * float(
            (w * (c[:, instance.primaries[k]] + b)).sum()
            - (w[reps] * cp[reps]).sum()
        )
        return read + write

    def _per_object_otc(self, instance: DRPInstance, x: np.ndarray) -> np.ndarray:
        return np.array(
            [self._object_otc(instance, x, k) for k in range(instance.n_objects)]
        )

    def _otc_with(
        self, instance: DRPInstance, x: np.ndarray, otc_now: float, k: int
    ) -> float:
        """OTC after object k's replica set in ``x`` replaced its base set."""
        return otc_now - self._per_obj_base[k] + self._object_otc(instance, x, k)


def brute_force_otc(instance: DRPInstance) -> float:
    """Independent-objects exhaustive minimum, valid only when capacity
    never binds (used by tests to cross-check :class:`OptimalPlacer`).

    When every server can hold every object simultaneously, the DRP
    decomposes per object; this enumerates all 2^(M-1) replica sets per
    object and sums the minima.
    """
    m, n = instance.n_servers, instance.n_objects
    if (instance.replica_headroom() < instance.sizes.sum()).any():
        raise ValueError("capacity binds; per-object decomposition is invalid")
    base = ReplicationState.primaries_only(instance).x
    total = 0.0
    for k in range(n):
        others = [i for i in range(m) if not base[i, k]]
        best = np.inf
        for r in range(len(others) + 1):
            for subset in combinations(others, r):
                x = base.copy()
                for i in subset:
                    x[i, k] = True
                best = min(best, OptimalPlacer._object_otc(instance, x, k))
        total += best
    return total
