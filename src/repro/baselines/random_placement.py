"""Feasible random replica placement — the sanity floor.

Not one of the paper's comparators, but indispensable for testing and
for calibrating how much of each algorithm's savings is real signal: any
credible method must beat random placement by a wide margin on
read-heavy workloads.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ReplicaPlacer
from repro.drp.cost import total_otc
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.result import PlacementResult
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer


class RandomPlacer(ReplicaPlacer):
    """Allocate uniformly random feasible replicas until ``fill_fraction``
    of the total replica headroom is consumed or no move remains."""

    name = "Random"

    def __init__(self, *, fill_fraction: float = 0.9, seed: SeedLike = None):
        if not (0.0 <= fill_fraction <= 1.0):
            raise ValueError(f"fill_fraction must be in [0, 1], got {fill_fraction}")
        self.fill_fraction = fill_fraction
        self.seed = seed

    def _place(self, instance: DRPInstance) -> PlacementResult:
        rng = as_generator(self.seed)
        timer = Timer()
        with timer:
            state = ReplicationState.primaries_only(instance)
            budget = int(self.fill_fraction * instance.replica_headroom().sum())
            used = 0
            rounds = 0
            # Candidate pool of (server, object) cells, consumed in random
            # order; infeasible picks are skipped, which keeps the loop
            # O(M*N) total.
            m, n = instance.n_servers, instance.n_objects
            order = rng.permutation(m * n)
            for flat in order:
                if used >= budget:
                    break
                i, k = divmod(int(flat), n)
                if state.can_host(i, k):
                    state.add_replica(i, k)
                    used += int(instance.sizes[k])
                    rounds += 1
        return PlacementResult(
            algorithm=self.name,
            state=state,
            otc=total_otc(state),
            runtime_s=timer.elapsed,
            rounds=rounds,
        )
