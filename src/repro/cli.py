"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
generate   build a DRP instance from knobs and save it to .npz
run        run one placement algorithm on an instance (file or knobs)
compare    run several algorithms and print the comparison table
sweep      capacity or R/W sweep, printed as table + ASCII chart
axioms     run AGT-RAM with an audit and verify the six axioms
bench      machine-readable perf harness (BENCH_*.json + regression diff)
audit      offline axiom verification of a recorded JSONL event log
chaos      seeded fault-injection campaign vs a fault-free baseline
adversary  seeded Byzantine-agent campaign vs the honest baseline
serve      resilient online serving campaign with SLO gates
shard      partition-tolerance campaign for the sharded central

``run`` and ``bench`` accept ``--events`` (JSONL event log),
``--chrome-trace`` (Perfetto-loadable trace) and ``--metrics-out``
(OpenMetrics textfile) to export the observability stream.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.agt_ram import run_agt_ram
from repro.core.axioms import verify_axioms
from repro.drp.delta import ENGINE_NAMES
from repro.drp.instance import DRPInstance
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.experiments.runner import PAPER_ALGORITHMS, run_algorithms
from repro.experiments.report import format_series
from repro.experiments.sweeps import capacity_sweep, rw_ratio_sweep
from repro.io import load_instance, save_instance, save_result
from repro.obs.report import BENCH_SCALE_CONFIGS
from repro.runtime.adversary import BEHAVIORS
from repro.serving.streams import SERVE_WORKLOADS
from repro.utils.ascii_chart import ascii_chart
from repro.utils.tables import render_table


def _add_instance_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--instance", help="load a saved instance (.npz) instead of generating")
    p.add_argument("--servers", type=int, default=40, help="M (default 40)")
    p.add_argument("--objects", type=int, default=160, help="N (default 160)")
    p.add_argument("--requests", type=int, default=30_000)
    p.add_argument("--rw-ratio", type=float, default=0.9, dest="rw_ratio")
    p.add_argument(
        "--capacity", type=float, default=0.3, help="C%% as a fraction (default 0.3)"
    )
    p.add_argument(
        "--topology",
        default="random",
        choices=["random", "waxman", "powerlaw", "transit-stub"],
    )
    p.add_argument("--seed", type=int, default=0)


def _instance_from_args(args: argparse.Namespace) -> DRPInstance:
    if getattr(args, "instance", None):
        return load_instance(args.instance)
    cfg = ExperimentConfig(
        n_servers=args.servers,
        n_objects=args.objects,
        total_requests=args.requests,
        rw_ratio=args.rw_ratio,
        capacity_fraction=args.capacity,
        topology=args.topology,
        topology_params={} if args.topology != "random" else {"p": 0.4},
        seed=args.seed,
        name="cli",
    )
    return paper_instance(cfg)


def _cfg_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        n_servers=args.servers,
        n_objects=args.objects,
        total_requests=args.requests,
        rw_ratio=args.rw_ratio,
        capacity_fraction=args.capacity,
        topology=args.topology,
        topology_params={} if args.topology != "random" else {"p": 0.4},
        seed=args.seed,
        name="cli-sweep",
    )


def cmd_generate(args: argparse.Namespace) -> int:
    instance = _instance_from_args(args)
    path = save_instance(instance, args.output)
    print(f"wrote {instance} -> {path}")
    return 0


def _add_export_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--events", help="write the JSONL event log to this path"
    )
    p.add_argument(
        "--events-rotate-mb",
        dest="events_rotate_mb",
        type=float,
        metavar="MB",
        help="rotate the --events log into .partNNNNN chunk files of "
        "about this many megabytes each",
    )
    p.add_argument(
        "--events-binary",
        dest="events_binary",
        help="also write the compact binary event log (REVB) to this path",
    )
    p.add_argument(
        "--chrome-trace",
        dest="chrome_trace",
        help="write a Chrome trace-event JSON (Perfetto) to this path",
    )
    p.add_argument(
        "--metrics-out",
        dest="metrics_out",
        help="write an OpenMetrics/Prometheus textfile snapshot to this path",
    )


#: Campaign artifact arguments `_apply_out_dir` relocates.
_ARTIFACT_ATTRS = (
    "events",
    "events_binary",
    "chrome_trace",
    "metrics_out",
    "report",
    "fault_log",
    "plan_out",
)


def _add_out_dir_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--out-dir",
        dest="out_dir",
        default="out",
        help="directory campaign artifacts (--report, --events, …) are "
        "written under; created if missing, relative artifact paths are "
        "prefixed with it (default: out)",
    )


def _apply_out_dir(args: argparse.Namespace) -> None:
    """Route the campaign's relative artifact paths under ``--out-dir``.

    Absolute paths are honoured as given; the directory is only created
    when some artifact will actually land in it, so a dry campaign run
    leaves the tree untouched.
    """
    from pathlib import Path

    out_dir = getattr(args, "out_dir", None)
    if not out_dir or out_dir == ".":
        return
    base = Path(out_dir)
    used = False
    for attr in _ARTIFACT_ATTRS:
        value = getattr(args, attr, None)
        if value and not Path(value).is_absolute():
            setattr(args, attr, str(base / value))
            used = True
    if used:
        base.mkdir(parents=True, exist_ok=True)


def _wants_events(args: argparse.Namespace) -> bool:
    return bool(args.events or args.chrome_trace or args.events_binary)


def _write_event_exports(args: argparse.Namespace, sink) -> None:
    """Write the requested --events/--chrome-trace files from a sink."""
    from repro.obs.export import (
        RotatingJsonlWriter,
        write_chrome_trace,
        write_events_binary,
        write_events_jsonl,
    )

    def lazy_events():
        # Block-aware sinks expand lazily; plain sinks hand over the list.
        return sink.iter_events() if hasattr(sink, "iter_events") else sink.events

    if args.events:
        if args.events_rotate_mb:
            with RotatingJsonlWriter(
                args.events, max_bytes=int(args.events_rotate_mb * 1_000_000)
            ) as writer:
                writer.write_all(lazy_events())
            print(
                f"wrote event log -> {writer.paths[0]} … "
                f"({len(writer.paths)} chunk(s), {writer.events_written} events)"
            )
        else:
            path = write_events_jsonl(lazy_events(), args.events)
            print(f"wrote event log -> {path} ({len(sink)} events)")
    if args.events_binary:
        path = write_events_binary(lazy_events(), args.events_binary)
        print(f"wrote binary event log -> {path} ({len(sink)} events)")
    if args.chrome_trace:
        path = write_chrome_trace(sink.events, args.chrome_trace)
        print(f"wrote Chrome trace -> {path}")


def _campaign_instance_meta(
    instance: DRPInstance, args: argparse.Namespace
) -> dict:
    """The instance block every campaign report JSON carries."""
    return {
        "name": instance.name,
        "n_servers": instance.n_servers,
        "n_objects": instance.n_objects,
        "seed": args.seed,
    }


def _finish_campaign(
    args: argparse.Namespace,
    *,
    label: str,
    report: dict,
    failures: Sequence[str],
    sink=None,
) -> int:
    """Shared tail of a campaign subcommand (chaos / adversary / serve).

    Prints one ``FAIL:`` line per gate violation and the verdict, writes
    the ``--report`` JSON (stamped with ``failures`` / ``ok``), exports
    the captured event stream, and maps failures onto the exit status.
    """
    import json
    from pathlib import Path

    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    print(f"verdict: {'PASS' if not failures else 'FAIL'}")
    report = {**report, "failures": list(failures), "ok": not failures}
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {label} report -> {args.report}")
    if sink is not None:
        _write_event_exports(args, sink)
    return 1 if failures else 0


def cmd_run(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.obs import events as obs_events
    from repro.obs import tracer as obs_tracer

    instance = _instance_from_args(args)
    sink = obs_events.ColumnarSink()
    with ExitStack() as stack:
        if _wants_events(args):
            stack.enter_context(obs_events.capture(sink))
        tracer = (
            stack.enter_context(obs_tracer.capture())
            if args.metrics_out
            else None
        )
        placer_kwargs = (
            {"AGT-RAM": {"engine": args.engine}}
            if args.algorithm == "AGT-RAM"
            else None
        )
        results = run_algorithms(
            instance, [args.algorithm], seed=args.seed, placer_kwargs=placer_kwargs
        )
    res = results[args.algorithm]
    engine_note = (
        f"  engine {res.extra['engine']}" if "engine" in res.extra else ""
    )
    print(
        f"{res.algorithm}: OTC {res.otc:,.0f}  savings {res.savings_percent:.2f}%  "
        f"replicas {res.replicas_allocated}  runtime {res.runtime_s * 1e3:.1f} ms"
        f"{engine_note}"
    )
    _write_event_exports(args, sink)
    if args.metrics_out and tracer is not None:
        from pathlib import Path

        from repro.obs.export import openmetrics_from_snapshot

        text = openmetrics_from_snapshot(
            tracer.snapshot(), labels={"algorithm": args.algorithm}
        )
        Path(args.metrics_out).write_text(text)
        print(f"wrote OpenMetrics snapshot -> {args.metrics_out}")
    if args.output:
        path = save_result(res, args.output)
        print(f"wrote result -> {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    instance = _instance_from_args(args)
    algorithms = args.algorithms or list(PAPER_ALGORITHMS)
    results = run_algorithms(instance, algorithms, seed=args.seed)
    rows = [
        [a, r.savings_percent, r.runtime_s * 1e3, r.replicas_allocated]
        for a, r in results.items()
    ]
    print(
        render_table(
            ["method", "savings (%)", "runtime (ms)", "replicas"],
            rows,
            title=f"comparison on {instance.name} (M={instance.n_servers}, "
            f"N={instance.n_objects})",
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    cfg = _cfg_from_args(args)
    algorithms = args.algorithms or ["AGT-RAM", "Greedy"]
    if args.param == "capacity":
        rows = capacity_sweep(cfg, args.values or (0.1, 0.2, 0.3, 0.4),
                              algorithms, seed=args.seed)
        x_label = "capacity C"
    else:
        rows = rw_ratio_sweep(cfg, args.values or (0.5, 0.65, 0.8, 0.95),
                              algorithms, seed=args.seed)
        x_label = "R/W ratio"
    series: dict[str, list[tuple[float, float]]] = {}
    for r in rows:
        series.setdefault(r.algorithm, []).append((r.sweep_value, r.savings_percent))
    print(format_series(series, x_label=x_label))
    if not args.no_chart:
        print()
        print(ascii_chart(series, y_label="OTC savings (%)", x_label=x_label))
    if args.csv:
        from repro.experiments.export import sweep_to_csv

        path = sweep_to_csv(rows, args.csv)
        print(f"\nwrote raw rows -> {path}")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate the paper's figures/tables at a chosen scale."""
    from repro.experiments.figures import figure3_capacity_sweep, figure4_rw_sweep
    from repro.experiments.report import format_table_rows
    from repro.experiments.tables import table1_running_time, table2_quality
    from repro.experiments.config import SCALES

    base = SCALES[args.scale]
    grids = {
        "tiny": [(10, 40), (10, 60), (14, 40), (14, 60)],
        "small": [(30, 150), (30, 250), (50, 150), (50, 250)],
        "medium": [(60, 300), (60, 500), (100, 300), (100, 500)],
    }
    specs = {
        "tiny": [(10, 40, 0.2, 0.9), (12, 50, 0.3, 0.8), (14, 60, 0.25, 0.95)],
        "small": [(20, 90, 0.2, 0.9), (30, 150, 0.3, 0.8), (40, 220, 0.25, 0.95)],
        "medium": [(40, 180, 0.2, 0.9), (60, 280, 0.3, 0.8), (90, 580, 0.25, 0.95)],
    }
    targets = args.targets or ["fig3", "fig4", "table1", "table2"]
    if "fig3" in targets:
        series = figure3_capacity_sweep(base=base, seed=args.seed)
        print(format_series(series, x_label="capacity C",
                            title="Figure 3 — OTC savings (%) vs capacity"))
        print()
    if "fig4" in targets:
        series = figure4_rw_sweep(base=base, seed=args.seed)
        print(format_series(series, x_label="R/W ratio",
                            title="Figure 4 — OTC savings (%) vs R/W ratio"))
        print()
    if "table1" in targets:
        rows = table1_running_time(base, grid=grids[args.scale], seed=args.seed)
        print(format_table_rows(rows, metric_label="Table 1 — running time (s)"))
        print()
    if "table2" in targets:
        rows = table2_quality(base, specs=specs[args.scale], seed=args.seed)
        print(format_table_rows(rows, metric_label="Table 2 — OTC savings (%)"))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf harness, or diff two of its JSON documents."""
    from repro.obs.report import (
        compare_documents,
        default_output_name,
        format_comparison,
        load_document,
        run_bench,
        write_document,
    )

    if args.compare:
        old = load_document(args.compare[0])
        new = load_document(args.compare[1])
        cmp = compare_documents(
            old,
            new,
            time_tolerance=args.tolerance,
            quality_tolerance=args.quality_tolerance,
        )
        print(format_comparison(cmp))
        if cmp["regressions"]:
            if args.fail_on_regression:
                return 1
            print("(regressions are warn-only; pass --fail-on-regression to gate)")
        return 0

    from repro.obs import events as obs_events

    sink = obs_events.ColumnarSink()
    doc = run_bench(
        scale=args.scale,
        algorithms=args.algorithms,
        seed=args.seed,
        repeats=args.repeats,
        include_protocol=not args.no_protocol,
        event_sink=sink,
        engine=args.engine,
        include_engine_compare=not args.no_engine_compare,
    )
    rows = [
        [
            f"{r['scenario']}/{r['algorithm']}",
            r["wall_s"] * 1e3,
            r.get("savings_percent", 0.0),
            r.get("rounds", 0),
        ]
        for r in doc["results"]
    ]
    print(
        render_table(
            ["scenario", "wall (ms)", "savings (%)", "rounds"],
            rows,
            title=f"bench @ {doc['scale']} "
            f"(M={doc['config']['n_servers']}, N={doc['config']['n_objects']}, "
            f"best of {doc['repeats']})",
        )
    )
    for r in doc["results"]:
        if r["scenario"] == "engine_compare":
            verdict = "identical" if r["identical"] else "MISMATCH"
            print(
                f"engine compare: naive {r['naive_wall_s'] * 1e3:.2f} ms vs "
                f"vectorized {r['wall_s'] * 1e3:.2f} ms "
                f"({r['speedup']:.2f}x, {verdict})"
            )
    path = write_document(doc, args.out or default_output_name())
    print(f"wrote bench document -> {path}")
    _write_event_exports(args, sink)
    if args.metrics_out:
        from pathlib import Path

        from repro.obs.export import openmetrics_from_bench

        Path(args.metrics_out).write_text(openmetrics_from_bench(doc))
        print(f"wrote OpenMetrics snapshot -> {args.metrics_out}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """Offline verification of a recorded event log (Axioms 4/5), or —
    with ``--compare-engines`` — a live naive-vs-vectorized equivalence
    proof on a bench preset.

    The compare mode runs AGT-RAM once per engine under logical event
    time, diffs winners / payments / placements / the full event
    stream, re-audits both logs, and times both engines uninstrumented.
    Exit status is non-zero on any divergence, an audit violation, or a
    speedup below ``--min-speedup``.
    """
    if args.compare_engines:
        from repro.drp.delta import HAVE_NUMPY, numpy_support_error
        from repro.obs.equivalence import compare_engines_at_scale, format_comparison

        if not HAVE_NUMPY:
            print(f"error: {numpy_support_error()}", file=sys.stderr)
            return 2
        cmp = compare_engines_at_scale(args.scale, repeats=args.repeats)
        # The identity verdict is deterministic; the speedup is a wall
        # measurement on possibly-noisy shared hardware, so before
        # failing the gate on it alone, re-measure and keep the best
        # attempt.  A genuinely slow engine fails every attempt.
        attempt = 0
        while (
            cmp.identical
            and cmp.audit_ok
            and args.min_speedup > 0
            and cmp.speedup < args.min_speedup
            and attempt < args.retries
        ):
            attempt += 1
            print(
                f"speedup {cmp.speedup:.2f}x below {args.min_speedup:.2f}x; "
                f"re-measuring (attempt {attempt}/{args.retries})",
                file=sys.stderr,
            )
            retry = compare_engines_at_scale(args.scale, repeats=args.repeats)
            if retry.speedup > cmp.speedup:
                cmp = retry
        print(format_comparison(cmp))
        failed = not (cmp.identical and cmp.audit_ok)
        if args.min_speedup > 0 and cmp.speedup < args.min_speedup:
            print(
                f"FAIL: speedup {cmp.speedup:.2f}x below required "
                f"{args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            failed = True
        return 1 if failed else 0

    if args.emission_gate:
        from repro.obs.overhead import (
            compare_emission_paths,
            default_overhead_budget,
            format_emission_comparison,
        )

        budget = (
            args.max_overhead
            if args.max_overhead is not None
            else default_overhead_budget(args.scale)
        )
        cmp = compare_emission_paths(args.scale, repeats=args.repeats)
        # Byte-equivalence is deterministic; the overhead is a timing
        # measurement on possibly-noisy shared hardware, so before
        # failing the gate on it alone, re-measure and keep the best
        # attempt.  A genuinely slow emission path fails every attempt.
        attempt = 0
        while (
            cmp.ok
            and cmp.overhead_percent > budget
            and attempt < args.retries
        ):
            attempt += 1
            print(
                f"overhead {cmp.overhead_percent:.2f}% above {budget:.2f}%; "
                f"re-measuring (attempt {attempt}/{args.retries})",
                file=sys.stderr,
            )
            retry = compare_emission_paths(args.scale, repeats=args.repeats)
            if retry.overhead_percent < cmp.overhead_percent:
                cmp = retry
        print(format_emission_comparison(cmp))
        failed = not cmp.ok
        if cmp.overhead_percent > budget:
            print(
                f"FAIL: eventing overhead {cmp.overhead_percent:.2f}% above "
                f"budget {budget:.2f}%",
                file=sys.stderr,
            )
            failed = True
        return 1 if failed else 0

    if not args.log:
        print(
            "error: provide an event log, --compare-engines, or "
            "--emission-gate",
            file=sys.stderr,
        )
        return 2
    if args.sharded:
        from repro.obs.audit import audit_sharded_files

        try:
            report = audit_sharded_files(args.log)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.summary())
        return 0 if report.ok else 1
    from repro.obs.audit import audit_files

    window = args.window if args.window else (64 if args.stream else 0)

    def progress(rounds_done: int, running) -> None:
        if args.stream:
            status = (
                "ok"
                if running.ok
                else f"{len(running.violations)} violation(s)"
            )
            print(f"  … {rounds_done} rounds audited, {status}")

    try:
        report = audit_files(args.log, window=window, on_window=progress)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0 if report.ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos campaign: run the simulator under a fault plan and
    report OTC / round / message degradation against the fault-free
    baseline on the same instance.

    The run is fully deterministic (``--fault-seed`` fixes the schedule
    and the channel; the event log uses a logical clock, so two runs
    with the same arguments are byte-for-byte identical).  Exit status
    is non-zero if the final scheme is infeasible, the event log fails
    the mechanism audit, or OTC degrades beyond ``--max-degradation``.
    """
    import json
    from pathlib import Path

    from repro.drp.feasibility import check_state
    from repro.obs import events as obs_events
    from repro.obs.audit import audit_events
    from repro.runtime.faults import ChannelConfig, FaultPlan, FaultSchedule, QuorumPolicy
    from repro.runtime.simulator import SemiDistributedSimulator

    _apply_out_dir(args)
    instance = _instance_from_args(args)
    m = instance.n_servers

    baseline = SemiDistributedSimulator().run(instance)
    base_log = baseline.extra["metrics"].log

    schedule = FaultSchedule.random(
        n_agents=m,
        horizon=args.horizon,
        seed=args.fault_seed,
        crash_rate=args.crash_rate,
        mean_outage=args.mean_outage,
        straggler_rate=args.straggler_rate,
        central_crash_rate=args.central_crash_rate,
        central_crashes=tuple(args.central_crash_round or ()),
    )
    plan = FaultPlan(
        schedule=schedule,
        channel=ChannelConfig(
            drop=args.drop, delay=args.delay, duplicate=args.duplicate
        ),
        quorum=QuorumPolicy(
            quorum=args.quorum,
            max_retries=args.max_retries,
            max_stalled_rounds=args.max_stalled_rounds,
        ),
        checkpoint_period=args.checkpoint_period,
        seed=args.fault_seed,
    )

    sink = obs_events.ColumnarSink()
    with obs_events.logical_time(), obs_events.capture(sink):
        chaos = SemiDistributedSimulator(faults=plan).run(instance)
    chaos_log = chaos.extra["metrics"].log

    failures = []
    feasible = True
    try:
        check_state(chaos.state)
    except Exception as exc:  # infeasibility details go in the report
        feasible = False
        failures.append(f"infeasible final scheme: {exc}")

    audit = audit_events(sink.events)
    if not audit.ok:
        failures.append(
            f"mechanism audit FAIL ({len(audit.violations)} violations)"
        )
    degradation = chaos.otc / baseline.otc if baseline.otc else 1.0
    if args.max_degradation is not None and degradation > args.max_degradation:
        failures.append(
            f"OTC degradation x{degradation:.4f} exceeds bound "
            f"x{args.max_degradation:.4f}"
        )
    summary = chaos.extra["fault_summary"]

    rows = [
        ["OTC", f"{baseline.otc:,.0f}", f"{chaos.otc:,.0f}",
         f"x{degradation:.4f}"],
        ["rounds (committed)", baseline.rounds, chaos.rounds, ""],
        ["rounds (protocol)", baseline.extra["protocol_rounds"],
         chaos.extra["protocol_rounds"], ""],
        ["messages", base_log.total_messages(), chaos_log.total_messages(),
         ""],
        ["bytes", base_log.bytes_total, chaos_log.bytes_total, ""],
    ]
    print(
        render_table(
            ["metric", "fault-free", "chaos", "degradation"],
            rows,
            title=f"chaos campaign on {instance.name} (M={m}, "
            f"N={instance.n_objects}, fault seed {args.fault_seed})",
        )
    )
    injected = summary["injected"]
    print(
        "injected: "
        + ", ".join(f"{k}={v}" for k, v in sorted(injected.items()) if v)
    )
    print(f"feasible: {'yes' if feasible else 'NO'}")
    print(f"audit:    {'PASS' if audit.ok else 'FAIL'}")

    report = {
        "kind": "repro-chaos",
        "instance": _campaign_instance_meta(instance, args),
        "fault_seed": args.fault_seed,
        "baseline": {
            "otc": baseline.otc,
            "rounds": baseline.rounds,
            "messages": base_log.total_messages(),
            "bytes": base_log.bytes_total,
        },
        "chaos": {
            "otc": chaos.otc,
            "rounds": chaos.rounds,
            "protocol_rounds": chaos.extra["protocol_rounds"],
            "messages": chaos_log.total_messages(),
            "bytes": chaos_log.bytes_total,
            "message_counts": dict(sorted(chaos_log.counts.items())),
        },
        "otc_degradation": degradation,
        "feasible": feasible,
        "audit_ok": audit.ok,
        "audit_violations": [str(v) for v in audit.violations],
        "fault_summary": summary,
    }
    if args.fault_log:
        Path(args.fault_log).write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote fault summary -> {args.fault_log}")
    return _finish_campaign(
        args, label="chaos", report=report, failures=failures, sink=sink
    )


def cmd_adversary(args: argparse.Namespace) -> int:
    """Seeded Byzantine campaign: sweep adversary fractions on one
    instance and report OTC degradation vs. the honest run plus online
    detection quality (recall / precision over injected manipulations).

    Deterministic like ``chaos``: ``--adv-seed`` fixes who misbehaves
    and how, and the logical event clock makes same-seed runs
    byte-for-byte identical.  Exit status is non-zero if any swept run
    produces an infeasible scheme, fails the mechanism audit,
    quarantines an honest agent, detects fewer than ``--min-recall`` of
    the injected manipulations, or degrades OTC beyond
    ``--max-degradation``.
    """
    from repro.drp.feasibility import check_state
    from repro.obs import events as obs_events
    from repro.obs.audit import audit_events
    from repro.runtime.adversary import AdversaryPlan, QuarantinePolicy
    from repro.runtime.simulator import SemiDistributedSimulator

    _apply_out_dir(args)
    instance = _instance_from_args(args)
    m = instance.n_servers

    baseline = SemiDistributedSimulator().run(instance)

    policy = QuarantinePolicy(
        strikes=args.strikes,
        probation=args.probation,
        max_quarantines=args.max_quarantines,
    )
    fractions = args.fraction or [0.25]

    rows = []
    runs = []
    failures = []
    sink = obs_events.ColumnarSink()
    for fraction in fractions:
        plan = AdversaryPlan.random(
            n_agents=m,
            fraction=fraction,
            behaviors=tuple(args.behaviors) if args.behaviors else BEHAVIORS,
            factor=args.factor,
            activity=args.activity,
            seed=args.adv_seed,
        )
        sink = obs_events.ColumnarSink()
        with obs_events.logical_time(), obs_events.capture(sink):
            result = SemiDistributedSimulator(
                adversary=plan, quarantine=policy
            ).run(instance)

        feasible = True
        try:
            check_state(result.state)
        except Exception as exc:
            feasible = False
            failures.append(f"fraction {fraction}: infeasible scheme: {exc}")
        audit = audit_events(sink.events)
        if not audit.ok:
            failures.append(
                f"fraction {fraction}: audit FAIL "
                f"({len(audit.violations)} violations)"
            )

        # Ground truth vs. what the online defences flagged, joined on
        # (round, agent).  AdversaryEvent is emitted only for bids the
        # injector actually altered, so recall is over real injections.
        truth = set()
        flagged = set()
        quarantined_agents = set()
        for e in sink.events:
            d = e.to_dict()
            if d["type"] == "adversary":
                truth.add((d["round"], d["agent"]))
            elif d["type"] in ("validation", "manipulation") and d["agent"] >= 0:
                flagged.add((d["round"], d["agent"]))
            elif d["type"] == "quarantine" and d["action"] in (
                "quarantine",
                "expel",
            ):
                quarantined_agents.add(d["agent"])
        caught = truth & flagged
        recall = len(caught) / len(truth) if truth else 1.0
        precision = len(caught) / len(flagged) if flagged else 1.0
        false_quarantines = sorted(
            quarantined_agents - set(plan.agents)
        )
        if false_quarantines:
            failures.append(
                f"fraction {fraction}: honest agents quarantined: "
                f"{false_quarantines}"
            )
        if args.min_recall is not None and recall < args.min_recall:
            failures.append(
                f"fraction {fraction}: recall {recall:.3f} below bound "
                f"{args.min_recall:.3f}"
            )
        degradation = result.otc / baseline.otc if baseline.otc else 1.0
        if (
            args.max_degradation is not None
            and degradation > args.max_degradation
        ):
            failures.append(
                f"fraction {fraction}: OTC degradation x{degradation:.4f} "
                f"exceeds bound x{args.max_degradation:.4f}"
            )

        trust = result.extra["trust_summary"]
        rows.append(
            [
                f"{fraction:.2f}",
                len(plan.agents),
                f"{result.otc:,.0f}",
                f"x{degradation:.4f}",
                len(truth),
                f"{recall:.3f}",
                f"{precision:.3f}",
                len(trust["agents_quarantined"]),
                len(trust["agents_expelled"]),
                len(false_quarantines),
            ]
        )
        runs.append(
            {
                "fraction": fraction,
                "plan": plan.to_dict(),
                "otc": result.otc,
                "otc_degradation": degradation,
                "rounds": result.rounds,
                "protocol_rounds": result.extra["protocol_rounds"],
                "feasible": feasible,
                "audit_ok": audit.ok,
                "audit_violations": [str(v) for v in audit.violations],
                "injected": len(truth),
                "flagged": len(flagged),
                "recall": recall,
                "precision": precision,
                "false_quarantines": false_quarantines,
                "adversary_summary": result.extra["adversary_summary"],
                "trust_summary": trust,
            }
        )

    print(
        render_table(
            [
                "fraction",
                "byz",
                "OTC",
                "degradation",
                "injected",
                "recall",
                "precision",
                "quarantined",
                "expelled",
                "false-q",
            ],
            rows,
            title=f"adversary campaign on {instance.name} (M={m}, "
            f"N={instance.n_objects}, honest OTC {baseline.otc:,.0f}, "
            f"adv seed {args.adv_seed})",
        )
    )
    report = {
        "kind": "repro-adversary",
        "instance": _campaign_instance_meta(instance, args),
        "adv_seed": args.adv_seed,
        "quarantine_policy": policy.to_dict(),
        "baseline": {"otc": baseline.otc, "rounds": baseline.rounds},
        "runs": runs,
    }
    return _finish_campaign(
        args, label="adversary", report=report, failures=failures, sink=sink
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Resilient online serving campaign with SLO gates.

    Auctions a placement for the workload's measured demand, then
    streams the workload's requests against it under an (optional)
    fault schedule: nearest-replica routing, timeout + backoff
    failover, hedged reads, token-bucket shedding, and drift-triggered
    incremental re-auctions.  Deterministic like ``chaos``: the event
    log uses a logical clock, so two runs with the same arguments are
    byte-for-byte identical.  Exit status is non-zero if either audit
    fails, availability drops below ``--min-availability``, or p99
    latency exceeds ``--max-p99``.
    """
    import math

    from repro.obs import events as obs_events
    from repro.obs.audit import audit_events, audit_serving_events
    from repro.runtime.faults import FaultSchedule
    from repro.runtime.simulator import SemiDistributedSimulator
    from repro.serving import ServeConfig, make_traffic, serve, with_demand

    _apply_out_dir(args)
    base = _instance_from_args(args)
    m = base.n_servers

    traffic = make_traffic(
        args.workload, base, args.serve_requests, seed=args.serve_seed
    )
    instance = with_demand(base, traffic)
    placement = SemiDistributedSimulator().run(instance)

    horizon = max(
        1, math.ceil(args.serve_requests / args.requests_per_round)
    )
    if args.crash_rate > 0 or args.straggler_rate > 0:
        schedule = FaultSchedule.random(
            n_agents=m,
            horizon=horizon,
            seed=args.fault_seed,
            crash_rate=args.crash_rate,
            mean_outage=args.mean_outage,
            straggler_rate=args.straggler_rate,
        )
    else:
        schedule = FaultSchedule.null()

    config = ServeConfig(
        timeout=args.timeout,
        max_attempts=args.max_attempts,
        hedge_quantile=args.hedge_quantile,
        hedge_enabled=not args.no_hedge,
        rate=args.rate,
        burst=args.burst,
        requests_per_round=args.requests_per_round,
        drift_window=args.drift_window,
        drift_threshold=args.drift_threshold,
        drift_top_k=args.drift_top_k,
        max_reauctions=args.max_reauctions,
    )

    sink = obs_events.ColumnarSink()
    with obs_events.logical_time(), obs_events.capture(sink):
        rep = serve(
            instance,
            placement.state,
            traffic.stream,
            config=config,
            faults=schedule,
            seed=args.serve_seed,
            workload=args.workload,
            n_requests=args.serve_requests,
        )

    serving_audit = audit_serving_events(sink.events)
    mech_audit = audit_events(sink.events)

    failures = []
    if not serving_audit.ok:
        failures.append(
            f"serving audit FAIL ({len(serving_audit.violations)} violations)"
        )
    if not mech_audit.ok:
        failures.append(
            f"mechanism audit FAIL ({len(mech_audit.violations)} violations)"
        )
    if (
        args.min_availability is not None
        and rep.availability < args.min_availability
    ):
        failures.append(
            f"availability {rep.availability:.4f} below bound "
            f"{args.min_availability:.4f}"
        )
    if args.max_p99 is not None and rep.p99 > args.max_p99:
        failures.append(
            f"p99 latency {rep.p99:.1f} exceeds bound {args.max_p99:.1f}"
        )

    rows = [
        ["requests", rep.n_requests],
        ["admitted", rep.admitted],
        ["served", rep.served],
        ["failed", rep.failed],
        ["shed", rep.shed],
        ["availability", f"{rep.availability:.4f}"],
        ["p50 latency", f"{rep.p50:.1f}"],
        ["p99 latency", f"{rep.p99:.1f}"],
        ["hedges", rep.hedges],
        ["failovers", rep.failovers],
        ["timeouts", rep.timeouts],
        ["re-auctions", rep.reauctions],
    ]
    print(
        render_table(
            ["metric", "value"],
            rows,
            title=f"serving campaign: {args.workload} on {instance.name} "
            f"(M={m}, N={instance.n_objects}, serve seed "
            f"{args.serve_seed}, fault seed {args.fault_seed})",
        )
    )
    print(f"serving audit:   {'PASS' if serving_audit.ok else 'FAIL'}")
    print(f"mechanism audit: {'PASS' if mech_audit.ok else 'FAIL'}")

    report = {
        "kind": "repro-serve",
        "instance": _campaign_instance_meta(base, args),
        "workload": args.workload,
        "serve_seed": args.serve_seed,
        "fault_seed": args.fault_seed,
        "placement": {"otc": placement.otc, "rounds": placement.rounds},
        "serving": rep.to_dict(),
        "serving_audit_ok": serving_audit.ok,
        "serving_audit_violations": [
            str(v) for v in serving_audit.violations
        ],
        "audit_ok": mech_audit.ok,
        "audit_violations": [str(v) for v in mech_audit.violations],
        "gates": {
            "min_availability": args.min_availability,
            "max_p99": args.max_p99,
        },
    }
    return _finish_campaign(
        args, label="serve", report=report, failures=failures, sink=sink
    )


def cmd_shard(args: argparse.Namespace) -> int:
    """Partition-tolerance campaign for the sharded central.

    Runs the concurrent regional mechanism healthy, then sweeps
    partition fractions (seeded :class:`PartitionSchedule`\\ s with
    optional regional-central crashes) and reports rounds to
    convergence, OTC degradation, split-brain statistics and the
    message/byte reduction against the single-central simulator
    baseline on the same instance.

    Deterministic like ``chaos``: ``--shard-seed`` fixes the proximity
    partition, ``--partition-seed`` the schedule, and the logical event
    clock makes same-argument runs (and their ``--report`` JSON)
    byte-for-byte identical.  Exit status is non-zero if any swept run
    is infeasible, fails the per-shard/cross-shard audit, degrades OTC
    beyond ``--max-degradation``, if the healthy sharded run's message
    reduction is below ``--min-message-reduction``, or if
    ``--check-null`` finds the null-schedule event stream differing
    from the unpartitioned one.
    """
    import json
    from pathlib import Path

    from repro.drp.feasibility import check_state
    from repro.obs import events as obs_events
    from repro.obs.audit import audit_sharded_events
    from repro.runtime.shard import PartitionSchedule, ShardedAGTRam
    from repro.runtime.simulator import SemiDistributedSimulator

    _apply_out_dir(args)
    if args.scale:
        instance = paper_instance(BENCH_SCALE_CONFIGS[args.scale])
    else:
        instance = _instance_from_args(args)
    m = instance.n_servers

    baseline = SemiDistributedSimulator().run(instance)
    base_log = baseline.extra["metrics"].log
    base_msgs = sum(base_log.counts.values())

    def sharded(plan):
        sink = obs_events.ColumnarSink()
        with obs_events.logical_time(), obs_events.capture(sink):
            result = ShardedAGTRam(
                n_regions=args.regions,
                plan=plan,
                engine=args.engine,
                seed=args.shard_seed,
            ).run(instance)
        return result, sink

    failures = []

    # Healthy sharded reference: the horizon for random schedules and
    # the headline message-reduction claim (partitioned runs add heal
    # resyncs and election storms on top; the reduction is a property
    # of the healthy protocol).
    healthy, _ = sharded(None)
    healthy_msgs = healthy.extra["messages"]
    reduction = base_msgs / healthy_msgs if healthy_msgs else float("inf")
    byte_reduction = (
        base_log.bytes_total / healthy.extra["message_bytes"]
        if healthy.extra["message_bytes"]
        else float("inf")
    )
    horizon = args.horizon if args.horizon else max(1, healthy.rounds)
    if (
        args.min_message_reduction is not None
        and reduction < args.min_message_reduction
    ):
        failures.append(
            f"message reduction x{reduction:.2f} below required "
            f"x{args.min_message_reduction:.2f}"
        )

    if args.check_null:
        null_run, null_sink = sharded(PartitionSchedule.null(args.regions))
        _, plain_sink = sharded(None)
        null_stream = [e.to_dict() for e in null_sink.events]
        plain_stream = [e.to_dict() for e in plain_sink.events]
        if null_stream != plain_stream:
            failures.append(
                "null partition schedule diverges from the unpartitioned "
                f"run ({len(null_stream)} vs {len(plain_stream)} events)"
            )
        elif null_run.extra["messages"] != healthy_msgs:
            failures.append(
                "null partition schedule changes the message count "
                f"({null_run.extra['messages']} vs {healthy_msgs})"
            )

    if args.plan:
        loaded = PartitionSchedule.from_dict(
            json.loads(Path(args.plan).read_text())
        )
        sweeps = [(None, loaded)]
    else:
        fractions = args.fraction or [0.0, 0.25, 0.5]
        sweeps = [
            (
                fraction,
                PartitionSchedule.random(
                    n_regions=args.regions,
                    horizon=horizon,
                    seed=args.partition_seed,
                    partition_fraction=fraction,
                    mean_width=args.mean_width,
                    n_islands=args.islands,
                    crash_rate=args.crash_rate,
                ),
            )
            for fraction in fractions
        ]

    rows = []
    runs = []
    sink = obs_events.ColumnarSink()
    for fraction, plan in sweeps:
        label = "file" if fraction is None else f"{fraction:.2f}"
        result, sink = sharded(plan)
        feasible = True
        try:
            check_state(result.state)
        except Exception as exc:
            feasible = False
            failures.append(f"fraction {label}: infeasible scheme: {exc}")
        audit = audit_sharded_events(sink.events)
        if not audit.ok:
            failures.append(
                f"fraction {label}: sharded audit FAIL "
                f"({len(audit.violations)} violations)"
            )
        degradation = result.otc / baseline.otc if baseline.otc else 1.0
        if (
            args.max_degradation is not None
            and degradation > args.max_degradation
        ):
            failures.append(
                f"fraction {label}: OTC degradation x{degradation:.4f} "
                f"exceeds bound x{args.max_degradation:.4f}"
            )
        msgs = result.extra["messages"]
        ratio = base_msgs / msgs if msgs else float("inf")
        rows.append(
            [
                label,
                result.extra["windows"],
                result.extra["heals"],
                result.extra["conflicts"],
                result.extra["revocations"],
                result.extra["crashes_injected"],
                f"{result.otc:,.0f}",
                f"x{degradation:.4f}",
                result.rounds,
                msgs,
                f"x{ratio:.2f}",
                "PASS" if audit.ok else "FAIL",
            ]
        )
        runs.append(
            {
                "fraction": fraction,
                "schedule": plan.to_dict(),
                "otc": result.otc,
                "otc_degradation": degradation,
                "rounds": result.rounds,
                "messages": msgs,
                "message_bytes": result.extra["message_bytes"],
                "message_counts": dict(
                    sorted(result.extra["message_counts"].items())
                ),
                "message_reduction": ratio,
                "feasible": feasible,
                "audit_ok": audit.ok,
                "audit_violations": [str(v) for v in audit.violations],
                "windows": result.extra["windows"],
                "heals": result.extra["heals"],
                "divergent": result.extra["divergent"],
                "conflicts": result.extra["conflicts"],
                "revocations": result.extra["revocations"],
                "refunded_capacity": result.extra["refunded_capacity"],
                "refunded_payment": result.extra["refunded_payment"],
                "reauctioned": result.extra["reauctioned"],
                "elections": result.extra["elections"],
                "recoveries": result.extra["recoveries"],
                "crashes_injected": result.extra["crashes_injected"],
            }
        )

    print(
        render_table(
            [
                "fraction",
                "windows",
                "heals",
                "conflicts",
                "revoked",
                "crashes",
                "OTC",
                "degradation",
                "rounds",
                "msgs",
                "reduction",
                "audit",
            ],
            rows,
            title=f"shard campaign on {instance.name} (M={m}, "
            f"N={instance.n_objects}, k={args.regions}, shard seed "
            f"{args.shard_seed}, partition seed {args.partition_seed})",
        )
    )
    print(
        f"single central: {base_msgs} messages / {base_log.bytes_total} "
        f"bytes in {baseline.rounds} rounds"
    )
    print(
        f"sharded (healthy): {healthy_msgs} messages / "
        f"{healthy.extra['message_bytes']} bytes in {healthy.rounds} rounds "
        f"(reduction x{reduction:.2f} msgs, x{byte_reduction:.2f} bytes)"
    )

    report = {
        "kind": "repro-shard",
        "instance": _campaign_instance_meta(instance, args),
        "scale": args.scale,
        "regions": args.regions,
        "shard_seed": args.shard_seed,
        "partition_seed": args.partition_seed,
        "baseline": {
            "otc": baseline.otc,
            "rounds": baseline.rounds,
            "messages": base_msgs,
            "bytes": base_log.bytes_total,
        },
        "healthy": {
            "otc": healthy.otc,
            "rounds": healthy.rounds,
            "messages": healthy_msgs,
            "bytes": healthy.extra["message_bytes"],
        },
        "message_reduction": reduction,
        "byte_reduction": byte_reduction,
        "gates": {
            "max_degradation": args.max_degradation,
            "min_message_reduction": args.min_message_reduction,
            "check_null": bool(args.check_null),
        },
        "runs": runs,
    }
    if args.plan_out:
        plans = {
            ("file" if f is None else f"{f:g}"): p.to_dict()
            for f, p in sweeps
        }
        Path(args.plan_out).write_text(json.dumps(plans, indent=2) + "\n")
        print(f"wrote partition schedule(s) -> {args.plan_out}")
    return _finish_campaign(
        args, label="shard", report=report, failures=failures, sink=sink
    )


def cmd_resilience(args: argparse.Namespace) -> int:
    """Composed failure-plane survivability campaign.

    Runs each selected :class:`~repro.runtime.scenario.Scenario` —
    curated catalog entries and/or ``--lottery`` random compositions —
    end to end over the sharded serving stack with the online
    invariant monitor armed, then gates on availability, invariant
    violations, the composed audits, the degradation budget and
    detection recall.  A failing scenario is greedily shrunk (drop
    planes, halve the workload, bisect the horizon) to a minimal
    still-failing ``<name>_scenario.json`` repro artifact unless
    ``--no-shrink``.  Deterministic like the other campaigns: every
    plane draws from its own substream of the scenario seed and the
    event log runs on the logical clock, so same-argument runs (and
    the ``--report`` JSON) are byte-for-byte identical.
    """
    import json
    from pathlib import Path

    from repro.errors import ReproError
    from repro.runtime.scenario import (
        CATALOG,
        Scenario,
        run_scenario,
        scenario_fails,
        shrink_scenario,
    )

    _apply_out_dir(args)

    scenarios: list[Scenario] = []
    for name in args.scenario or ():
        if name not in CATALOG:
            print(
                f"unknown scenario {name!r}; catalog: "
                f"{', '.join(CATALOG)}",
                file=sys.stderr,
            )
            return 2
        scenarios.append(CATALOG[name])
    if not scenarios:
        scenarios.extend(CATALOG.values())
    for i in range(args.lottery):
        scenarios.append(Scenario.random(args.lottery_seed + i))

    rows = []
    runs = []
    failures: list[str] = []
    sink = None
    out_base = Path(args.out_dir) if args.out_dir else Path(".")
    for sc in scenarios:
        try:
            outcome = run_scenario(sc, strict=args.strict)
        except ReproError as exc:
            failures.append(f"{sc.name}: aborted: {exc}")
            rows.append([sc.name, "-", "-", "-", "-", "-", "-", "ERROR"])
            runs.append(
                {"scenario": sc.to_dict(), "error": str(exc), "ok": False}
            )
            scenario_failed = True
        else:
            sink = outcome.monitor
            r = outcome.report
            failures.extend(f"{sc.name}: {f}" for f in outcome.failures)
            planes = "+".join(
                tag for tag, on in (
                    ("faults", r["planes"]["faults"]
                     or r["planes"]["serving_faults"]),
                    ("adv", r["planes"]["adversary"]),
                    ("part", r["planes"]["partition"]),
                ) if on
            ) or "none"
            rows.append(
                [
                    sc.name,
                    planes,
                    f"{r['serving']['availability']:.4f}",
                    r["invariants"]["violations"],
                    f"{r['recovery']['mttr']:.1f}",
                    f"{r['recovery']['degraded_fraction']:.3f}",
                    f"{r['detection']['recall']:.3f}",
                    "PASS" if outcome.ok else "FAIL",
                ]
            )
            runs.append(r)
            scenario_failed = not outcome.ok
        if scenario_failed and not args.no_shrink:
            mini, probes = shrink_scenario(sc, scenario_fails)
            out_base.mkdir(parents=True, exist_ok=True)
            path = out_base / f"{sc.name}_scenario.json"
            path.write_text(json.dumps(mini.to_dict(), indent=2) + "\n")
            print(
                f"shrunk {sc.name} to a minimal failing scenario "
                f"({probes} probes) -> {path}"
            )
            runs[-1]["shrunk_scenario"] = mini.to_dict()

    print(
        render_table(
            [
                "scenario",
                "planes",
                "availability",
                "inv-viol",
                "MTTR",
                "degraded",
                "recall",
                "verdict",
            ],
            rows,
            title=f"resilience campaign ({len(scenarios)} scenario(s), "
            f"{len(CATALOG)} in catalog)",
        )
    )
    report = {
        "kind": "repro-resilience",
        "catalog": sorted(CATALOG),
        "lottery": args.lottery,
        "lottery_seed": args.lottery_seed,
        "strict": bool(args.strict),
        "runs": runs,
    }
    return _finish_campaign(
        args, label="resilience", report=report, failures=failures, sink=sink
    )


def cmd_axioms(args: argparse.Namespace) -> int:
    instance = _instance_from_args(args)
    result = run_agt_ram(instance, record_audit=True)
    checks = verify_axioms(instance, result)
    failed = 0
    for name, check in checks.items():
        status = "PASS" if check.passed else "FAIL"
        failed += not check.passed
        print(f"{name:28s} {status}  {check.detail}")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AGT-RAM replica placement (Khan & Ahmad, IPPS 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="build and save a DRP instance")
    _add_instance_args(p)
    p.add_argument("--output", "-o", required=True, help="output .npz path")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("run", help="run one algorithm")
    _add_instance_args(p)
    p.add_argument(
        "--algorithm", "-a", default="AGT-RAM",
        choices=list(PAPER_ALGORITHMS) + ["Random"],
    )
    p.add_argument(
        "--engine",
        choices=list(ENGINE_NAMES),
        default="auto",
        help="AGT-RAM benefit engine (ignored by other algorithms)",
    )
    p.add_argument("--output", "-o", help="save scheme + summary")
    _add_export_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="run several algorithms")
    _add_instance_args(p)
    p.add_argument("--algorithms", nargs="+", choices=list(PAPER_ALGORITHMS) + ["Random"])
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep", help="capacity or R/W sweep")
    _add_instance_args(p)
    p.add_argument("--param", choices=["capacity", "rw"], default="capacity")
    p.add_argument("--values", nargs="+", type=float)
    p.add_argument("--algorithms", nargs="+", choices=list(PAPER_ALGORITHMS))
    p.add_argument("--no-chart", action="store_true")
    p.add_argument("--csv", help="also write the raw rows to this CSV path")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("axioms", help="verify the six axioms on a run")
    _add_instance_args(p)
    p.set_defaults(func=cmd_axioms)

    p = sub.add_parser(
        "bench",
        help="run the perf harness / compare two bench JSON documents",
    )
    p.add_argument(
        "--out", "-o", help="output JSON path (default BENCH_<date>.json)"
    )
    p.add_argument(
        "--scale",
        choices=sorted(BENCH_SCALE_CONFIGS),
        help="instance preset (default: $REPRO_BENCH_SCALE or 'small')",
    )
    p.add_argument(
        "--algorithms", nargs="+", help="placement algorithms to record"
    )
    p.add_argument(
        "--engine",
        choices=list(ENGINE_NAMES),
        default="auto",
        help="AGT-RAM benefit engine (default auto: vectorized when available)",
    )
    p.add_argument(
        "--no-engine-compare",
        action="store_true",
        dest="no_engine_compare",
        help="skip the naive-vs-vectorized engine_compare record",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--repeats", type=int, default=3, help="runs per scenario (wall = best)"
    )
    p.add_argument(
        "--no-protocol",
        action="store_true",
        help="skip the message-granular simulator scenario",
    )
    p.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="diff two bench documents instead of running",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="wall-time regression tolerance as a fraction (default 0.15)",
    )
    p.add_argument(
        "--quality-tolerance",
        type=float,
        default=1.0,
        help="OTC-savings regression tolerance in points (default 1.0)",
    )
    p.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when --compare finds regressions (default: warn only)",
    )
    _add_export_args(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "audit",
        help="verify a recorded event log offline (winner/payment/capacity), "
        "or prove naive/vectorized engine equivalence",
    )
    p.add_argument(
        "log",
        nargs="*",
        help="event log(s) written by --events / --events-binary; a "
        "rotated log's logical name resolves to its .partNNNNN chunks, "
        "and multiple paths chain into one audited stream",
    )
    p.add_argument(
        "--window",
        type=int,
        default=0,
        help="audit in windows of N rounds (bounded memory over lazy "
        "decoding; verdicts are identical to a whole-log audit)",
    )
    p.add_argument(
        "--stream",
        action="store_true",
        help="print a progress line per audited window (implies "
        "--window 64 unless set)",
    )
    p.add_argument(
        "--sharded",
        action="store_true",
        help="audit a sharded-central log: per-shard mechanism audits "
        "from the region tags plus the cross-shard reconciliation pass",
    )
    p.add_argument(
        "--emission-gate",
        action="store_true",
        dest="emission_gate",
        help="prove buffered columnar emission is byte-equivalent to the "
        "legacy per-object path on a bench preset and measure its "
        "eventing-on overhead",
    )
    p.add_argument(
        "--max-overhead",
        type=float,
        default=None,
        dest="max_overhead",
        help="fail --emission-gate if eventing overhead exceeds this "
        "percent (default: the per-scale budget, 8%% at large)",
    )
    p.add_argument(
        "--compare-engines",
        action="store_true",
        dest="compare_engines",
        help="run AGT-RAM with both engines on a bench preset and verify "
        "bit-for-bit identical winners, payments, and events",
    )
    p.add_argument(
        "--scale",
        choices=sorted(BENCH_SCALE_CONFIGS),
        default="tiny",
        help="bench preset for --compare-engines (default tiny)",
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="uninstrumented timing runs per engine (wall = best; default 3)",
    )
    p.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        dest="min_speedup",
        help="fail unless vectorized is at least this many times faster "
        "(default 0 = identity check only)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-measurements before failing the speedup gate on a "
        "noisy machine (default 2; identity mismatches never retry)",
    )
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign vs a fault-free baseline",
    )
    _add_instance_args(p)
    p.add_argument(
        "--fault-seed", type=int, default=0, dest="fault_seed",
        help="seed for the fault schedule and the lossy channel",
    )
    p.add_argument(
        "--horizon", type=int, default=200,
        help="protocol rounds covered by the random schedule (default 200)",
    )
    p.add_argument("--drop", type=float, default=0.1,
                   help="per-transmission drop probability (default 0.1)")
    p.add_argument("--delay", type=float, default=0.05,
                   help="past-deadline delay probability (default 0.05)")
    p.add_argument("--duplicate", type=float, default=0.05,
                   help="duplicate-delivery probability (default 0.05)")
    p.add_argument("--crash-rate", type=float, default=0.02, dest="crash_rate",
                   help="per-agent per-round crash probability (default 0.02)")
    p.add_argument("--mean-outage", type=float, default=3.0, dest="mean_outage",
                   help="mean crash outage length in rounds (default 3)")
    p.add_argument("--straggler-rate", type=float, default=0.02,
                   dest="straggler_rate",
                   help="per-agent per-round straggler probability")
    p.add_argument("--central-crash-rate", type=float, default=0.0,
                   dest="central_crash_rate",
                   help="per-round central-crash probability (default 0)")
    p.add_argument("--central-crash-round", type=int, action="append",
                   dest="central_crash_round", metavar="ROUND",
                   help="crash the central at this round (repeatable)")
    p.add_argument("--quorum", type=float, default=0.5,
                   help="fraction of expected bids required to commit")
    p.add_argument("--max-retries", type=int, default=2, dest="max_retries",
                   help="bid retransmissions before the deadline (default 2)")
    p.add_argument("--max-stalled-rounds", type=int, default=200,
                   dest="max_stalled_rounds",
                   help="consecutive stalls before giving up (default 200)")
    p.add_argument("--checkpoint-period", type=int, default=8,
                   dest="checkpoint_period",
                   help="central checkpoint every K commits; 0 disables")
    p.add_argument("--max-degradation", type=float, default=None,
                   dest="max_degradation",
                   help="fail (exit 1) if chaos OTC exceeds fault-free OTC "
                   "by more than this ratio (e.g. 1.05)")
    p.add_argument("--report", help="write the full chaos report JSON here")
    p.add_argument("--fault-log", dest="fault_log",
                   help="write the fault-plan + injection summary JSON here")
    _add_out_dir_arg(p)
    _add_export_args(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "adversary",
        help="seeded Byzantine-agent campaign vs the honest baseline",
    )
    _add_instance_args(p)
    p.add_argument(
        "--adv-seed", type=int, default=0, dest="adv_seed",
        help="seed for adversary selection and behaviour (default 0)",
    )
    p.add_argument(
        "--fraction", type=float, action="append", metavar="F",
        help="fraction of agents made Byzantine; repeat to sweep "
        "(default: one run at 0.25)",
    )
    p.add_argument(
        "--behaviors", nargs="+", choices=list(BEHAVIORS), metavar="NAME",
        help=f"restrict the behaviour mix (default: all of {', '.join(BEHAVIORS)})",
    )
    p.add_argument(
        "--factor", type=float, default=2.0,
        help="inflation/deflation factor for misreports (default 2.0)",
    )
    p.add_argument(
        "--activity", type=float, default=1.0,
        help="per-round probability an adversary misbehaves (default 1.0)",
    )
    p.add_argument(
        "--strikes", type=int, default=3,
        help="offences before quarantine (default 3)",
    )
    p.add_argument(
        "--probation", type=int, default=20,
        help="quarantine length in protocol rounds (default 20)",
    )
    p.add_argument(
        "--max-quarantines", type=int, default=3, dest="max_quarantines",
        help="quarantines before permanent expulsion (default 3)",
    )
    p.add_argument(
        "--min-recall", type=float, default=None, dest="min_recall",
        help="fail (exit 1) if the detectors flag less than this "
        "fraction of injected manipulations (e.g. 0.95)",
    )
    p.add_argument(
        "--max-degradation", type=float, default=None,
        dest="max_degradation",
        help="fail (exit 1) if adversarial OTC exceeds the honest OTC "
        "by more than this ratio (e.g. 1.10)",
    )
    p.add_argument("--report", help="write the full campaign report JSON here")
    _add_out_dir_arg(p)
    _add_export_args(p)
    p.set_defaults(func=cmd_adversary)

    p = sub.add_parser(
        "serve",
        help="resilient online serving campaign with SLO gates",
    )
    _add_instance_args(p)
    # Serving defaults: a smoke-sized instance replicated deeply enough
    # (capacity 0.5) that failover has somewhere to go.
    p.set_defaults(servers=10, objects=30, requests=4000, capacity=0.5)
    p.add_argument(
        "--workload", default="worldcup", choices=list(SERVE_WORKLOADS),
        help="traffic family to serve (default worldcup; drift and "
        "flashcrowd move mid-campaign and exercise re-auction)",
    )
    p.add_argument(
        "--serve-requests", type=int, default=4000, dest="serve_requests",
        help="requests to stream through the serving loop (default 4000)",
    )
    p.add_argument(
        "--serve-seed", type=int, default=11, dest="serve_seed",
        help="seed for the request stream and the latency model",
    )
    p.add_argument(
        "--fault-seed", type=int, default=0, dest="fault_seed",
        help="seed for the random fault schedule (with --crash-rate etc.)",
    )
    p.add_argument(
        "--crash-rate", type=float, default=0.0, dest="crash_rate",
        help="per-server per-round crash probability (default 0: no faults)",
    )
    p.add_argument(
        "--mean-outage", type=float, default=2.0, dest="mean_outage",
        help="mean crash outage length in serving rounds (default 2)",
    )
    p.add_argument(
        "--straggler-rate", type=float, default=0.0, dest="straggler_rate",
        help="per-server per-round straggler probability (default 0)",
    )
    p.add_argument(
        "--requests-per-round", type=int, default=500,
        dest="requests_per_round",
        help="request ticks per fault-schedule round (default 500)",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="attempt deadline (default: auto from the cost diameter)",
    )
    p.add_argument(
        "--max-attempts", type=int, default=3, dest="max_attempts",
        help="attempts per request before it fails (default 3)",
    )
    p.add_argument(
        "--hedge-quantile", type=float, default=0.95, dest="hedge_quantile",
        help="hedge reads outliving this trailing quantile (default 0.95)",
    )
    p.add_argument(
        "--no-hedge", action="store_true", dest="no_hedge",
        help="disable hedged reads",
    )
    p.add_argument(
        "--rate", type=float, default=1.0,
        help="token-bucket refill per request tick (default 1.0)",
    )
    p.add_argument(
        "--burst", type=float, default=50.0,
        help="token-bucket depth (default 50)",
    )
    p.add_argument(
        "--drift-window", type=int, default=800, dest="drift_window",
        help="requests per drift-detection window (default 800)",
    )
    p.add_argument(
        "--drift-threshold", type=float, default=0.15,
        dest="drift_threshold",
        help="total-variation distance that triggers a re-auction",
    )
    p.add_argument(
        "--drift-top-k", type=int, default=8, dest="drift_top_k",
        help="objects re-auctioned per drift trigger (default 8)",
    )
    p.add_argument(
        "--max-reauctions", type=int, default=3, dest="max_reauctions",
        help="re-auction budget; 0 disables drift response (default 3)",
    )
    p.add_argument(
        "--min-availability", type=float, default=None,
        dest="min_availability",
        help="fail (exit 1) if served/admitted drops below this",
    )
    p.add_argument(
        "--max-p99", type=float, default=None, dest="max_p99",
        help="fail (exit 1) if p99 latency exceeds this",
    )
    p.add_argument("--report", help="write the serving report JSON here")
    _add_out_dir_arg(p)
    _add_export_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "shard",
        help="partition-tolerance campaign for the sharded central",
    )
    _add_instance_args(p)
    p.add_argument(
        "--scale",
        choices=sorted(BENCH_SCALE_CONFIGS),
        default=None,
        help="run on a bench preset instead of the instance knobs",
    )
    p.add_argument(
        "--regions", type=int, default=8,
        help="regional sub-centrals k (default 8)",
    )
    p.add_argument(
        "--shard-seed", type=int, default=2007, dest="shard_seed",
        help="seed for the proximity partition of servers into regions",
    )
    p.add_argument(
        "--partition-seed", type=int, default=2007, dest="partition_seed",
        help="seed for the random partition schedule (default 2007)",
    )
    p.add_argument(
        "--fraction", type=float, action="append", metavar="F",
        help="fraction of rounds spent partitioned; repeat to sweep "
        "(default: 0.0 0.25 0.5)",
    )
    p.add_argument(
        "--islands", type=int, default=2,
        help="islands per partition window (default 2)",
    )
    p.add_argument(
        "--mean-width", type=float, default=6.0, dest="mean_width",
        help="mean partition window width in rounds (default 6)",
    )
    p.add_argument(
        "--crash-rate", type=float, default=0.0, dest="crash_rate",
        help="per-(round, region) regional-central crash probability",
    )
    p.add_argument(
        "--horizon", type=int, default=None,
        help="rounds covered by random schedules (default: the healthy "
        "sharded run's length)",
    )
    p.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default="auto",
        help="benefit engine for the regional games (default auto)",
    )
    p.add_argument(
        "--plan", help="run exactly this partition schedule JSON instead "
        "of sweeping random ones",
    )
    p.add_argument(
        "--plan-out", dest="plan_out",
        help="write the swept partition schedule(s) JSON here",
    )
    p.add_argument(
        "--check-null", action="store_true", dest="check_null",
        help="verify the null schedule's event stream is byte-identical "
        "to the unpartitioned sharded run",
    )
    p.add_argument(
        "--max-degradation", type=float, default=None,
        dest="max_degradation",
        help="fail (exit 1) if any swept run's OTC exceeds the "
        "single-central OTC by more than this ratio (e.g. 1.05)",
    )
    p.add_argument(
        "--min-message-reduction", type=float, default=2.0,
        dest="min_message_reduction",
        help="fail (exit 1) if the healthy sharded run sends more than "
        "1/this of the single-central messages (default 2.0; pass 0 to "
        "disable)",
    )
    p.add_argument("--report", help="write the full campaign report JSON here")
    _add_out_dir_arg(p)
    _add_export_args(p)
    p.set_defaults(func=cmd_shard)

    p = sub.add_parser(
        "resilience",
        help="composed failure-plane survivability campaign with shrinking",
    )
    p.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="run this catalog scenario (repeatable; default: the whole "
        "catalog)",
    )
    p.add_argument(
        "--lottery", type=int, default=0, metavar="N",
        help="also run N random scenario compositions (default 0)",
    )
    p.add_argument(
        "--lottery-seed", type=int, default=0, dest="lottery_seed",
        help="base seed for the lottery tickets (ticket i uses seed+i)",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="abort a scenario on the first invariant violation instead "
        "of collecting them",
    )
    p.add_argument(
        "--no-shrink", action="store_true", dest="no_shrink",
        help="skip shrinking failing scenarios to minimal repro JSONs",
    )
    p.add_argument(
        "--report", help="write the full campaign report JSON here"
    )
    _add_out_dir_arg(p)
    _add_export_args(p)
    p.set_defaults(func=cmd_resilience)

    p = sub.add_parser(
        "reproduce", help="regenerate the paper's figures/tables"
    )
    p.add_argument(
        "--targets", nargs="+", choices=["fig3", "fig4", "table1", "table2"]
    )
    p.add_argument("--scale", choices=["tiny", "small", "medium"], default="tiny")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_reproduce)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
