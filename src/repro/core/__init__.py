"""The paper's primary contribution.

* :mod:`repro.core.mechanism` — Definitions 1–3 as abstractions: a
  mechanism is an output function plus a payment function over agents'
  declared data.
* :mod:`repro.core.payments` — the second-best payment rule (Axiom 5)
  and the Theorem-5 utility model.
* :mod:`repro.core.strategies` — agent reporting strategies: truthful,
  over-, under-, and random projection (the three manipulation cases the
  paper analyzes under Axiom 5).
* :mod:`repro.core.agents` — the replica agent: private data, eligible
  object list L_i, dominant report.
* :mod:`repro.core.agt_ram` — the AGT-RAM algorithm (Figure 2).
* :mod:`repro.core.axioms` — the six axioms as machine-checkable
  properties over a recorded mechanism run.
* :mod:`repro.core.equilibrium` — empirical dominant-strategy /
  truthfulness verification.
"""

from repro.core.payments import (
    second_best_payment,
    first_price_payment,
    winner_utility,
    PAYMENT_RULES,
)
from repro.core.strategies import (
    Strategy,
    TruthfulStrategy,
    OverProjection,
    UnderProjection,
    RandomProjection,
)
from repro.core.agents import ReplicaAgent
from repro.core.mechanism import Mechanism, RoundRecord, MechanismAudit
from repro.core.agt_ram import AGTRam, run_agt_ram
from repro.core.axioms import AxiomCheck, verify_axioms, AXIOM_NAMES
from repro.core.equilibrium import (
    one_shot_utilities,
    full_run_utilities,
    truthfulness_gap,
)
from repro.core.hierarchical import (
    HierarchicalAGTRam,
    partition_by_proximity,
    RegionStats,
)
from repro.core.adaptive import AdaptiveReplicator, EpochOutcome
from repro.core.disposition import (
    run_with_declared_capacities,
    capacity_misreport_gain,
    cor_knowledge_gain,
    CapacityMisreportOutcome,
)
from repro.core.theorem3 import vcg_payment, verify_theorem3
from repro.core.reauction import (
    ReauctionOutcome,
    build_sub_instance,
    reauction_objects,
)

__all__ = [
    "second_best_payment",
    "first_price_payment",
    "winner_utility",
    "PAYMENT_RULES",
    "Strategy",
    "TruthfulStrategy",
    "OverProjection",
    "UnderProjection",
    "RandomProjection",
    "ReplicaAgent",
    "Mechanism",
    "RoundRecord",
    "MechanismAudit",
    "AGTRam",
    "run_agt_ram",
    "AxiomCheck",
    "verify_axioms",
    "AXIOM_NAMES",
    "one_shot_utilities",
    "full_run_utilities",
    "truthfulness_gap",
    "HierarchicalAGTRam",
    "partition_by_proximity",
    "RegionStats",
    "AdaptiveReplicator",
    "EpochOutcome",
    "run_with_declared_capacities",
    "capacity_misreport_gain",
    "cor_knowledge_gain",
    "CapacityMisreportOutcome",
    "vcg_payment",
    "verify_theorem3",
    "ReauctionOutcome",
    "build_sub_instance",
    "reauction_objects",
]
