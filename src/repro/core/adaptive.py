"""Adaptive re-replication across workload epochs.

The paper calls AGT-RAM "a protocol for automatic replication and
migration of objects in response to demand changes".  This module plays
that protocol over a sequence of workload epochs:

1. at each epoch boundary, every agent re-evaluates the replicas it
   already hosts with its new private frequencies and *evicts* any copy
   whose keep-benefit has gone negative (an agent needs no permission
   to drop — only allocation goes through the mechanism);
2. the mechanism then runs fresh rounds from the surviving scheme,
   allocating replicas the new demand justifies.

Three policies are provided for comparison:

* ``"adaptive"`` — evict-then-reallocate as above (the protocol),
* ``"static"`` — the epoch-0 scheme is frozen and reused forever,
* ``"rebuild"`` — a full from-scratch mechanism run every epoch
  (the quality ceiling, at maximal migration cost).

Migration cost is accounted as the data volume (size x cost to the
nearest previous holder) of newly created replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.agt_ram import AGTRam
from repro.drp.cost import total_otc
from repro.drp.instance import DRPInstance
from repro.drp.savings import otc_savings_percent
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.workload.drift import WorkloadEpoch


@dataclass(frozen=True)
class EpochOutcome:
    """Per-epoch accounting of an adaptive run."""

    epoch: int
    otc: float
    savings_percent: float
    replicas: int
    evictions: int
    allocations: int
    migration_volume: float


@dataclass
class AdaptiveReplicator:
    """Epoch-driven replica adaptation.

    Parameters
    ----------
    policy:
        ``"adaptive"``, ``"static"``, or ``"rebuild"``.
    payment_rule:
        Forwarded to the underlying mechanism.
    """

    policy: str = "adaptive"
    payment_rule: str = "second_price"

    def __post_init__(self) -> None:
        if self.policy not in ("adaptive", "static", "rebuild"):
            raise ConfigurationError(
                f"policy must be adaptive/static/rebuild, got {self.policy!r}"
            )

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _epoch_instance(
        template: DRPInstance, epoch: WorkloadEpoch
    ) -> DRPInstance:
        w = epoch.workload
        if w.reads.shape != (template.n_servers, template.n_objects):
            raise ConfigurationError(
                "epoch workload shape does not match the instance template"
            )
        return DRPInstance(
            cost=template.cost,
            reads=w.reads,
            writes=w.writes,
            sizes=template.sizes,
            capacities=template.capacities,
            primaries=template.primaries,
            name=f"{template.name}@epoch{epoch.index}",
        )

    @staticmethod
    def _evict_negative_keepers(
        instance: DRPInstance, state: ReplicationState
    ) -> int:
        """Drop non-primary replicas whose keep-benefit is negative.

        An agent keeps its copy of k only if its reads served locally
        outweigh the cost of staying current with everyone else's
        writes:  ``r_ik o_k d'_k(i) >= o_k c(P_k, i) (W_k - w_ik)``
        where d'_k(i) is the distance to the nearest *other* replica.
        Evictions are processed globally until stable (dropping one copy
        can only *raise* others' keep-benefit, so a single pass per
        change suffices; we iterate to a fixed point).
        """
        o = instance.sizes.astype(np.float64)
        cp = instance.primary_cost_rows()
        w_total = instance.total_write_counts()
        evicted = 0
        changed = True
        while changed:
            changed = False
            for k in range(instance.n_objects):
                reps = np.flatnonzero(state.x[:, k])
                if len(reps) <= 1:
                    continue
                for i in reps:
                    if i == instance.primaries[k]:
                        continue
                    others = reps[reps != i]
                    d_other = instance.cost[i, others].min()
                    keep = (
                        instance.reads[i, k] * o[k] * d_other
                        - o[k] * cp[k, i] * (w_total[k] - instance.writes[i, k])
                    )
                    if keep < 0:
                        state.x[i, k] = False
                        state.used[i] -= int(instance.sizes[k])
                        evicted += 1
                        changed = True
                        reps = np.flatnonzero(state.x[:, k])
        if evicted:
            state.recompute_nn()
        return evicted

    @staticmethod
    def _migration_volume(
        instance: DRPInstance, before_x: np.ndarray, after_x: np.ndarray
    ) -> float:
        """Data volume to materialize new replicas: each copies from the
        nearest server that held the object before."""
        new_cells = after_x & ~before_x
        if not new_cells.any():
            return 0.0
        volume = 0.0
        for k in np.flatnonzero(new_cells.any(axis=0)):
            holders = np.flatnonzero(before_x[:, k])
            for i in np.flatnonzero(new_cells[:, k]):
                volume += float(instance.sizes[k]) * float(
                    instance.cost[i, holders].min()
                )
        return volume

    # -- main entry -----------------------------------------------------------

    def run(
        self, template: DRPInstance, epochs: Sequence[WorkloadEpoch]
    ) -> list[EpochOutcome]:
        """Adapt across ``epochs``; returns per-epoch accounting."""
        if not epochs:
            raise ConfigurationError("need at least one epoch")
        mech = AGTRam(payment_rule=self.payment_rule)
        outcomes: list[EpochOutcome] = []
        carried_x: np.ndarray | None = None

        for epoch in epochs:
            inst = self._epoch_instance(template, epoch)
            # Migration is always accounted against what physically
            # existed before this epoch (the previous scheme, or just
            # the primaries at the very start).
            before_x = (
                carried_x
                if carried_x is not None
                else ReplicationState.primaries_only(inst).x.copy()
            )

            if self.policy == "rebuild" or carried_x is None:
                res = mech.run(inst)
                state = res.state
                evictions = 0
                allocations = res.rounds
            elif self.policy == "static":
                state = ReplicationState.from_matrix(inst, carried_x)
                evictions = 0
                allocations = 0
            else:  # adaptive
                state = ReplicationState.from_matrix(inst, carried_x)
                evictions = self._evict_negative_keepers(inst, state)
                res = mech.run(inst, initial_state=state)
                state = res.state
                allocations = res.rounds

            migration = self._migration_volume(inst, before_x, state.x)
            outcomes.append(
                EpochOutcome(
                    epoch=epoch.index,
                    otc=total_otc(state),
                    savings_percent=otc_savings_percent(state),
                    replicas=state.total_replicas(),
                    evictions=evictions,
                    allocations=allocations,
                    migration_volume=migration,
                )
            )
            carried_x = state.x.copy()
        return outcomes
