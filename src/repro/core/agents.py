"""The replica agent — the paper's computational entity per server.

Axiom 2 (agent disposition): an agent privately knows the cost of
replication CoR_ik of each object onto its server (computable only from
its own read/write frequencies); capacities, topology and everything
else are public.  The paper argues DRP[π] (private CoR, public capacity)
is "the only natural choice", and that is what this class models.

Each round the agent recursively evaluates every object in its eligible
list L_i and reports its dominant valuation (Figure 2, lines 03–08).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.strategies import Strategy, TruthfulStrategy
from repro.drp.benefit import BenefitEngine
from repro.errors import MechanismProtocolError


@dataclass
class Bid:
    """One agent's per-round report: the object it wants and its declared
    valuation (the paper's t_i^k sent on line 08)."""

    agent: int
    obj: int
    value: float


@dataclass
class ReplicaAgent:
    """Agent i of the non-cooperative replication game.

    Parameters
    ----------
    server:
        The server index this agent controls.
    strategy:
        Reporting strategy; defaults to truthful (the dominant one).

    Notes
    -----
    The agent reads its true valuations from a shared
    :class:`~repro.drp.benefit.BenefitEngine` row — operationally that is
    "the agent computes CoR from its private read/write counts"; the
    engine is merely the vectorized store for all agents' private values
    and never leaks one agent's row to another.
    """

    server: int
    strategy: Strategy = field(default_factory=TruthfulStrategy)
    payments_received: float = 0.0
    utility: float = 0.0
    objects_won: list[int] = field(default_factory=list)

    def true_valuations(self, engine: BenefitEngine) -> np.ndarray:
        """The agent's private CoR vector over all objects; ``-inf`` marks
        objects outside its eligible list L_i.

        Asks the engine for one row rather than slicing ``matrix`` —
        the delta engine materializes rows on demand and would pay an
        O(M·N) full-matrix build per agent otherwise.
        """
        return np.array(engine.row(self.server), dtype=np.float64)

    def make_bid(self, engine: BenefitEngine) -> Bid | None:
        """Compute the dominant report under this agent's strategy.

        Returns ``None`` when L_i is empty (the agent leaves the game,
        line 18 of Figure 2).
        """
        true_vals = self.true_valuations(engine)
        reported = self.strategy.report(true_vals)
        if not np.isfinite(reported).any():
            return None
        obj = int(np.argmax(reported))
        return Bid(agent=self.server, obj=obj, value=float(reported[obj]))

    def award(self, obj: int, payment: float, true_value: float) -> None:
        """Record winning ``obj`` at ``payment`` (Theorem-5 utility)."""
        if not np.isfinite(true_value):
            raise MechanismProtocolError(
                f"agent {self.server} was awarded ineligible object {obj}"
            )
        self.payments_received += payment
        self.utility += true_value - payment
        self.objects_won.append(obj)
