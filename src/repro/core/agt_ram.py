"""AGT-RAM — the Axiomatic Game Theoretical Replica Allocation Mechanism.

Figure 2 of the paper, round by round:

1. every active agent evaluates its eligible list L_i and sends its
   dominant valuation t_i^k to the mechanism (the PARFOR of lines 03–09),
2. the central body picks the globally dominant report OMAX (line 10),
3. the payment is the *second* best report (lines 11–12, Axiom 5),
4. OMAX is broadcast so every agent updates its NN table (lines 13, 19–21),
5. the object is replicated, the winner's capacity and list shrink
   (lines 15–18),
6. the loop ends when no agent remains interested.

The central body's only decision is binary — replicate or not — which is
the paper's "semi-distributed" property.  Allocation stops when the best
report is no longer positive: replicating at a loss would *raise* the
system OTC, so the central body answers "0 (do not replicate)".

Complexity: each round costs O(M + N) incremental updates plus one
O(M·N) argmax, and at most M·N rounds exist, matching Theorem 4's
O(M·N²) worst case (for M <= N).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.mechanism import Mechanism, MechanismAudit, RoundRecord
from repro.core.payments import PAYMENT_RULES
from repro.core.strategies import Strategy, TruthfulStrategy
from repro.drp.cost import total_otc
from repro.drp.delta import (
    DeltaBenefitEngine,
    ENGINE_NAMES,
    make_local_engine,
    resolve_engine,
)
from repro.drp.global_engine import GlobalBenefitEngine
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.obs import events as ev
from repro.obs import tracer as obs
from repro.result import PlacementResult
from repro.utils.timing import Timer, perf_counter


class _OtcLedger:
    """Flush-time OTC settlement for the buffered (columnar) loop.

    The per-object path delta-maintains the system OTC inside
    :meth:`~repro.drp.state.ReplicationState.add_replica` — one O(M)
    pass over the just-relaxed (strided) NN column per commit.  Strided
    column walks are an order of magnitude slower than contiguous row
    passes, so the buffered loop does no OTC arithmetic at all: each
    flush *reconstructs* every committed round's relaxed NN column as
    ``min(c(·, P_k), c(·, winner), …)`` from the instance's contiguous
    cost-column rows (:meth:`~repro.drp.instance.DRPInstance.cost_col_rows`),
    batch-gathered and min-chained per chunk, then settles the rounds
    with one batched ``einsum("rj,rj->r", ...)`` and a scalar replay of
    the tracker's exact accumulation.  The reconstruction is value-exact
    (a min-chain of the same floats the broadcast relaxed), the rows are
    contiguous like the tracker's scratch, and chunked batched einsum
    reduces each row independently — so the resulting ``RoundEnd`` OTC
    floats are bit-identical to the per-object path's; the
    byte-equivalence gate pins it.

    Requires a primaries-only start: with pre-existing replicas the
    primary column is not the pre-commit state (the buffered loop is
    not taken for warm starts).
    """

    #: Rows settled per gather/einsum call — sized so the three
    #: ``_CHUNK × M`` scratch blocks stay L2-resident between the gather
    #: and the einsum that re-reads them (measured optimum; 128 spills).
    _CHUNK = 32

    __slots__ = (
        "rstat_rows",
        "cost_rows",
        "pmap",
        "wterm",
        "otc",
        "read_k",
        "chains",
        "_pc",
        "_sc",
        "_rs",
        "_dots",
    )

    def __init__(self, state: ReplicationState) -> None:
        inst = state.instance
        # Seed exactly like the per-commit tracker's fresh path — same
        # cached ``primary_otc_terms`` floats — without ever arming the
        # tracker on the state (the loop's commits must not pay it).
        otc0, read_k = inst.primary_otc_terms()
        self.otc = otc0
        self.read_k = read_k.tolist()
        self.rstat_rows = inst.read_scale_rows()
        self.cost_rows = inst.cost_col_rows()
        self.pmap = inst.primaries
        self.wterm = inst.local_value_terms()[1]
        #: Commit history per object (winner lists) — repeat commits of
        #: one object must min-chain every prior replicator.
        self.chains: dict[int, list[int]] = {}
        c, m = self._CHUNK, inst.n_servers
        self._pc = np.empty((c, m))
        self._sc = np.empty((c, m))
        self._rs = np.empty((c, m))
        self._dots = np.empty(c)

    def _read_costs(
        self, ks: np.ndarray, ws: np.ndarray, objs_l: list, winners_l: list
    ) -> list[float]:
        """Each committed round's refreshed read cost
        ``Σ_i rstat_ik · nn_ik`` over its reconstructed column."""
        out: list[float] = []
        chunk = self._CHUNK
        crows = self.cost_rows
        pmap = self.pmap
        chains = self.chains
        for s in range(0, len(ks), chunk):
            e = min(s + chunk, len(ks))
            b = e - s
            rows = self._pc[:b]
            np.take(crows, pmap[ks[s:e]], axis=0, out=rows)
            np.take(crows, ws[s:e], axis=0, out=self._sc[:b])
            np.minimum(rows, self._sc[:b], out=rows)
            for j in range(b):
                k = objs_l[s + j]
                hist = chains.get(k)
                if hist is None:
                    chains[k] = [winners_l[s + j]]
                else:
                    # Repeat commit: rebuild the full relax chain.
                    hist.append(winners_l[s + j])
                    row = rows[j]
                    np.minimum(crows[int(pmap[k])], crows[hist[0]], out=row)
                    for w in hist[1:]:
                        np.minimum(row, crows[w], out=row)
            np.take(self.rstat_rows, ks[s:e], axis=0, out=self._rs[:b])
            np.einsum(
                "rj,rj->r", self._rs[:b], rows, out=self._dots[:b]
            )
            out.extend(self._dots[:b].tolist())
        return out

    def fill(self, buf) -> None:
        """Compute ``buf.otcs[:buf.n]`` for the staged rounds."""
        n = buf.n
        if n == 0:
            return
        winners_l = buf.winners[:n].tolist()
        objs_l = buf.objs[:n].tolist()
        # The loop's invariant: every staged row committed except, at
        # most, one terminal row at the very end — so the committed rows
        # are a prefix and plain slices (no index gathers) cover them.
        c = n - (1 if winners_l[-1] < 0 else 0)
        otc = self.otc
        read_k = self.read_k
        otcs = [0.0] * n
        if c:
            ks = buf.objs[:c]
            ws = buf.winners[:c]
            wds = self.wterm[ws, ks].tolist()
            new_rks = self._read_costs(ks, ws, objs_l, winners_l)
            for i in range(c):
                k = objs_l[i]
                new_rk = new_rks[i]
                otc += wds[i] + (new_rk - read_k[k])
                read_k[k] = new_rk
                otcs[i] = otc
        if c < n:
            otcs[c] = otc
        buf.otcs[:n] = otcs
        self.otc = otc


class AGTRam(Mechanism):
    """The paper's mechanism, configurable for the ablation studies.

    Parameters
    ----------
    payment_rule:
        ``"second_price"`` (the paper's Axiom 5) or ``"first_price"``
        (ablation foil destroying truthfulness).
    valuation:
        ``"local"`` — agents value objects with their private Eq. 5 CoR
        (the paper's semi-distributed oracle); ``"global"`` — ablation in
        which agents hypothetically know the exact system-wide ΔOTC.
    strategies:
        Optional mapping ``server -> Strategy`` for agents that deviate
        from truth-telling; unlisted agents are truthful.  Used by the
        equilibrium experiments.
    max_rounds:
        Safety cap on mechanism rounds (default: no cap beyond the
        natural M·N bound).
    batch_size:
        Allocations per round.  1 is Figure 2 exactly.  B > 1 realizes
        the paper's "provide a *list* of objects" phrasing: the central
        body approves the top-B positive reports of one round together
        (winners are distinct agents, so no storage conflicts), each
        paying the uniform clearing price — the best *rejected* report —
        which stays independent of every winner's own bid.  Rounds drop
        ~B-fold; bids within a round are mutually stale, the same
        trade-off as the concurrent hierarchical mode.
    engine:
        Local-CoR oracle implementation: ``"naive"`` keeps the full
        (M, N) benefit matrix fresh and argmaxes it every round;
        ``"vectorized"`` delta-maintains only the per-agent dominant
        reports from the NN-broadcast dirty set
        (:class:`~repro.drp.delta.DeltaBenefitEngine`) — bit-identical
        winners/payments/events, O(M + |dirty|·N) per round instead of
        O(M·N).  ``"auto"`` (default) picks the vectorized engine when
        the declared numpy bound is available.  Only meaningful for
        ``valuation="local"``; the global-oracle ablation always uses
        its own engine.
    emission:
        Event-emission path when a sink is active.  ``"object"`` is the
        legacy per-decision path (one Python object per bid/winner/
        payment); ``"columnar"`` stages rounds in a preallocated
        struct-of-arrays ring buffer
        (:class:`~repro.obs.events.ColumnarRoundBuffer`) flushed into
        the sink as :class:`~repro.obs.events.RoundBlock`\\ s — same
        events after expansion, byte-identical under logical event
        time, but the hot loop never builds objects.  ``"auto"``
        (default) uses the columnar path whenever the run qualifies for
        the vectorized tight loop (truthful, unbatched, untraced); other
        configurations fall back to the per-object path.
    """

    name = "AGT-RAM"

    #: Valid ``emission`` knob values.
    EMISSION_MODES = ("auto", "object", "columnar")

    def __init__(
        self,
        *,
        payment_rule: str = "second_price",
        valuation: str = "local",
        strategies: Optional[Mapping[int, Strategy]] = None,
        max_rounds: Optional[int] = None,
        batch_size: int = 1,
        engine: str = "auto",
        emission: str = "auto",
    ):
        if payment_rule not in PAYMENT_RULES:
            raise ConfigurationError(
                f"unknown payment rule {payment_rule!r}; "
                f"expected one of {sorted(PAYMENT_RULES)}"
            )
        if valuation not in ("local", "global"):
            raise ConfigurationError(
                f"valuation must be 'local' or 'global', got {valuation!r}"
            )
        if max_rounds is not None and max_rounds < 0:
            raise ConfigurationError("max_rounds must be >= 0")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
            )
        if engine == "vectorized" and valuation != "local":
            raise ConfigurationError(
                "engine='vectorized' delta-maintains the local CoR oracle; "
                "the global-oracle ablation only supports engine='naive'/'auto'"
            )
        if emission not in self.EMISSION_MODES:
            raise ConfigurationError(
                f"unknown emission mode {emission!r}; "
                f"expected one of {self.EMISSION_MODES}"
            )
        self.emission = emission
        self.engine = engine
        self.payment_rule = payment_rule
        self.valuation = valuation
        self.strategies = dict(strategies) if strategies else {}
        self.max_rounds = max_rounds
        self.batch_size = batch_size

    # -- internals ---------------------------------------------------------

    def _reports(
        self, true_vals: np.ndarray, true_objs: np.ndarray, engine
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply agent strategies to the truthful per-agent reports.

        Truthful agents report (true_vals, true_objs) unchanged.  A
        deviating agent transforms its full valuation row, then reports
        the argmax of the *transformed* row — matching how a selfish
        agent would actually play.  Rows come from ``engine.row`` so the
        delta engine materializes only the deviating agents' rows.
        """
        if not self.strategies:
            return true_vals, true_objs
        reported_vals = true_vals.copy()
        reported_objs = true_objs.copy()
        for server, strategy in self.strategies.items():
            row = strategy.report(engine.row(server))
            if not np.isfinite(row).any():
                reported_vals[server] = -np.inf
                continue
            obj = int(np.argmax(row))
            reported_objs[server] = obj
            reported_vals[server] = row[obj]
        return reported_vals, reported_objs

    def _fast_loop(
        self,
        state: ReplicationState,
        engine: DeltaBenefitEngine,
        pay,
        cap: int,
        payments: np.ndarray,
        utilities: np.ndarray,
    ) -> int:
        """Figure 2's loop over the delta engine's cached bests.

        Only reachable for truthful, unbatched, non-observed runs, where
        reports == true bests and no per-round scaffolding is needed.
        Allocations, payments and utilities are bit-identical to the
        generic loop (same values through the same payment rule, same
        first-index argmax tie-break).
        """
        vals, objs = engine.best_view()
        # Inline Vickrey price via a swap instead of np.delete: the max
        # over the other agents is unchanged (−inf never wins it), and in
        # this loop ``vals`` is NaN-free by construction (finite Eq. 5
        # arithmetic, ineligible cells exactly −inf), so the non-finite
        # filtering of ``second_best_payment`` is vacuous.
        second_price = self.payment_rule == "second_price"
        neg_inf = -np.inf
        rounds = 0
        while rounds < cap:
            winner = int(vals.argmax())
            best = float(vals[winner])
            if not np.isfinite(best) or best <= 0.0:
                break
            obj = int(objs[winner])
            if second_price:
                vals[winner] = neg_inf
                runner_up = float(vals.max())
                vals[winner] = best
                payment = runner_up if runner_up > 0.0 else 0.0
            else:
                payment = pay(vals, winner)
            payments[winner] += payment
            utilities[winner] += best - payment
            state.add_replica(winner, obj)
            engine.notify_allocation(winner, obj)
            rounds += 1
        return rounds

    def _flush_block(self, buf, sink, series, ledger=None) -> None:
        """Flush the ring into the sink and fill the round series.

        Series values come off the block columns via ``tolist()`` —
        python-native scalars, the same bits the per-object path's
        ``float()``/``int()`` casts produce.  When a ``ledger`` is given
        its :meth:`_OtcLedger.fill` settles the ring's ``otcs`` column
        first — the hot loop never touches OTC at all.
        """
        if ledger is not None:
            ledger.fill(buf)
        block = buf.flush()
        if block is None:
            return
        if series is not None:
            idx = np.nonzero(block.winners >= 0)[0]
            if len(idx):
                series.otc.extend(block.otcs[idx].tolist())
                series.best_bid.extend(
                    block.bid_vals[idx, block.winners[idx]].tolist()
                )
                series.payment.extend(block.payments[idx].tolist())
                series.n_bids.extend(block.n_bids[idx].tolist())
        sink.emit_block(block)

    def _buffered_loop(
        self,
        instance: DRPInstance,
        state: ReplicationState,
        engine: DeltaBenefitEngine,
        pay,
        cap: int,
        payments: np.ndarray,
        utilities: np.ndarray,
        sink,
        series,
    ) -> int:
        """The :meth:`_fast_loop` arithmetic with columnar eventing.

        Each round stages its pre-commit bid vectors and commit scalars
        into a preallocated ring (plain array stores — no per-decision
        objects); the ring flushes into the sink as
        :class:`~repro.obs.events.RoundBlock`\\ s when full and once at
        the end.  Expansion reproduces the per-object event stream
        exactly (byte-identical under logical time); ``RoundEnd.otc`` is
        settled per *flush* by the :class:`_OtcLedger`, which rebuilds
        the committed NN columns from contiguous cost rows — the loop
        itself does no OTC arithmetic, matching the per-object path's
        tracker bit-for-bit.
        """
        vals, objs = engine.best_view()
        # Inline Vickrey price via the same swap as _fast_loop — vals is
        # NaN-free here, so this is bit-identical to second_best_payment.
        second_price = self.payment_rule == "second_price"
        neg_inf = -np.inf
        capacities = instance.capacities
        used = state.used
        ledger = _OtcLedger(state)
        buf = ev.ColumnarRoundBuffer(
            instance.n_servers,
            instance.sizes,
            capacity=min(512, cap + 1),
            payment_rule=self.payment_rule,
        )
        # The loop counts finite reports per round while the bid vector
        # is cache-hot; the flush then skips its whole-ring scan.
        buf.staged_n_bids = True
        fin = np.empty(instance.n_servers, dtype=bool)
        # Bind the ring columns locally; the flush re-arms the buffer
        # with fresh arrays, so rebind after each one.
        bid_vals, bid_objs = buf.bid_vals, buf.bid_objs
        win_col, obj_col = buf.winners, buf.objs
        res_col, pay_col, nb_col = buf.residuals, buf.payments, buf.n_bids
        ring_cap = buf.capacity
        n = 0
        rounds = 0
        while rounds < cap:
            winner = int(vals.argmax())
            best = float(vals[winner])
            bid_vals[n] = vals  # staged pre-commit, rows are copies
            bid_objs[n] = objs
            np.isfinite(vals, out=fin)
            nb_col[n] = np.count_nonzero(fin)
            if not np.isfinite(best) or best <= 0.0:
                # Central body's binary decision: (0) do not replicate.
                win_col[n] = -1
                obj_col[n] = -1
                res_col[n] = 0
                pay_col[n] = 0.0
                buf.n = n + 1
                break
            obj = int(objs[winner])
            if second_price:
                vals[winner] = neg_inf
                runner_up = float(vals.max())
                vals[winner] = best
                payment = runner_up if runner_up > 0.0 else 0.0
            else:
                payment = pay(vals, winner)
            payments[winner] += payment
            utilities[winner] += best - payment
            residual_before = int(capacities[winner]) - int(used[winner])
            state.add_replica(winner, obj)
            engine.notify_allocation(winner, obj)
            win_col[n] = winner
            obj_col[n] = obj
            res_col[n] = residual_before
            pay_col[n] = payment
            n += 1
            rounds += 1
            if n == ring_cap:
                buf.n = n
                self._flush_block(buf, sink, series, ledger)
                bid_vals, bid_objs = buf.bid_vals, buf.bid_objs
                win_col, obj_col = buf.winners, buf.objs
                res_col, pay_col, nb_col = (
                    buf.residuals,
                    buf.payments,
                    buf.n_bids,
                )
                n = 0
        else:
            buf.n = n
        self._flush_block(buf, sink, series, ledger)
        return rounds

    # -- mechanism entry ---------------------------------------------------

    def _run(
        self,
        instance: DRPInstance,
        *,
        record_audit: bool = False,
        initial_state: Optional[ReplicationState] = None,
    ) -> PlacementResult:
        """Play the mechanism to completion.

        ``initial_state`` warm-starts from an existing scheme (adaptive
        re-replication across workload epochs); by default the game
        starts from the primaries-only scheme as in the paper.
        """
        pay = PAYMENT_RULES[self.payment_rule]
        timer = Timer()
        tracer = obs.current()
        traced = tracer.enabled
        sink = ev.current()
        eventing = sink.enabled
        series = ev.RoundSeries() if eventing else None
        audit = MechanismAudit() if record_audit else None
        m = instance.n_servers
        payments = np.zeros(m)
        utilities = np.zeros(m)

        with timer:
            t0 = perf_counter() if traced else 0.0
            if initial_state is not None:
                if initial_state.instance is not instance:
                    raise ConfigurationError(
                        "initial_state belongs to a different instance"
                    )
                state = initial_state
            else:
                state = ReplicationState.primaries_only(instance)
            if self.valuation == "local":
                engine_name = resolve_engine(self.engine)
                engine = make_local_engine(engine_name, instance, state)
            else:
                engine_name = "naive"
                engine = GlobalBenefitEngine(instance, state)
            if traced:
                tracer.add("engine_init", perf_counter() - t0)

            rounds = 0
            round_idx = 0  # event-stream round label (includes the closing round)
            cap = self.max_rounds if self.max_rounds is not None else m * instance.n_objects

            # Tight loop for the vectorized engine when nothing needs the
            # per-round observability scaffolding: same allocations, same
            # payments (bit-identical — the equivalence tests pin it),
            # but ~10 numpy calls per round instead of a full O(M·N)
            # sweep plus event/tracer bookkeeping.
            tight = (
                isinstance(engine, DeltaBenefitEngine)
                and not self.strategies
                and self.batch_size == 1
                and not traced
                and audit is None
            )
            fast = tight and not eventing
            # The columnar path keeps eventing ON through the tight
            # loop: rounds are staged in a preallocated ring and flushed
            # as blocks, instead of bailing to the per-object loop.  Its
            # ledger reconstructs NN columns from the primaries, so it
            # needs a primaries-only start; warm starts take the
            # per-object path.
            buffered = (
                tight
                and eventing
                and self.emission != "object"
                and state.n_replicas_added == 0
            )
            if eventing and not buffered:
                # Per-round OTC telemetry (RoundEnd / series) comes from
                # the state's incremental tracker — one O(M) einsum per
                # commit instead of an O(M·N) recompute per round.  The
                # buffered loop skips even that: its _OtcLedger settles
                # OTC per flush, producing the same floats bit-for-bit.
                state.begin_otc_tracking()
            if fast:
                rounds = self._fast_loop(
                    state, engine, pay, cap, payments, utilities
                )
                cap = rounds  # generic loop below is skipped
            elif buffered:
                rounds = self._buffered_loop(
                    instance,
                    state,
                    engine,
                    pay,
                    cap,
                    payments,
                    utilities,
                    sink,
                    series,
                )
                cap = rounds  # generic loop below is skipped
            while rounds < cap:
                round_idx = rounds
                if eventing:
                    sink.emit(ev.RoundStart(t=ev.now(), round=round_idx))
                # PARFOR bid sweep (Figure 2 lines 03-09).
                t0 = perf_counter() if traced else 0.0
                true_vals, true_objs = engine.best_per_server()
                reported_vals, reported_objs = self._reports(
                    true_vals, true_objs, engine
                )
                if traced:
                    tracer.add("round/bid_sweep", perf_counter() - t0)
                if eventing:
                    for agent in np.nonzero(np.isfinite(reported_vals))[0]:
                        sink.emit(
                            ev.BidEvent(
                                t=ev.now(),
                                round=round_idx,
                                agent=int(agent),
                                obj=int(reported_objs[agent]),
                                value=float(reported_vals[agent]),
                            )
                        )
                t0 = perf_counter() if traced else 0.0
                # OMAX selection (line 10).
                winner = int(np.argmax(reported_vals))
                best = float(reported_vals[winner])
                if traced:
                    tracer.add("round/argmax", perf_counter() - t0)
                if not np.isfinite(best) or best <= 0.0:
                    # Central body's binary decision: (0) do not replicate.
                    if eventing:
                        sink.emit(
                            ev.RoundEnd(
                                t=ev.now(),
                                round=round_idx,
                                committed=0,
                                otc=state.tracked_otc(),
                            )
                        )
                    if audit is not None:
                        audit.append(
                            RoundRecord(
                                reported=reported_vals.copy(),
                                objects=reported_objs.copy(),
                                winner=-1,
                                obj=-1,
                                payment=0.0,
                                true_value=0.0,
                            )
                        )
                    break

                if self.batch_size == 1:
                    # Payment (lines 11-12, Axiom 5).
                    t0 = perf_counter() if traced else 0.0
                    obj = int(reported_objs[winner])
                    payment = pay(reported_vals, winner)
                    # The winner's *true* value for the object it was
                    # awarded (not necessarily its truthful argmax when
                    # deviating).
                    true_value = engine.value_at(winner, obj)
                    payments[winner] += payment
                    utilities[winner] += true_value - payment
                    if traced:
                        tracer.add("round/payment", perf_counter() - t0)
                    if eventing:
                        sink.emit(
                            ev.WinnerEvent(
                                t=ev.now(),
                                round=round_idx,
                                agent=winner,
                                obj=obj,
                                value=best,
                                obj_size=int(instance.sizes[obj]),
                                residual_before=int(state.residual[winner]),
                            )
                        )
                        sink.emit(
                            ev.PaymentEvent(
                                t=ev.now(),
                                round=round_idx,
                                agent=winner,
                                amount=payment,
                                rule=self.payment_rule,
                            )
                        )
                    t0 = perf_counter() if traced else 0.0

                    # Commit + NN broadcast (lines 13-21).
                    state.add_replica(winner, obj)
                    engine.notify_allocation(winner, obj)
                    rounds += 1
                    if traced:
                        tracer.add("round/nn_broadcast", perf_counter() - t0)
                    if eventing:
                        sink.emit(
                            ev.NNUpdateEvent(
                                t=ev.now(), round=round_idx, obj=obj, agents=m
                            )
                        )
                        assert series is not None
                        series.append(
                            otc=state.tracked_otc(),
                            best_bid=best,
                            payment=payment,
                            n_bids=int(np.isfinite(reported_vals).sum()),
                        )
                        sink.emit(
                            ev.RoundEnd(
                                t=ev.now(),
                                round=round_idx,
                                committed=1,
                                otc=series.otc[-1],
                            )
                        )

                    if audit is not None:
                        audit.append(
                            RoundRecord(
                                reported=reported_vals.copy(),
                                objects=reported_objs.copy(),
                                winner=winner,
                                obj=obj,
                                payment=payment,
                                true_value=true_value,
                            )
                        )
                    continue

                # Batched round: approve the top-B positive reports at a
                # uniform clearing price (the best rejected report),
                # which no winner's own bid can influence.
                t0 = perf_counter() if traced else 0.0
                order = np.argsort(reported_vals)[::-1]
                positive = [
                    int(i)
                    for i in order
                    if np.isfinite(reported_vals[i]) and reported_vals[i] > 0.0
                ]
                batch = positive[: self.batch_size]
                rejected = positive[self.batch_size :]
                clearing = (
                    float(reported_vals[rejected[0]]) if rejected else 0.0
                )
                # True values captured before any commit: bids within a
                # batch are mutually stale by design, and the delta
                # engine computes cells from the *live* state, so reading
                # after a commit would see the relaxed NN distances the
                # naive engine's (deliberately stale) matrix does not.
                batch_true = {
                    w: engine.value_at(w, int(reported_objs[w])) for w in batch
                }
                committed = 0
                for w in batch:
                    obj = int(reported_objs[w])
                    if not state.can_host(w, obj):
                        # A stale bid (another batch member changed
                        # nothing for capacity, but warm starts might);
                        # skip rather than fault.
                        if eventing:
                            sink.emit(
                                ev.CapacityReject(
                                    t=ev.now(),
                                    round=round_idx,
                                    agent=w,
                                    obj=obj,
                                    obj_size=int(instance.sizes[obj]),
                                    residual=int(state.residual[w]),
                                    reason=(
                                        "duplicate" if state.x[w, obj] else "capacity"
                                    ),
                                )
                            )
                        continue
                    true_value = batch_true[w]
                    if eventing:
                        sink.emit(
                            ev.WinnerEvent(
                                t=ev.now(),
                                round=round_idx,
                                agent=w,
                                obj=obj,
                                value=float(reported_vals[w]),
                                obj_size=int(instance.sizes[obj]),
                                residual_before=int(state.residual[w]),
                            )
                        )
                        sink.emit(
                            ev.PaymentEvent(
                                t=ev.now(),
                                round=round_idx,
                                agent=w,
                                amount=clearing,
                                rule="uniform",
                            )
                        )
                    state.add_replica(w, obj)
                    payments[w] += clearing
                    utilities[w] += true_value - clearing
                    committed += 1
                    if audit is not None:
                        audit.append(
                            RoundRecord(
                                reported=reported_vals.copy(),
                                objects=reported_objs.copy(),
                                winner=w,
                                obj=obj,
                                payment=clearing,
                                true_value=true_value,
                            )
                        )
                if traced:
                    tracer.add("round/payment", perf_counter() - t0)
                if committed == 0:
                    if eventing:
                        sink.emit(
                            ev.RoundEnd(
                                t=ev.now(),
                                round=round_idx,
                                committed=0,
                                otc=state.tracked_otc(),
                            )
                        )
                    break
                # NN updates broadcast once, after the batch commits.
                t0 = perf_counter() if traced else 0.0
                for w in batch:
                    obj = int(reported_objs[w])
                    if state.x[w, obj]:
                        engine.refresh_object(obj)
                        engine.refresh_server(w)
                rounds += 1
                if traced:
                    tracer.add("round/nn_broadcast", perf_counter() - t0)
                if eventing:
                    sink.emit(
                        ev.NNUpdateEvent(
                            t=ev.now(), round=round_idx, obj=-1, agents=m
                        )
                    )
                    assert series is not None
                    series.append(
                        otc=state.tracked_otc(),
                        best_bid=best,
                        payment=clearing,
                        n_bids=int(np.isfinite(reported_vals).sum()),
                    )
                    sink.emit(
                        ev.RoundEnd(
                            t=ev.now(),
                            round=round_idx,
                            committed=committed,
                            otc=series.otc[-1],
                        )
                    )

            if traced:
                tracer.count("rounds", rounds)

        extra = {
            "payments": payments,
            "utilities": utilities,
            "payment_rule": self.payment_rule,
            "valuation": self.valuation,
            "engine": engine_name,
        }
        if audit is not None:
            extra["audit"] = audit
        if series is not None:
            extra["round_series"] = series
        return PlacementResult(
            algorithm=self.name if self.valuation == "local" else "AGT-RAM(global)",
            state=state,
            otc=total_otc(state),
            runtime_s=timer.elapsed,
            rounds=rounds,
            extra=extra,
        )


def run_agt_ram(
    instance: DRPInstance,
    *,
    payment_rule: str = "second_price",
    valuation: str = "local",
    strategies: Optional[Mapping[int, Strategy]] = None,
    record_audit: bool = False,
    max_rounds: Optional[int] = None,
    engine: str = "auto",
    emission: str = "auto",
) -> PlacementResult:
    """Functional one-shot entry point for :class:`AGTRam`.

    >>> result = run_agt_ram(instance)          # doctest: +SKIP
    >>> result.savings_percent                  # doctest: +SKIP
    """
    mech = AGTRam(
        payment_rule=payment_rule,
        valuation=valuation,
        strategies=strategies,
        max_rounds=max_rounds,
        engine=engine,
        emission=emission,
    )
    return mech.run(instance, record_audit=record_audit)
