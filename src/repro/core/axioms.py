"""The six axioms (Figure 1) as machine-checkable properties.

The paper's "eccentric" contribution is packaging the mechanism-design
requirements as axioms whose conjunction yields the system-wide
performance property.  We make each axiom a concrete check over a
recorded mechanism run (:class:`~repro.core.mechanism.MechanismAudit`):

1. **Ingredients** — the mechanism produced an algorithmic output and
   per-agent utility functions.
2. **Agent disposition** — every winning valuation is reproducible from
   the winner's private data alone (its own read/write rows) plus public
   knowledge; we verify by replaying the run and recomputing Eq. 5.
3. **Truthful** — the payment never depends on the winner's own report
   (it equals the best competing report), which is what makes
   truth-telling dominant (Lemma 1 / Theorem 5).
4. **Utilitarian** — each round's allocation maximizes the reported
   valuation sum: the winner is an argmax of the reports.
5. **Motivation** — every allocation carried a non-negative payment
   equal to the overall second-best reported valuation.
6. **Algorithmic output** — the final scheme is feasible (capacity and
   primary-copy constraints hold, NN tables consistent) and every award
   matches the object the winner asked for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mechanism import MechanismAudit
from repro.core.payments import second_best_payment
from repro.drp.benefit import BenefitEngine
from repro.drp.feasibility import check_state
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import InfeasibleInstanceError, ReproError
from repro.result import PlacementResult

AXIOM_NAMES = (
    "axiom1_ingredients",
    "axiom2_agent_disposition",
    "axiom3_truthful",
    "axiom4_utilitarian",
    "axiom5_motivation",
    "axiom6_algorithmic_output",
)


@dataclass(frozen=True)
class AxiomCheck:
    """Outcome of one axiom verification."""

    name: str
    passed: bool
    detail: str = ""


def _get_audit(result: PlacementResult) -> MechanismAudit:
    audit = result.extra.get("audit")
    if audit is None:
        raise ReproError(
            "result carries no audit transcript; run the mechanism with "
            "record_audit=True"
        )
    return audit


def _allocation_rounds(audit: MechanismAudit):
    return [r for r in audit.rounds if r.winner >= 0]


def axiom1_ingredients(instance: DRPInstance, result: PlacementResult) -> AxiomCheck:
    ok = (
        result.state is not None
        and "payments" in result.extra
        and "utilities" in result.extra
        and len(result.extra["payments"]) == instance.n_servers
    )
    return AxiomCheck(
        "axiom1_ingredients",
        ok,
        "output specification and per-agent utilities present"
        if ok
        else "missing output or utility components",
    )


def axiom2_agent_disposition(
    instance: DRPInstance, result: PlacementResult
) -> AxiomCheck:
    """Replay the run; each winner's true value must equal its private
    Eq. 5 CoR at that point of the game."""
    audit = _get_audit(result)
    state = ReplicationState.primaries_only(instance)
    engine = BenefitEngine(instance, state)
    for idx, rec in enumerate(_allocation_rounds(audit)):
        expected = float(engine.matrix[rec.winner, rec.obj])
        if not np.isclose(expected, rec.true_value, rtol=1e-9, atol=1e-9):
            return AxiomCheck(
                "axiom2_agent_disposition",
                False,
                f"round {idx}: recorded true value {rec.true_value} != "
                f"replayed private CoR {expected}",
            )
        state.add_replica(rec.winner, rec.obj)
        engine.notify_allocation(rec.winner, rec.obj)
    return AxiomCheck(
        "axiom2_agent_disposition",
        True,
        "all winning valuations reproducible from private data",
    )


def axiom3_truthful(instance: DRPInstance, result: PlacementResult) -> AxiomCheck:
    """Payment must equal the best competing report — independent of the
    winner's own declaration, the second-price property."""
    audit = _get_audit(result)
    for idx, rec in enumerate(_allocation_rounds(audit)):
        expected = second_best_payment(rec.reported, rec.winner)
        if not np.isclose(expected, rec.payment, rtol=1e-9, atol=1e-9):
            return AxiomCheck(
                "axiom3_truthful",
                False,
                f"round {idx}: payment {rec.payment} != second-best {expected} "
                "(payment depends on winner's own report)",
            )
    return AxiomCheck(
        "axiom3_truthful", True, "payments are winner-report independent"
    )


def axiom4_utilitarian(instance: DRPInstance, result: PlacementResult) -> AxiomCheck:
    audit = _get_audit(result)
    for idx, rec in enumerate(_allocation_rounds(audit)):
        best = float(np.max(rec.reported))
        if rec.reported[rec.winner] < best - 1e-12:
            return AxiomCheck(
                "axiom4_utilitarian",
                False,
                f"round {idx}: winner's report {rec.reported[rec.winner]} "
                f"is not the maximum {best}",
            )
    return AxiomCheck(
        "axiom4_utilitarian", True, "every allocation maximizes the report sum"
    )


def axiom5_motivation(instance: DRPInstance, result: PlacementResult) -> AxiomCheck:
    audit = _get_audit(result)
    for idx, rec in enumerate(_allocation_rounds(audit)):
        if rec.payment < 0:
            return AxiomCheck(
                "axiom5_motivation", False, f"round {idx}: negative payment"
            )
    total = audit.total_payments()
    recorded = float(np.sum(result.extra.get("payments", np.zeros(1))))
    if not np.isclose(total, recorded, rtol=1e-9, atol=1e-6):
        return AxiomCheck(
            "axiom5_motivation",
            False,
            f"audit payments {total} disagree with result payments {recorded}",
        )
    return AxiomCheck("axiom5_motivation", True, "all allocations were paid")


def axiom6_algorithmic_output(
    instance: DRPInstance, result: PlacementResult
) -> AxiomCheck:
    audit = _get_audit(result)
    for idx, rec in enumerate(_allocation_rounds(audit)):
        if rec.obj != int(rec.objects[rec.winner]):
            return AxiomCheck(
                "axiom6_algorithmic_output",
                False,
                f"round {idx}: winner asked for object "
                f"{int(rec.objects[rec.winner])} but received {rec.obj}",
            )
    try:
        check_state(result.state)
    except InfeasibleInstanceError as exc:
        return AxiomCheck("axiom6_algorithmic_output", False, str(exc))
    return AxiomCheck(
        "axiom6_algorithmic_output",
        True,
        "final scheme feasible; awards follow preferences",
    )


def verify_axioms(
    instance: DRPInstance, result: PlacementResult
) -> dict[str, AxiomCheck]:
    """Run all six axiom checks; returns ``{axiom_name: AxiomCheck}``."""
    checks = (
        axiom1_ingredients,
        axiom2_agent_disposition,
        axiom3_truthful,
        axiom4_utilitarian,
        axiom5_motivation,
        axiom6_algorithmic_output,
    )
    return {fn.__name__: fn(instance, result) for fn in checks}
