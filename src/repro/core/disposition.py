"""Agent-disposition variants — Axiom 2's three information models.

The paper distinguishes what an agent holds privately:

* **DRP[π]** — private cost-of-replication CoR, public capacity ("the
  only natural choice", and what :class:`~repro.core.agt_ram.AGTRam`
  implements);
* **DRP[σ]** — private capacity b_i, public CoR;
* **DRP[π,σ]** — both private.

Its argument for DRP[π] is twofold: knowing other agents' capacities
"gives them no advantage whatsoever", while knowing others' CoR would
let agents "modify their valuations and alter the algorithmic output".
This module makes both halves measurable:

* under DRP[σ]/DRP[π,σ], agents *declare* capacities.  Over-declaring
  is self-defeating — the mechanism's allocation bounces off the real
  storage (an infeasible award is voided and the agent is barred, the
  natural deployment rule) — and under-declaring only forfeits
  allocations.  :func:`capacity_misreport_gain` measures the utility
  delta of either manipulation (never positive).
* under public-CoR knowledge, a strategic agent could shade its report
  to just above the runner-up.  With the second-price payment this is
  *still* pointless — :func:`cor_knowledge_gain` measures it — which is
  exactly why the mechanism can afford DRP[π].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.core.payments import second_best_payment
from repro.drp.benefit import BenefitEngine
from repro.drp.cost import total_otc
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.result import PlacementResult
from repro.utils.timing import Timer

DispositionModel = Literal["pi", "sigma", "pi-sigma"]


@dataclass(frozen=True)
class CapacityMisreportOutcome:
    """Utility comparison for one capacity-misreporting agent."""

    agent: int
    factor: float
    truthful_utility: float
    misreport_utility: float
    voided_awards: int

    @property
    def gain(self) -> float:
        return self.misreport_utility - self.truthful_utility


def run_with_declared_capacities(
    instance: DRPInstance,
    declared: np.ndarray,
    *,
    max_rounds: int | None = None,
) -> PlacementResult:
    """AGT-RAM where eligibility uses *declared* capacities (DRP[σ]).

    The mechanism masks bids by the declared residuals, but physics is
    enforced by the true storage: when a winner's award does not fit its
    real residual capacity, the award is voided and the agent is barred
    from the rest of the game (it has demonstrably lied).
    """
    declared = np.asarray(declared, dtype=np.int64)
    if declared.shape != (instance.n_servers,):
        raise ConfigurationError(
            f"declared capacities must have shape ({instance.n_servers},)"
        )
    timer = Timer()
    m = instance.n_servers
    payments = np.zeros(m)
    utilities = np.zeros(m)
    voided = np.zeros(m, dtype=np.int64)

    with timer:
        state = ReplicationState.primaries_only(instance)
        engine = BenefitEngine(instance, state)
        # Declared residual = declared capacity - what is actually stored.
        barred = np.zeros(m, dtype=bool)
        rounds = 0
        cap = max_rounds if max_rounds is not None else m * instance.n_objects
        while rounds < cap:
            declared_residual = declared - state.used
            # Mask the engine's view by declared capacity and barring.
            matrix = engine.matrix.copy()
            fits_declared = instance.sizes[None, :] <= declared_residual[:, None]
            matrix[~fits_declared] = -np.inf
            matrix[barred, :] = -np.inf

            objs = matrix.argmax(axis=1)
            vals = matrix[np.arange(m), objs]
            winner = int(np.argmax(vals))
            best = float(vals[winner])
            if not np.isfinite(best) or best <= 0.0:
                break
            obj = int(objs[winner])
            rounds += 1
            if state.can_host(winner, obj):
                payment = second_best_payment(vals, winner)
                true_value = float(engine.matrix[winner, obj])
                state.add_replica(winner, obj)
                engine.notify_allocation(winner, obj)
                payments[winner] += payment
                utilities[winner] += true_value - payment
            else:
                # The declared capacity was a lie: void and bar.
                voided[winner] += 1
                barred[winner] = True

    return PlacementResult(
        algorithm="AGT-RAM[sigma]",
        state=state,
        otc=total_otc(state),
        runtime_s=timer.elapsed,
        rounds=rounds,
        extra={
            "payments": payments,
            "utilities": utilities,
            "voided": voided,
            "declared": declared,
        },
    )


def capacity_misreport_gain(
    instance: DRPInstance, agent: int, factor: float
) -> CapacityMisreportOutcome:
    """Utility change when ``agent`` declares ``factor x`` its capacity.

    ``factor > 1`` over-declares (awards bounce off real storage, agent
    gets barred), ``factor < 1`` under-declares (agent forfeits
    allocations).  Everyone else is truthful.
    """
    if factor <= 0:
        raise ConfigurationError("factor must be > 0")
    truthful = run_with_declared_capacities(instance, instance.capacities)
    declared = instance.capacities.copy()
    declared[agent] = max(
        int(instance.primary_load[agent]), int(round(declared[agent] * factor))
    )
    lying = run_with_declared_capacities(instance, declared)
    return CapacityMisreportOutcome(
        agent=agent,
        factor=factor,
        truthful_utility=float(truthful.extra["utilities"][agent]),
        misreport_utility=float(lying.extra["utilities"][agent]),
        voided_awards=int(lying.extra["voided"][agent]),
    )


def cor_knowledge_gain(instance: DRPInstance, agent: int) -> float:
    """Best single-round gain an agent could extract if it knew every
    other agent's CoR (the DRP[π] leak the paper worries about).

    With full knowledge the sharpest manipulation is to shade the report
    to just above the runner-up when winning (pay less?) or overbid to
    steal a round (pay more than value?).  Under second price the
    payment is already the runner-up's bid, so the measured gain is
    exactly zero — returned for the test/bench to assert.
    """
    state = ReplicationState.primaries_only(instance)
    engine = BenefitEngine(instance, state)
    vals, objs = engine.best_per_server()
    truthful_winner = int(np.argmax(vals))
    if not np.isfinite(vals[truthful_winner]) or vals[truthful_winner] <= 0:
        return 0.0
    others = np.delete(vals, agent)
    best_other = float(others[np.isfinite(others)].max()) if np.isfinite(others).any() else 0.0

    def utility(report: float) -> float:
        declared = vals.copy()
        declared[agent] = report
        w = int(np.argmax(declared))
        if w != agent or declared[w] <= 0:
            return 0.0
        pay = second_best_payment(declared, w)
        return float(vals[agent]) - pay  # true value minus price

    truthful_u = utility(float(vals[agent]))
    # Knowledge-exploiting reports: epsilon above the best competitor,
    # and a huge overbid.
    candidates = [best_other * (1 + 1e-9) + 1e-9, best_other + 1.0, 1e18]
    best_u = max(utility(c) for c in candidates)
    return best_u - truthful_u
