"""Empirical truthfulness / dominant-strategy verification.

Lemma 1 and Theorem 5 claim truth-telling is a dominant strategy under
the second-price payment.  This module measures it:

* :func:`one_shot_utilities` — the exact single-round game, where
  second-price dominance is an if-and-only-if: the deviator's utility can
  never exceed the truthful one.
* :func:`full_run_utilities` — the repeated game over a complete
  mechanism execution.  Dominance is proved per round; across rounds a
  deviation changes the game trajectory, so the comparison is empirical
  (and, with the paper's payment, deviations remain unprofitable in
  practice).
* :func:`truthfulness_gap` — aggregate statistic over sampled agents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.agt_ram import AGTRam
from repro.core.payments import PAYMENT_RULES
from repro.core.strategies import Strategy
from repro.drp.benefit import BenefitEngine
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class UtilityComparison:
    """Utilities of one agent playing truthfully vs deviating."""

    agent: int
    truthful: float
    deviating: float

    @property
    def gain_from_deviation(self) -> float:
        return self.deviating - self.truthful


def _play_one_round(
    engine: BenefitEngine,
    agent: int,
    strategy: Strategy | None,
    payment_rule: str,
) -> float:
    """Play a single mechanism round; return ``agent``'s utility.

    All other agents are truthful.  ``strategy=None`` makes ``agent``
    truthful too.
    """
    pay = PAYMENT_RULES[payment_rule]
    true_vals, true_objs = engine.best_per_server()
    reported = true_vals.copy()
    objs = true_objs.copy()
    if strategy is not None:
        row = strategy.report(engine.matrix[agent])
        if np.isfinite(row).any():
            obj = int(np.argmax(row))
            objs[agent] = obj
            reported[agent] = row[obj]
        else:
            reported[agent] = -np.inf
    winner = int(np.argmax(reported))
    if not np.isfinite(reported[winner]) or reported[winner] <= 0.0:
        return 0.0
    if winner != agent:
        return 0.0
    payment = pay(reported, winner)
    true_value = float(engine.matrix[agent, int(objs[agent])])
    return true_value - payment


def one_shot_utilities(
    instance: DRPInstance,
    agent: int,
    strategy: Strategy,
    *,
    payment_rule: str = "second_price",
) -> UtilityComparison:
    """Single-round utilities of ``agent``: truthful vs ``strategy``.

    Under the second-price rule ``deviating <= truthful`` always holds
    (exact dominance); under first price the inequality can reverse.
    """
    state = ReplicationState.primaries_only(instance)
    engine = BenefitEngine(instance, state)
    truthful = _play_one_round(engine, agent, None, payment_rule)
    deviating = _play_one_round(engine, agent, strategy, payment_rule)
    return UtilityComparison(agent=agent, truthful=truthful, deviating=deviating)


def full_run_utilities(
    instance: DRPInstance,
    agent: int,
    strategy: Strategy,
    *,
    payment_rule: str = "second_price",
) -> UtilityComparison:
    """Cumulative utilities of ``agent`` across two complete runs."""
    base = AGTRam(payment_rule=payment_rule).run(instance)
    dev = AGTRam(payment_rule=payment_rule, strategies={agent: strategy}).run(instance)
    return UtilityComparison(
        agent=agent,
        truthful=float(base.extra["utilities"][agent]),
        deviating=float(dev.extra["utilities"][agent]),
    )


def truthfulness_gap(
    instance: DRPInstance,
    strategy_factory,
    *,
    n_agents: int = 8,
    payment_rule: str = "second_price",
    one_shot: bool = True,
    seed: SeedLike = None,
) -> list[UtilityComparison]:
    """Sample agents and compare truthful vs deviating utilities.

    Parameters
    ----------
    strategy_factory:
        Zero-argument callable producing a fresh :class:`Strategy` per
        sampled agent (fresh RNG state for random projections).
    one_shot:
        Use the exact single-round game (default) or full-run utilities.
    """
    rng = as_generator(seed)
    m = instance.n_servers
    agents = rng.choice(m, size=min(n_agents, m), replace=False)
    fn = one_shot_utilities if one_shot else full_run_utilities
    return [
        fn(instance, int(a), strategy_factory(), payment_rule=payment_rule)
        for a in agents
    ]
