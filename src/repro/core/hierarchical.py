"""Hierarchical / regional AGT-RAM — the paper's Section 7 extension.

"As future work, we would extend the semi-distributed model to regional
autonomous, self-governed and self-repairing mechanisms ... This would
enable the system to be less vulnerable to the failures of a single
mechanism, and in turn would open the realms of devising hierarchical
games."

Design (two-level game):

* servers are partitioned into regions (by network proximity — each
  server joins the region of its nearest seed under the cost metric, or
  an explicit partition is supplied);
* each region runs its own sealed-bid AGT-RAM round with a *regional*
  central body (regional second price);
* two composition modes:

  - ``"sequential"`` — regional winners' bids are forwarded to a root
    body that approves exactly one allocation per global round.  The
    winner pays the max of its regional second price and the best
    competing regional winner's bid, which keeps the payment
    independent of its own report (truthfulness survives both levels).
  - ``"concurrent"`` — every region allocates its own winner each
    round (regional autonomy).  Rounds shrink by ~|regions| at the cost
    of intra-round staleness: regions commit without seeing each
    other's allocations until the end-of-round broadcast.

* failure resilience: regions listed in ``failed_regions`` have lost
  their regional body; their servers stop participating, but the rest
  of the system keeps allocating — the flat mechanism, by contrast,
  dies entirely with its single central body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.payments import second_best_payment
from repro.drp.cost import total_otc
from repro.drp.delta import ENGINE_NAMES, make_local_engine, resolve_engine
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.obs import events as ev
from repro.result import PlacementResult
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer


def partition_by_proximity(
    instance: DRPInstance, n_regions: int, *, seed: SeedLike = None
) -> np.ndarray:
    """Partition servers into regions by cost-metric proximity.

    Farthest-point seeding (deterministic given ``seed``) followed by
    nearest-seed assignment: pick a random first seed, then repeatedly
    add the server farthest from all chosen seeds; finally each server
    joins its nearest seed's region.

    Returns an (M,) int array of region ids in [0, n_regions).
    """
    m = instance.n_servers
    if not (1 <= n_regions <= m):
        raise ConfigurationError(
            f"n_regions must be in [1, {m}], got {n_regions}"
        )
    rng = as_generator(seed)
    seeds = [int(rng.integers(m))]
    dist_to_seeds = instance.cost[:, seeds[0]].copy()
    while len(seeds) < n_regions:
        nxt = int(np.argmax(dist_to_seeds))
        seeds.append(nxt)
        dist_to_seeds = np.minimum(dist_to_seeds, instance.cost[:, nxt])
    return np.asarray(instance.cost[:, seeds].argmin(axis=1), dtype=np.int64)


@dataclass
class RegionStats:
    """Per-region accounting of a hierarchical run."""

    region: int
    servers: int
    allocations: int = 0
    payments: float = 0.0


@dataclass
class HierarchicalAGTRam:
    """Two-level regional mechanism.

    Parameters
    ----------
    n_regions:
        Number of regions when ``partition`` is not given.
    partition:
        Optional explicit (M,) region-id array (e.g. transit-stub
        domains); overrides ``n_regions``.
    mode:
        ``"sequential"`` or ``"concurrent"`` (see module docstring).
    regional_game:
        ``"non-cooperative"`` — agents keep the private Eq. 5 CoR (the
        paper's base model); ``"cooperative"`` — §7's other option: the
        agents of a region pool their books, so bids price the whole
        region's read rerouting
        (:class:`~repro.drp.global_engine.RegionalBenefitEngine`).
    failed_regions:
        Regions whose mechanism is down; their servers abstain.
    seed:
        Seed for the proximity partition.
    engine:
        Benefit-engine selector for the non-cooperative regional games:
        ``"auto"`` (vectorized when numpy allows, the default),
        ``"naive"``, or ``"vectorized"`` — the same passthrough as the
        flat mechanism (:mod:`repro.drp.delta`); the two engines are
        bit-for-bit identical at the regional level.  The cooperative
        game prices regional coalitions through
        :class:`~repro.drp.global_engine.RegionalBenefitEngine`, which
        has no vectorized implementation: requesting
        ``engine="vectorized"`` with ``regional_game="cooperative"``
        is a configuration error.
    """

    n_regions: int = 4
    partition: Optional[np.ndarray] = None
    mode: str = "concurrent"
    regional_game: str = "non-cooperative"
    failed_regions: Sequence[int] = field(default_factory=tuple)
    seed: SeedLike = None
    max_rounds: Optional[int] = None
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.mode not in ("sequential", "concurrent"):
            raise ConfigurationError(
                f"mode must be 'sequential' or 'concurrent', got {self.mode!r}"
            )
        if self.regional_game not in ("non-cooperative", "cooperative"):
            raise ConfigurationError(
                "regional_game must be 'non-cooperative' or 'cooperative', "
                f"got {self.regional_game!r}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"engine must be one of {ENGINE_NAMES}, got {self.engine!r}"
            )
        if self.regional_game == "cooperative" and self.engine == "vectorized":
            raise ConfigurationError(
                "the cooperative regional game has no vectorized engine; "
                "use engine='auto' or 'naive'"
            )

    # -- helpers -----------------------------------------------------------

    def _regions(self, instance: DRPInstance) -> np.ndarray:
        if self.partition is not None:
            part = np.asarray(self.partition, dtype=np.int64)
            if part.shape != (instance.n_servers,):
                raise ConfigurationError(
                    f"partition must have shape ({instance.n_servers},), "
                    f"got {part.shape}"
                )
            if part.min() < 0:
                raise ConfigurationError("region ids must be non-negative")
            return part
        return partition_by_proximity(instance, self.n_regions, seed=self.seed)

    # -- run ----------------------------------------------------------------

    def run(self, instance: DRPInstance) -> PlacementResult:
        timer = Timer()
        part = self._regions(instance)
        region_ids = sorted(set(int(r) for r in part))
        failed = set(int(r) for r in self.failed_regions)
        stats = {
            r: RegionStats(region=r, servers=int((part == r).sum()))
            for r in region_ids
        }
        payments = np.zeros(instance.n_servers)

        label = (
            f"H-AGT-RAM({self.mode})"
            if self.regional_game == "non-cooperative"
            else f"H-AGT-RAM({self.mode},coop)"
        )
        sink = ev.current()
        eventing = sink.enabled

        with timer:
            state = ReplicationState.primaries_only(instance)
            if self.regional_game == "cooperative":
                from repro.drp.global_engine import RegionalBenefitEngine

                engine = RegionalBenefitEngine(instance, state, part)
                engine_name = "naive"
            else:
                engine_name = resolve_engine(self.engine)
                engine = make_local_engine(engine_name, instance, state)
            live_regions = [r for r in region_ids if r not in failed]
            region_masks = {r: np.flatnonzero(part == r) for r in live_regions}

            if eventing:
                sink.emit(ev.RunStart(t=ev.now(), algorithm=label))
                state.begin_otc_tracking()

            rounds = 0
            cap = (
                self.max_rounds
                if self.max_rounds is not None
                else instance.n_servers * instance.n_objects
            )
            while rounds < cap:
                vals, objs = engine.best_per_server()
                # Regional sealed-bid rounds.
                regional: list[tuple[int, int, int, float, float]] = []
                for r in live_regions:
                    rows = region_masks[r]
                    rvals = vals[rows]
                    if not np.isfinite(rvals).any():
                        continue
                    local_idx = int(np.argmax(rvals))
                    winner = int(rows[local_idx])
                    bid = float(rvals[local_idx])
                    if bid <= 0.0:
                        continue
                    regional_price = second_best_payment(rvals, local_idx)
                    regional.append(
                        (r, winner, int(objs[winner]), bid, regional_price)
                    )
                if not regional:
                    break

                if self.mode == "sequential":
                    # Root picks one regional winner per global round.
                    best_idx = int(np.argmax([b for *_, b, _ in regional]))
                    r, winner, obj, bid, regional_price = regional[best_idx]
                    forwarded = [b for *_, b, _ in regional]
                    root_price = second_best_payment(forwarded, best_idx)
                    # max(regional second, best competing regional
                    # winner) == the global second price, so the flat
                    # audit verifies sequential rounds unchanged.
                    price = max(regional_price, root_price)
                    if eventing:
                        sink.emit(ev.RoundStart(t=ev.now(), round=rounds))
                        self._emit_bids(
                            sink, rounds, live_regions, region_masks,
                            part, vals, objs,
                        )
                        sink.emit(
                            ev.WinnerEvent(
                                t=ev.now(), round=rounds, agent=winner,
                                obj=obj, value=bid,
                                obj_size=int(instance.sizes[obj]),
                                residual_before=int(state.residual[winner]),
                                region=r,
                            )
                        )
                    state.add_replica(winner, obj)
                    engine.notify_allocation(winner, obj)
                    payments[winner] += price
                    stats[r].allocations += 1
                    stats[r].payments += price
                    if eventing:
                        sink.emit(
                            ev.PaymentEvent(
                                t=ev.now(), round=rounds, agent=winner,
                                amount=price, region=r,
                            )
                        )
                        sink.emit(
                            ev.RoundEnd(
                                t=ev.now(), round=rounds, committed=1,
                                otc=state.tracked_otc(),
                            )
                        )
                else:
                    # Concurrent: every region commits its winner; NN
                    # updates propagate only after all regions commit,
                    # so a round's bids are mutually stale (the price of
                    # autonomy).  Conflicts are impossible — winners are
                    # distinct servers — but capacity is re-checked
                    # against the live state.  Each region's sub-round
                    # is a self-contained region-tagged round in the
                    # event stream, so both the flat audit and the
                    # per-shard audit verify it independently.
                    committed: list[tuple[int, int]] = []
                    for r, winner, obj, bid, regional_price in regional:
                        if eventing:
                            sink.emit(
                                ev.RoundStart(
                                    t=ev.now(), round=rounds, region=r
                                )
                            )
                            self._emit_bids(
                                sink, rounds, [r], region_masks,
                                part, vals, objs,
                            )
                        if not state.can_host(winner, obj):
                            if eventing:
                                reason = (
                                    "duplicate"
                                    if state.x[winner, obj]
                                    else "capacity"
                                )
                                sink.emit(
                                    ev.CapacityReject(
                                        t=ev.now(), round=rounds,
                                        agent=winner, obj=obj,
                                        obj_size=int(instance.sizes[obj]),
                                        residual=int(state.residual[winner]),
                                        reason=reason, region=r,
                                    )
                                )
                                sink.emit(
                                    ev.RoundEnd(
                                        t=ev.now(), round=rounds,
                                        committed=0,
                                        otc=state.tracked_otc(),
                                        region=r,
                                    )
                                )
                            continue
                        if eventing:
                            sink.emit(
                                ev.WinnerEvent(
                                    t=ev.now(), round=rounds, agent=winner,
                                    obj=obj, value=bid,
                                    obj_size=int(instance.sizes[obj]),
                                    residual_before=int(
                                        state.residual[winner]
                                    ),
                                    region=r,
                                )
                            )
                        state.add_replica(winner, obj)
                        committed.append((winner, obj))
                        payments[winner] += regional_price
                        stats[r].allocations += 1
                        stats[r].payments += regional_price
                        if eventing:
                            sink.emit(
                                ev.PaymentEvent(
                                    t=ev.now(), round=rounds, agent=winner,
                                    amount=regional_price, region=r,
                                )
                            )
                            sink.emit(
                                ev.RoundEnd(
                                    t=ev.now(), round=rounds, committed=1,
                                    otc=state.tracked_otc(), region=r,
                                )
                            )
                    if not committed:
                        break
                    for winner, obj in committed:
                        engine.refresh_object(obj)
                        engine.refresh_server(winner)
                rounds += 1

            if eventing:
                sink.emit(
                    ev.RunEnd(
                        t=ev.now(), algorithm=label,
                        otc=state.tracked_otc(), rounds=rounds,
                    )
                )

        return PlacementResult(
            algorithm=label,
            state=state,
            otc=total_otc(state),
            runtime_s=timer.elapsed,
            rounds=rounds,
            extra={
                "payments": payments,
                "partition": part,
                "region_stats": stats,
                "failed_regions": sorted(failed),
                "mode": self.mode,
                "engine": engine_name,
            },
        )

    @staticmethod
    def _emit_bids(
        sink: "ev.EventSink",
        rnd: int,
        regions: Sequence[int],
        region_masks: dict[int, np.ndarray],
        part: np.ndarray,
        vals: np.ndarray,
        objs: np.ndarray,
    ) -> None:
        """Emit every finite regional bid, tagged with its region."""
        for r in regions:
            for server in region_masks[r]:
                value = float(vals[server])
                if not np.isfinite(value):
                    continue
                sink.emit(
                    ev.BidEvent(
                        t=ev.now(), round=rnd, agent=int(server),
                        obj=int(objs[server]), value=value,
                        region=int(r),
                    )
                )
