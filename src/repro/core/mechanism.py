"""Mechanism abstractions — Definitions 1–3 of the paper.

A *mechanism* (Definition 3) is a pair ``m = (x(·), p(·))`` of an
algorithmic-output function and a payment function over the agents'
declared data.  :class:`Mechanism` captures that contract;
:class:`MechanismAudit` records every round of a concrete run so the six
axioms can be verified post-hoc (:mod:`repro.core.axioms`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.obs import events as ev
from repro.obs import tracer as obs
from repro.result import PlacementResult


@dataclass(frozen=True)
class RoundRecord:
    """One mechanism round, as observed by the central body.

    Attributes
    ----------
    reported:
        (M,) vector of declared valuations (``-inf`` for agents that made
        no bid this round).
    objects:
        (M,) vector of the object each agent asked for (-1 when absent).
    winner:
        Winning agent index, or -1 when the round ended the game.
    obj:
        Allocated object (valid when ``winner >= 0``).
    payment:
        Payment issued to the winner.
    true_value:
        The winner's *true* valuation (known to the audit because our
        simulation can peek; the real mechanism only sees ``reported``).
    """

    reported: np.ndarray
    objects: np.ndarray
    winner: int
    obj: int
    payment: float
    true_value: float


@dataclass
class MechanismAudit:
    """Complete transcript of a mechanism run."""

    rounds: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.rounds.append(record)

    def __len__(self) -> int:
        return len(self.rounds)

    def total_payments(self) -> float:
        return float(sum(r.payment for r in self.rounds if r.winner >= 0))

    def payments_by_agent(self, n_agents: int) -> np.ndarray:
        out = np.zeros(n_agents)
        for r in self.rounds:
            if r.winner >= 0:
                out[r.winner] += r.payment
        return out

    def utilities_by_agent(self, n_agents: int) -> np.ndarray:
        """Theorem-5 utilities aggregated per agent."""
        out = np.zeros(n_agents)
        for r in self.rounds:
            if r.winner >= 0:
                out[r.winner] += r.true_value - r.payment
        return out


class Mechanism(ABC):
    """Definition 3: an output function x(·) plus a payment function p(·).

    Concrete mechanisms implement :meth:`_run`, which plays the game to
    completion and returns a :class:`~repro.result.PlacementResult`; when
    ``record_audit`` is set the result's ``extra["audit"]`` carries the
    :class:`MechanismAudit` transcript.  The public :meth:`run` wraps the
    execution in an observability span (``mechanism/<name>``) so every
    mechanism is traced uniformly when a tracer is active (see
    :mod:`repro.obs`) at no cost otherwise.
    """

    name: str = "mechanism"

    def run(self, instance, *, record_audit: bool = False, **kwargs) -> PlacementResult:
        """Execute the mechanism on a DRP instance."""
        sink = ev.current()
        if sink.enabled:
            sink.emit(ev.RunStart(t=ev.now(), algorithm=self.name))
        with obs.current().span(f"mechanism/{self.name}"):
            result = self._run(instance, record_audit=record_audit, **kwargs)
        if sink.enabled:
            sink.emit(
                ev.RunEnd(
                    t=ev.now(),
                    algorithm=result.algorithm,
                    otc=result.otc,
                    rounds=result.rounds,
                )
            )
        return result

    @abstractmethod
    def _run(self, instance, *, record_audit: bool = False) -> PlacementResult:
        """Mechanism-specific execution; implemented by subclasses."""
