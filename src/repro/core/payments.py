"""Payment rules and the utility model — Axiom 5 and Theorem 5.

The paper's motivational payment: "for each object allocated to it, the
agent is given payment equal to the overall second best cost of
replication" — a per-round Vickrey (second-price) rule.  Theorem 5's
proof computes the winner's utility as ``t_i - d_(2)`` (true value minus
the second-best declaration), which is the classical second-price utility
and what makes truth-telling a dominant strategy: over-projection can win
a round whose price exceeds the agent's true value (negative utility),
under-projection can lose a round the agent values positively, and random
projection risks both.

:func:`first_price_payment` is kept as the ablation foil — under it the
winner's utility is identically zero for truthful play, so manipulation
pays and truthfulness collapses (benchmarked in
``benchmarks/bench_ablation_payments.py``).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def second_best_payment(reported: Sequence[float], winner: int) -> float:
    """The Vickrey price: the best reported value excluding the winner's.

    Parameters
    ----------
    reported:
        All agents' reported values for the round; non-participants
        should report ``-inf``.
    winner:
        Index of the winning agent.

    Returns
    -------
    float
        ``max_{j != winner} reported[j]``, clamped at 0.0 when no other
        agent made a (finite, positive) report — a sole bidder pays the
        reserve price of zero.

    Notes
    -----
    The rule is total over adversarial inputs: non-finite reports
    (``nan``, ``±inf``) are treated as non-participation rather than
    poisoning the max, so the price is always finite and non-negative,
    and — when the winner is the argmax of the finite reports — never
    exceeds the winner's own bid (Hypothesis-tested properties).
    """
    arr = np.asarray(reported, dtype=np.float64)
    if not (0 <= winner < len(arr)):
        raise IndexError(f"winner index {winner} out of range for {len(arr)} agents")
    others = np.delete(arr, winner)
    others = others[np.isfinite(others)]
    if len(others) == 0:
        return 0.0
    best = float(others.max())
    if best < 0.0:
        return 0.0
    return best


def first_price_payment(reported: Sequence[float], winner: int) -> float:
    """Pay-your-bid rule (ablation): the winner's price is its own report."""
    arr = np.asarray(reported, dtype=np.float64)
    if not (0 <= winner < len(arr)):
        raise IndexError(f"winner index {winner} out of range for {len(arr)} agents")
    value = float(arr[winner])
    if not np.isfinite(value):
        raise ValueError("winner made no finite report")
    return max(0.0, value)


#: Registry used by :class:`repro.core.agt_ram.AGTRam` and the ablations.
PAYMENT_RULES: dict[str, Callable[[Sequence[float], int], float]] = {
    "second_price": second_best_payment,
    "first_price": first_price_payment,
}


def winner_utility(true_value: float, payment: float) -> float:
    """Theorem-5 utility of a round winner: ``t_i - price``.

    Losers' utility is 0 by definition (they neither host nor pay).
    """
    return float(true_value) - float(payment)
