"""Incremental re-auction: re-run the mechanism for a subset of objects.

The serving layer's drift detector flags objects whose observed demand
has moved away from the demand the current placement was auctioned for.
Re-running the whole game from scratch would stall serving for the full
O(MN) protocol; instead we carve out a **sub-instance** containing only
the affected objects and re-auction those, holding every other object's
replicas fixed.

The construction preserves feasibility by design:

* the sub-instance keeps the full server set and cost matrix (distances
  to replicas of *unaffected* objects never change);
* each server's capacity is reduced by the storage its unaffected
  replicas keep occupying, so the sub-auction can never oversubscribe a
  server — and the affected objects' primary copies always fit, because
  they are stored right now under the same accounting;
* the affected columns of the winning sub-scheme are merged back into
  the full X matrix and the NN tables rebuilt.

The result carries the replica **delta** — (server, object) pairs added
and removed relative to the pre-auction state — which is exactly what
the serving router swaps in and the serving audit replays
(:class:`repro.obs.events.ReauctionEvent`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.drp.cost import otc_of_matrix
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.result import PlacementResult

__all__ = ["ReauctionOutcome", "build_sub_instance", "reauction_objects"]


@dataclass
class ReauctionOutcome:
    """Outcome of one incremental re-auction.

    ``added`` / ``removed`` are (server, object) replica pairs in the
    *full* instance's object numbering, relative to the pre-auction
    state.  Primary copies never appear in ``removed``.
    """

    state: ReplicationState
    objects: tuple[int, ...]
    added: tuple[tuple[int, int], ...]
    removed: tuple[tuple[int, int], ...]
    otc_before: float
    otc_after: float
    rounds: int
    sub_result: PlacementResult

    @property
    def improved(self) -> bool:
        return self.otc_after < self.otc_before


def _affected(instance: DRPInstance, objects: Sequence[int]) -> np.ndarray:
    ks = np.unique(np.asarray(list(objects), dtype=np.int64))
    if len(ks) == 0:
        raise ConfigurationError("reauction needs at least one object")
    if ks.min() < 0 or ks.max() >= instance.n_objects:
        raise ConfigurationError(
            f"object ids must be in [0, {instance.n_objects}); got "
            f"{int(ks.min())}..{int(ks.max())}"
        )
    return ks


def build_sub_instance(
    instance: DRPInstance,
    state: ReplicationState,
    objects: Sequence[int],
    *,
    reads: Optional[np.ndarray] = None,
    writes: Optional[np.ndarray] = None,
) -> DRPInstance:
    """The induced DRP over ``objects``, holding the rest of ``state``.

    ``reads`` / ``writes`` optionally replace the instance's demand
    matrices — full (M, N) arrays (the serving loop passes its observed
    demand counts); only the affected columns are used.
    """
    ks = _affected(instance, objects)
    r = instance.reads if reads is None else np.asarray(reads, dtype=np.float64)
    w = instance.writes if writes is None else np.asarray(writes, dtype=np.float64)
    m, n = instance.n_servers, instance.n_objects
    if r.shape != (m, n) or w.shape != (m, n):
        raise ConfigurationError(
            f"demand overrides must have shape ({m}, {n}); got "
            f"{r.shape} and {w.shape}"
        )
    # Capacity left once every *unaffected* replica keeps its storage.
    keep = state.x.copy()
    keep[:, ks] = False
    used_unaffected = keep @ instance.sizes
    return DRPInstance(
        cost=instance.cost,
        reads=r[:, ks],
        writes=w[:, ks],
        sizes=instance.sizes[ks],
        capacities=instance.capacities - used_unaffected,
        primaries=instance.primaries[ks],
        name=f"{instance.name}/reauction",
    )


def reauction_objects(
    instance: DRPInstance,
    state: ReplicationState,
    objects: Sequence[int],
    *,
    reads: Optional[np.ndarray] = None,
    writes: Optional[np.ndarray] = None,
    placer: Optional[Callable[[DRPInstance], PlacementResult]] = None,
) -> ReauctionOutcome:
    """Re-auction ``objects`` and merge the winners back into ``state``.

    ``placer`` maps the sub-instance to a :class:`PlacementResult`; by
    default the semi-distributed simulator runs the full message-level
    protocol (its nested run_start/run_end event stream audits cleanly
    inside a serving campaign's log).  ``state`` is not mutated — the
    merged scheme comes back in the outcome.

    ``otc_before`` / ``otc_after`` are evaluated against the demand the
    re-auction optimized for (the overrides when given), so
    :attr:`ReauctionOutcome.improved` measures the gain on the demand
    that actually triggered the re-auction.
    """
    ks = _affected(instance, objects)
    sub = build_sub_instance(
        instance, state, ks, reads=reads, writes=writes
    )
    if reads is None and writes is None:
        eval_instance = instance
    else:
        from dataclasses import replace

        eval_instance = replace(
            instance,
            reads=instance.reads if reads is None else reads,
            writes=instance.writes if writes is None else writes,
        )
    if placer is None:
        from repro.runtime.simulator import SemiDistributedSimulator

        sub_result = SemiDistributedSimulator().run(sub)
    else:
        sub_result = placer(sub)

    x_new = state.x.copy()
    x_new[:, ks] = sub_result.state.x
    merged = ReplicationState.from_matrix(instance, x_new)

    was, now = state.x[:, ks], sub_result.state.x
    add_srv, add_col = np.nonzero(now & ~was)
    del_srv, del_col = np.nonzero(was & ~now)
    added = tuple(
        (int(s), int(ks[c])) for s, c in zip(add_srv, add_col)
    )
    removed = tuple(
        (int(s), int(ks[c])) for s, c in zip(del_srv, del_col)
    )
    return ReauctionOutcome(
        state=merged,
        objects=tuple(int(k) for k in ks),
        added=added,
        removed=removed,
        otc_before=otc_of_matrix(eval_instance, state.x),
        otc_after=otc_of_matrix(eval_instance, merged.x),
        rounds=sub_result.rounds,
        sub_result=sub_result,
    )
