"""Agent reporting strategies.

Axiom 5's analysis considers three manipulations of the true data:
*over projection* (inflating reports hoping for more revenue), *under
projection* (deflating them), and *random projection*.  A strategy maps
the agent's true valuation vector to the vector it reports; the dominant
report is then the argmax of the *reported* vector, so a non-monotone
strategy (random projection) can also distort which object the agent
asks for — exactly the failure mode the second-price rule punishes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


class Strategy(ABC):
    """Maps a true valuation vector to a reported valuation vector.

    Entries equal to ``-inf`` mark ineligible objects and must be
    preserved by every strategy (an agent cannot bid on an object it
    cannot host — the mechanism would reject the bid as a protocol
    violation).
    """

    name: str = "strategy"

    @abstractmethod
    def _transform(self, true_values: np.ndarray) -> np.ndarray:
        """Map finite true values to reported values (same shape)."""

    def report(self, true_values: np.ndarray) -> np.ndarray:
        true_values = np.asarray(true_values, dtype=np.float64)
        reported = self._transform(true_values.copy())
        reported = np.asarray(reported, dtype=np.float64)
        if reported.shape != true_values.shape:
            raise ConfigurationError(
                f"{self.name} changed report shape {true_values.shape} -> "
                f"{reported.shape}"
            )
        reported[~np.isfinite(true_values)] = -np.inf
        return reported

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class TruthfulStrategy(Strategy):
    """Report the true data — the dominant strategy (Lemma 1)."""

    name = "truthful"

    def _transform(self, true_values: np.ndarray) -> np.ndarray:
        return true_values


class OverProjection(Strategy):
    """Inflate every valuation by a constant factor > 1."""

    name = "over-projection"

    def __init__(self, factor: float = 1.5):
        if factor <= 1.0:
            raise ConfigurationError(f"over-projection factor must be > 1, got {factor}")
        self.factor = float(factor)

    def _transform(self, true_values: np.ndarray) -> np.ndarray:
        finite = np.isfinite(true_values)
        # Scaling must push values *up* regardless of sign.
        true_values[finite] = np.where(
            true_values[finite] >= 0,
            true_values[finite] * self.factor,
            true_values[finite] / self.factor,
        )
        return true_values

    def __repr__(self) -> str:
        return f"OverProjection(factor={self.factor})"


class UnderProjection(Strategy):
    """Deflate every valuation by a constant factor in (0, 1)."""

    name = "under-projection"

    def __init__(self, factor: float = 0.5):
        if not (0.0 < factor < 1.0):
            raise ConfigurationError(
                f"under-projection factor must be in (0, 1), got {factor}"
            )
        self.factor = float(factor)

    def _transform(self, true_values: np.ndarray) -> np.ndarray:
        finite = np.isfinite(true_values)
        true_values[finite] = np.where(
            true_values[finite] >= 0,
            true_values[finite] * self.factor,
            true_values[finite] / self.factor,
        )
        return true_values

    def __repr__(self) -> str:
        return f"UnderProjection(factor={self.factor})"


class TopInflation(Strategy):
    """Inflate only the dominant valuation, leaving the rest truthful.

    The stealthy variant of :class:`OverProjection`: a flat inflation
    shifts the whole reported vector and is obvious to any sanity
    check, whereas inflating just the argmax changes exactly the one
    number the mechanism sees.  This is the per-bid transform the
    Byzantine layer's ``"inflate"`` behaviour applies
    (:mod:`repro.runtime.adversary`), kept here so the equilibrium
    checks can price it: under second-price payments the extra wins it
    buys cost more than the agent's true value (Theorem 5), so the
    deviation stays unprofitable.
    """

    name = "top-inflation"

    def __init__(self, factor: float = 2.0):
        if factor <= 1.0:
            raise ConfigurationError(
                f"top-inflation factor must be > 1, got {factor}"
            )
        self.factor = float(factor)

    def _transform(self, true_values: np.ndarray) -> np.ndarray:
        if not np.isfinite(true_values).any():
            return true_values
        top = int(np.nanargmax(np.where(np.isfinite(true_values),
                                        true_values, -np.inf)))
        v = true_values[top]
        true_values[top] = v * self.factor if v >= 0 else v / self.factor
        return true_values

    def __repr__(self) -> str:
        return f"TopInflation(factor={self.factor})"


class ShillBid(Strategy):
    """Report a fixed value on the dominant object, ignoring the truth.

    Models a naive shill (or a collusion booster targeting a known
    price level): whatever the agent's true data says, it reports
    ``value`` for its best object.  Used by the Byzantine layer's
    collusion ring to prop up the second price a ring-mate is paid;
    the equilibrium checks verify the shill itself cannot profit from
    the lie under second-price payments.
    """

    name = "shill-bid"

    def __init__(self, value: float):
        if not np.isfinite(value):
            raise ConfigurationError(
                f"shill-bid value must be finite, got {value}"
            )
        self.value = float(value)

    def _transform(self, true_values: np.ndarray) -> np.ndarray:
        finite = np.isfinite(true_values)
        if not finite.any():
            return true_values
        top = int(np.nanargmax(np.where(finite, true_values, -np.inf)))
        true_values[finite] = -np.inf
        true_values[top] = self.value
        return true_values

    def __repr__(self) -> str:
        return f"ShillBid(value={self.value})"


class RandomProjection(Strategy):
    """Multiply each valuation by independent lognormal noise."""

    name = "random-projection"

    def __init__(self, sigma: float = 0.5, seed: SeedLike = None):
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be > 0, got {sigma}")
        self.sigma = float(sigma)
        self._rng = as_generator(seed)

    def _transform(self, true_values: np.ndarray) -> np.ndarray:
        finite = np.isfinite(true_values)
        noise = self._rng.lognormal(0.0, self.sigma, size=int(finite.sum()))
        true_values[finite] = true_values[finite] * noise
        return true_values

    def __repr__(self) -> str:
        return f"RandomProjection(sigma={self.sigma})"
