"""Theorem 3 made concrete: the second-best payment *is* VCG.

The paper grounds its payment in Green & Laffont's characterization
(Theorem 3): a truthful minimization-utilitarian mechanism pays
``p_i(t) = Σ_{j != i} v_j(t_j, x(t)) + h_i(t_-i)``.  For AGT-RAM's
per-round game — one replica allocated to the highest-valuation agent —
the Clarke pivot choice of ``h_i`` (the others' best welfare had i not
participated, negated) collapses that expression to the second-best
report.  This module computes both sides independently so the identity
is executable, not just asserted in prose.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.payments import second_best_payment


def others_welfare(reported: Sequence[float], allocated: int | None) -> float:
    """Σ_{j != allocated} v_j(x): in a one-item round only the winner
    realizes its valuation, so others' welfare is 0 unless nobody (or
    someone else) won."""
    arr = np.asarray(reported, dtype=np.float64)
    if allocated is None:
        return 0.0
    if not (0 <= allocated < len(arr)):
        raise IndexError(f"allocated index {allocated} out of range")
    # Everyone except the winner realizes nothing in this round.
    return 0.0


def clarke_pivot_h(reported: Sequence[float], agent: int) -> float:
    """h_i(t_-i): the (negated) best welfare achievable without agent i.

    Without i, the round would allocate to the best remaining reporter,
    realizing its valuation; the Clarke pivot sets
    ``h_i = welfare_without_i`` so the *charge* on i is what its
    presence costs the others.
    """
    arr = np.asarray(reported, dtype=np.float64)
    if not (0 <= agent < len(arr)):
        raise IndexError(f"agent index {agent} out of range")
    others = np.delete(arr, agent)
    finite = others[np.isfinite(others)]
    if len(finite) == 0:
        return 0.0
    return float(max(0.0, finite.max()))  # reserve price 0


def vcg_payment(reported: Sequence[float], winner: int) -> float:
    """The Clarke/VCG charge on the round winner.

    ``p_i = h_i(t_-i) − Σ_{j != i} v_j(x)`` — what i's win cost everyone
    else.  Theorem 3's claim, verified by the test suite, is that this
    equals :func:`repro.core.payments.second_best_payment` identically.
    """
    return clarke_pivot_h(reported, winner) - others_welfare(reported, winner)


def verify_theorem3(reported: Sequence[float], winner: int) -> bool:
    """Check the VCG ≡ second-price identity on one bid vector."""
    return np.isclose(
        vcg_payment(reported, winner), second_best_payment(reported, winner)
    )
