"""The Data Replication Problem (DRP) model — Section 2 of the paper.

* :class:`~repro.drp.instance.DRPInstance` — the immutable problem data
  (M servers, N objects, cost matrix, read/write matrices, sizes,
  capacities, primary copies).
* :class:`~repro.drp.state.ReplicationState` — a mutable replication
  scheme: the boolean X matrix, residual capacities, and the per-server
  nearest-neighbor (NN) tables the paper's servers maintain.
* :mod:`~repro.drp.cost` — the exact Object Transfer Cost (OTC) model
  (Equations 1–4), fully vectorized.
* :mod:`~repro.drp.benefit` — the local CoR valuation (Equation 5) and
  the exact global Δ-OTC benefit oracle used by centralized baselines.
* :mod:`~repro.drp.savings` — OTC-savings-% metric (the paper's
  performance metric).
* :mod:`~repro.drp.feasibility` — structural invariant checks.
"""

from repro.drp.instance import DRPInstance, build_instance
from repro.drp.state import ReplicationState
from repro.drp.cost import (
    total_otc,
    primary_only_otc,
    otc_breakdown,
    otc_of_matrix,
)
from repro.drp.benefit import BenefitEngine, global_benefit, global_benefit_column
from repro.drp.delta import (
    DeltaBenefitEngine,
    ENGINE_NAMES,
    make_local_engine,
    resolve_engine,
)
from repro.drp.global_engine import GlobalBenefitEngine, RegionalBenefitEngine
from repro.drp.savings import otc_savings_percent, savings_percent_curve
from repro.drp.feasibility import check_state, check_instance
from repro.drp.transforms import (
    delta_update_instance,
    scaled_request_instance,
    read_only_instance,
)

__all__ = [
    "DRPInstance",
    "build_instance",
    "ReplicationState",
    "total_otc",
    "primary_only_otc",
    "otc_breakdown",
    "otc_of_matrix",
    "BenefitEngine",
    "DeltaBenefitEngine",
    "ENGINE_NAMES",
    "make_local_engine",
    "resolve_engine",
    "GlobalBenefitEngine",
    "RegionalBenefitEngine",
    "global_benefit",
    "global_benefit_column",
    "otc_savings_percent",
    "savings_percent_curve",
    "check_state",
    "check_instance",
    "delta_update_instance",
    "scaled_request_instance",
    "read_only_instance",
]
