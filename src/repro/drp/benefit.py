"""Replication benefits: the local CoR valuation and the global ΔOTC.

Two oracles, deliberately distinct:

* **Local CoR** (Equation 5) — what an AGT-RAM *agent* can compute from
  its private data (its own reads/writes) plus public knowledge (costs,
  NN table, each object's total write count):

  ``b_ik = r_ik o_k d_k(i)  -  o_k c(P_k, i) (W_k - w_ik)``

  where ``d_k(i)`` is i's current nearest-replica distance and W_k the
  object's total write count.  The first term is i's read saving, the
  second the cost of keeping a new local copy up to date against everyone
  else's writes.

* **Global benefit** — the exact OTC drop from adding the replica, which
  additionally counts *other* servers rerouting their reads to the new
  copy:

  ``g_ik = Σ_x r_xk o_k max(0, d_k(x) - c(x, i))  -  o_k c(P_k, i) (W_k - w_ik)``

  Centralized baselines (Greedy, Aε-Star) use this oracle; the gap
  between the two is exactly the information the semi-distributed design
  gives up.  ``total_otc(after) == total_otc(before) - g_ik`` holds
  exactly (tested property).
"""

from __future__ import annotations

import numpy as np

from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.obs import tracer as obs

#: Sentinel benefit for ineligible (server, object) cells — already a
#: replicator, primary host, or insufficient residual capacity.
NEG_INF = -np.inf


class BenefitEngine:
    """Incrementally-maintained local-CoR matrix for one instance.

    The static parts of Eq. 5 are precomputed once:

    * ``wterm[i, k] = o_k c(P_k, i) (W_k - w_ik)`` — update-keeping cost,
    * ``rstat[i, k] = r_ik o_k`` — read-rate scale.

    The dynamic part is the NN distance, owned by the
    :class:`~repro.drp.state.ReplicationState`.  After an allocation the
    engine refreshes in O(M + N): only the allocated object's column and
    the winner's capacity row change.
    """

    engine_name = "naive"

    def __init__(self, instance: DRPInstance, state: ReplicationState):
        if state.instance is not instance:
            raise ValueError("state does not belong to instance")
        with obs.current().span("benefit_engine/init"):
            self.instance = instance
            self.state = state
            # Static Eq. 5 terms, cached on the (immutable) instance and
            # shared with the delta engine — identical array objects are
            # what make the two engines' arithmetic bit-for-bit equal.
            self.rstat, self.wterm = instance.local_value_terms()  # (M, N)
            self._benefit = np.full((instance.n_servers, instance.n_objects), NEG_INF)
            self._refresh_all()

    # -- eligibility ------------------------------------------------------

    def _eligible_matrix(self) -> np.ndarray:
        """(M, N) bool: cells where a new replica may legally be placed."""
        fits = self.instance.sizes[None, :] <= self.state.residual[:, None]
        return fits & ~self.state.x

    def _refresh_all(self) -> None:
        values = self.rstat * self.state.nn_dist - self.wterm
        self._benefit = np.where(self._eligible_matrix(), values, NEG_INF)

    def refresh_object(self, k: int) -> None:
        """Recompute column k (its NN distances changed)."""
        values = self.rstat[:, k] * self.state.nn_dist[:, k] - self.wterm[:, k]
        fits = self.instance.sizes[k] <= self.state.residual
        eligible = fits & ~self.state.x[:, k]
        self._benefit[:, k] = np.where(eligible, values, NEG_INF)

    def refresh_server(self, i: int) -> None:
        """Re-mask row i (its residual capacity changed)."""
        fits = self.instance.sizes <= self.state.residual[i]
        eligible = fits & ~self.state.x[i, :]
        values = self.rstat[i, :] * self.state.nn_dist[i, :] - self.wterm[i, :]
        self._benefit[i, :] = np.where(eligible, values, NEG_INF)

    def notify_allocation(self, server: int, k: int) -> None:
        """Incremental update after ``state.add_replica(server, k)``."""
        self.refresh_object(k)
        self.refresh_server(server)
        tracer = obs.current()
        if tracer.enabled:
            tracer.count("benefit_engine/incremental_updates")

    def resync(self) -> None:
        """Recompute the whole matrix from the live state.

        Used by lazy NN-update protocols that let agents' views go stale
        between periodic broadcasts.
        """
        self._refresh_all()
        tracer = obs.current()
        if tracer.enabled:
            tracer.count("benefit_engine/resyncs")

    # -- views -------------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """(M, N) local benefits; ineligible cells are ``-inf``.

        This is a live view — do not mutate.
        """
        return self._benefit

    def best_per_server(self) -> tuple[np.ndarray, np.ndarray]:
        """Each agent's dominant report: (values, objects), both (M,).

        ``values[i]`` is ``-inf`` when server i has no eligible object —
        the agent drops out of the game (paper's LS update, line 18).
        """
        objs = self._benefit.argmax(axis=1)
        vals = self._benefit[np.arange(self._benefit.shape[0]), objs]
        return vals, objs

    def row(self, server: int) -> np.ndarray:
        """(N,) masked benefit row of one agent.  Live view — do not mutate."""
        return self._benefit[server]

    def value_at(self, server: int, k: int) -> float:
        """One masked benefit cell (``-inf`` when ineligible)."""
        return float(self._benefit[server, k])

    def eligible_counts(self, servers: np.ndarray) -> np.ndarray:
        """Per-agent count of eligible objects (|L_i|) for the given rows."""
        return np.isfinite(self._benefit[servers]).sum(axis=1)

    def local_benefit(self, server: int, k: int) -> float:
        """Eq. 5 valuation of one cell, ignoring eligibility masking."""
        return float(
            self.rstat[server, k] * self.state.nn_dist[server, k]
            - self.wterm[server, k]
        )


def local_benefit_matrix(
    instance: DRPInstance, state: ReplicationState
) -> np.ndarray:
    """One-shot (M, N) local-CoR matrix with ineligible cells at ``-inf``."""
    return BenefitEngine(instance, state).matrix.copy()


def global_benefit(
    instance: DRPInstance, state: ReplicationState, server: int, k: int
) -> float:
    """Exact OTC reduction from adding a replica of k at ``server``.

    May be negative (write-dominated objects); callers decide whether to
    allocate.  Does not check capacity.
    """
    d_k = state.nn_dist[:, k]
    saved = np.maximum(0.0, d_k - instance.cost[:, server])
    o_k = float(instance.sizes[k])
    read_gain = o_k * float(instance.reads[:, k] @ saved)
    w_other = float(instance.total_write_counts()[k] - instance.writes[server, k])
    update_cost = o_k * float(instance.cost[instance.primaries[k], server]) * w_other
    return read_gain - update_cost


def global_benefit_column(
    instance: DRPInstance, state: ReplicationState, k: int
) -> np.ndarray:
    """(M,) exact ΔOTC of placing object k on each server.

    Ineligible servers (already replicating k, or without capacity) get
    ``-inf``.  Vectorized: one (M, M) relu and one matrix-vector product.
    """
    d_k = state.nn_dist[:, k]
    saved = np.maximum(0.0, d_k[:, None] - instance.cost)  # (M, M): x -> candidate
    o_k = float(instance.sizes[k])
    read_gain = o_k * (instance.reads[:, k].astype(np.float64) @ saved)  # (M,)
    w_other = (
        instance.total_write_counts()[k] - instance.writes[:, k]
    ).astype(np.float64)
    update_cost = o_k * instance.cost[instance.primaries[k], :] * w_other
    g = read_gain - update_cost
    eligible = (~state.x[:, k]) & (instance.sizes[k] <= state.residual)
    return np.where(eligible, g, NEG_INF)
