"""The exact Object Transfer Cost model — Equations 1–4 of the paper.

For a replication scheme X with replica sets R_k (each containing the
primary P_k):

* reads (Eq. 1): server i reads object k from its nearest replicator,
  ``R_ik = r_ik * o_k * c(i, NN_ik)`` — zero when i itself replicates k;
* writes (Eq. 2): each update is shipped to the primary which broadcasts
  it to every replicator,
  ``W_ik = w_ik * o_k * (c(i, P_k) + Σ_{j in R_k, j != i} c(P_k, j))``
  (the writer's own copy, if any, needs no broadcast leg back to it);
* the cumulative OTC (Eq. 3/4) sums both over all (i, k).

Everything here is vectorized over servers and objects; per call the work
is a handful of (M, N) array operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState


@dataclass(frozen=True)
class OTCBreakdown:
    """Total OTC split into its read and write components."""

    read_cost: float
    write_cost: float

    @property
    def total(self) -> float:
        return self.read_cost + self.write_cost


def otc_breakdown(state: ReplicationState) -> OTCBreakdown:
    """Exact OTC of ``state``, split into read and write components.

    The Eq. 5 terms cached on the instance make this two contiguous
    (M, N) reductions.  Reads are
    ``Σ_ik rstat_ik nn_dist_ik`` (``nn_dist`` is 0 for replicators).
    For writes, the broadcast cost over all writers minus each
    replicator's own-copy refund telescopes exactly into the Eq. 5
    update-keeping term summed over the scheme:
    ``Σ_k W_k o_k B_k - Σ_ik x_ik w_ik o_k c(P_k, i)
    = Σ_ik x_ik o_k c(P_k, i) (W_k - w_ik) = Σ_ik x_ik wterm_ik``,
    leaving only the scheme-independent ship-to-primary total.
    """
    inst = state.instance
    rstat, wterm = inst.local_value_terms()
    read_cost = float(np.dot(rstat.reshape(-1), state.nn_dist.reshape(-1)))
    kept = float(np.einsum("ik,ik->", state.x, wterm))
    write_cost = inst.primary_ship_total() + kept
    return OTCBreakdown(read_cost=read_cost, write_cost=write_cost)


def total_otc(state: ReplicationState) -> float:
    """Cumulative OTC (Eq. 3/4) of the replication scheme ``state``."""
    return otc_breakdown(state).total


def otc_by_object(state: ReplicationState) -> np.ndarray:
    """(N,) per-object OTC; sums to :func:`total_otc` exactly.

    The cost model is separable across objects, so this decomposition is
    well-defined and is what savings attribution works from.
    """
    inst = state.instance
    o = inst.sizes.astype(np.float64)
    read = np.einsum("ik,ik->k", inst.reads, state.nn_dist) * o
    cp = inst.primary_cost_rows()
    b = np.einsum("ik,ki->k", state.x, cp)
    w_total = inst.writes.sum(axis=0).astype(np.float64)
    to_primary = np.einsum("ik,ki->k", inst.writes, cp) * o
    broadcast = w_total * b * o
    refund = np.einsum("ik,ik,ki->k", inst.writes, state.x, cp) * o
    return read + to_primary + broadcast - refund


def otc_by_server(state: ReplicationState) -> np.ndarray:
    """(M,) OTC attributed to each *requesting* server.

    Reads are attributed to the reader; a write's primary-shipping leg
    to the writer and its broadcast legs to the writers proportionally
    (each writer pays for the fan-out its own updates cause).  Sums to
    :func:`total_otc` exactly.
    """
    inst = state.instance
    o = inst.sizes.astype(np.float64)
    read = (inst.reads * state.nn_dist) @ o
    cp = inst.primary_cost_rows()  # (N, M)
    b = np.einsum("ik,ki->k", state.x, cp)  # (N,)
    to_primary = (inst.writes * cp.T) @ o
    # Writer i's broadcast fan-out for object k: (b_k - X_ik cp[k, i]).
    fan_out = b[None, :] - state.x * cp.T
    broadcast = (inst.writes * fan_out) @ o
    return read + to_primary + broadcast


def primary_only_otc(instance: DRPInstance) -> float:
    """OTC of the initial scheme where only primary copies exist.

    With R_k = {P_k}: reads cost ``r_ik o_k c(i, P_k)``, writes cost
    ``w_ik o_k c(i, P_k)`` (broadcast sum is empty), so the total is
    ``Σ_ik (r_ik + w_ik) o_k c(i, P_k)``.  This is the baseline the
    paper's OTC-savings percentage is measured against.
    """
    cp = instance.primary_cost_rows()  # (N, M)
    traffic = (instance.reads + instance.writes).astype(np.float64)
    return float(np.einsum("ik,ki,k->", traffic, cp, instance.sizes.astype(np.float64)))


def otc_of_matrix(instance: DRPInstance, x: np.ndarray) -> float:
    """OTC of an arbitrary boolean replication matrix, computed directly.

    Avoids building a full :class:`ReplicationState` (no NN-server
    argmins), which makes it the fitness oracle for population-based
    baselines that evaluate thousands of candidate X matrices.  Primaries
    must be present in ``x``.  O(M · Σ_k |R_k|) for the read part plus a
    few (M, N) products for the write part.
    """
    x = np.asarray(x, dtype=bool)
    m, n = instance.n_servers, instance.n_objects
    if x.shape != (m, n):
        raise ValueError(f"x must have shape ({m}, {n}), got {x.shape}")
    if not x[instance.primaries, np.arange(n)].all():
        raise ValueError("primary copies may not be de-allocated")
    o = instance.sizes.astype(np.float64)
    c = instance.cost

    read_cost = 0.0
    reads = instance.reads
    for k in range(n):
        reps = np.flatnonzero(x[:, k])
        d = c[:, reps[0]] if len(reps) == 1 else c[:, reps].min(axis=1)
        read_cost += float(o[k]) * float(reads[:, k] @ d)

    cp = instance.primary_cost_rows()  # (N, M)
    b = np.einsum("ik,ki->k", x, cp)
    w_total = instance.total_write_counts().astype(np.float64)
    to_primary = np.einsum("ik,ki,k->", instance.writes, cp, o)
    broadcast = float((w_total * b * o).sum())
    own_copy_refund = np.einsum("ik,ik,ki,k->", instance.writes, x, cp, o)
    return read_cost + float(to_primary + broadcast - own_copy_refund)
