"""Delta-maintained local-CoR oracle — the vectorized hot-path engine.

:class:`~repro.drp.benefit.BenefitEngine` (the *naive* engine) keeps the
full (M, N) benefit matrix fresh and recomputes every agent's dominant
report with a full-matrix argmax each round: O(M·N) per round, which is
the wall at AS-level scale (ROADMAP item 1).

This engine maintains only each agent's dominant report — the
``(best_vals, best_objs)`` columns — and repairs them after an
allocation from a *dirty set* derived from the NN broadcast the protocol
already performs.  Why that is exact (and bit-for-bit identical to the
naive argmax, not merely equivalent):

* Within a run, a cell's value ``rstat[i,k] * nn_dist[i,k] - wterm[i,k]``
  only ever *decreases*: the NN broadcast relaxes ``nn_dist`` strictly
  downward and ``rstat >= 0``.  Eligibility only ever *shrinks* (capacity
  is consumed, replicas are never removed), and an ineligible cell is
  ``-inf``.
* After allocating object ``k`` on ``winner``, the only cells that
  changed are column ``k`` for the agents in the broadcast's ``closer``
  mask (value decreased) and row ``winner`` (eligibility shrank).
* A cached row argmax can therefore only go stale for (a) agents in
  ``closer`` whose cached best object *is* ``k`` — their winning cell
  just dropped — or (b) the winner itself.  For every other agent the
  cached best cell is untouched and every changed cell in its row moved
  *down*, so the full-row argmax — including numpy's first-index
  tie-break — is unchanged.  (If a changed cell had tied the cached max
  at a smaller index, the cached argmax would already have been that
  index.)

Dirty rows are rescanned with the same elementwise expression and the
same ``argmax(axis=1)`` the naive engine uses, so IEEE-754 semantics and
tie-breaks agree exactly — ``repro audit`` and the ``engine-equivalence``
CI job verify winners, second prices and event logs are identical.

Per round the engine costs O(M) for the argmax over cached bests plus
O(|dirty|·N) for the rescans, instead of O(M·N); empirically |dirty| is
a small constant, giving the ≥10x wall-clock win on the scaling presets
(see docs/performance.md).
"""

from __future__ import annotations

import numpy as np

from repro.drp.benefit import NEG_INF, BenefitEngine
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.obs import tracer as obs

#: Engine names accepted by :func:`resolve_engine` and every ``engine=``
#: knob (AGTRam, the simulator, ``python -m repro bench``).
ENGINE_NAMES = ("auto", "naive", "vectorized")

#: Lowest numpy version the vectorized fast path is tested against (the
#: bound declared in pyproject.toml).
MIN_NUMPY_VERSION = (1, 24)

try:  # pragma: no cover - exercised via monkeypatch in tests
    _parts = np.__version__.split(".")[:2]
    _version = tuple(int(p) for p in _parts)
except (AttributeError, ValueError):  # pragma: no cover
    _version = (0, 0)

#: Whether the vectorized engine may be used.  numpy is a hard package
#: dependency, but the fast path additionally requires the declared
#: version bound; tests monkeypatch this to exercise the fallback.
HAVE_NUMPY = _version >= MIN_NUMPY_VERSION


def numpy_support_error() -> str:
    """Human-readable reason the vectorized engine is unavailable."""
    return (
        "the vectorized engine requires numpy >= "
        f"{'.'.join(str(v) for v in MIN_NUMPY_VERSION)} "
        f"(found {np.__version__!r}); install the bound declared in "
        "pyproject.toml or select engine='naive'"
    )


def resolve_engine(name: str) -> str:
    """Resolve an ``engine=`` knob to a concrete engine name.

    ``"auto"`` picks ``"vectorized"`` when the numpy bound is satisfied
    and silently falls back to ``"naive"`` otherwise; an *explicit*
    ``"vectorized"`` request without numpy support raises a
    :class:`~repro.errors.ConfigurationError` with a clear message
    instead of an ImportError traceback.
    """
    if name not in ENGINE_NAMES:
        raise ConfigurationError(
            f"unknown engine {name!r}; expected one of {ENGINE_NAMES}"
        )
    if name == "auto":
        return "vectorized" if HAVE_NUMPY else "naive"
    if name == "vectorized" and not HAVE_NUMPY:
        raise ConfigurationError(numpy_support_error())
    return name


def make_local_engine(name: str, instance: DRPInstance, state: ReplicationState):
    """Construct the local-CoR oracle for a resolved engine name."""
    resolved = resolve_engine(name)
    if resolved == "vectorized":
        return DeltaBenefitEngine(instance, state)
    return BenefitEngine(instance, state)


class DeltaBenefitEngine:
    """Dirty-set-maintained dominant reports over the local CoR oracle.

    API-compatible with :class:`~repro.drp.benefit.BenefitEngine`
    (``best_per_server`` / ``row`` / ``value_at`` / ``eligible_counts`` /
    ``refresh_object`` / ``refresh_server`` / ``notify_allocation`` /
    ``resync`` / ``matrix``), but stores only the per-agent best columns;
    rows and the full matrix are materialized on demand.
    """

    engine_name = "vectorized"

    def __init__(self, instance: DRPInstance, state: ReplicationState):
        if not HAVE_NUMPY:
            raise ConfigurationError(numpy_support_error())
        if state.instance is not instance:
            raise ValueError("state does not belong to instance")
        with obs.current().span("delta_engine/init"):
            self.instance = instance
            self.state = state
            # Shared with BenefitEngine via the instance cache — the
            # *same* array objects, so cell arithmetic is bit-identical.
            self.rstat, self.wterm = instance.local_value_terms()  # (M, N)
            m, n = instance.n_servers, instance.n_objects
            self._best_vals = np.empty(m, dtype=np.float64)
            self._best_objs = np.empty(m, dtype=np.int64)
            # Scratch rows reused by every single-row rescan so the hot
            # loop allocates nothing.
            self._valbuf = np.empty(n, dtype=np.float64)
            # Maintained ineligibility mask: ``_inel[i, k]`` is True where
            # a replica may NOT be placed.  A row only changes when that
            # server's capacity or replica set changes (i.e. when it wins
            # a round), so per-round maintenance is O(N) for one row.
            self._inel = (
                self.instance.sizes[None, :] > self.state.residual[:, None]
            ) | self.state.x
            # The tracer active at construction time is the one the run
            # executes under (the mechanism builds its engine inside the
            # capture scope); caching its enabled flag keeps contextvar
            # lookups out of the per-allocation repair path.
            self._counting = obs.current().enabled
            self._rescan_all()

    # -- maintenance --------------------------------------------------------

    def _rescan_row(self, i: int) -> None:
        """Recompute one agent's cached dominant report.

        Basic (view) indexing throughout — dirty sets are tiny (mean ~1
        row per round), so per-op numpy overhead dominates and fancy
        row-gathering would triple it.  Same elementwise expression and
        first-index argmax tie-break as the naive engine's full sweep,
        so every value is bit-identical.
        """
        state = self.state
        values = self._valbuf
        np.multiply(self.rstat[i], state.nn_dist[i], out=values)
        np.subtract(values, self.wterm[i], out=values)
        # Same value-wise result as np.where(eligible, values, NEG_INF).
        np.copyto(values, NEG_INF, where=self._inel[i])
        j = int(values.argmax())
        self._best_objs[i] = j
        self._best_vals[i] = values[j]

    def _refresh_ineligible_row(self, i: int) -> None:
        """Rebuild row i of the maintained ineligibility mask from state."""
        state = self.state
        row = self._inel[i]
        residual_i = state.instance.capacities[i] - state.used[i]
        np.greater(self.instance.sizes, residual_i, out=row)
        np.logical_or(row, state.x[i], out=row)

    def _rescan_rows(self, rows: np.ndarray) -> None:
        """Recompute the cached dominant report of the given rows.

        Same elementwise expression, masking and ``argmax(axis=1)``
        tie-break as the naive engine's full sweep, restricted to a row
        subset — the value in each cell is bit-identical.  Small sets go
        row-by-row (view indexing); large sets take one batched sweep.
        """
        n_rows = len(rows)
        if n_rows == 0:
            return
        if n_rows <= 8:
            for i in rows:
                self._rescan_row(int(i))
            return
        values = self.rstat[rows] * self.state.nn_dist[rows] - self.wterm[rows]
        masked = np.where(self._inel[rows], NEG_INF, values)
        objs = masked.argmax(axis=1)
        self._best_objs[rows] = objs
        self._best_vals[rows] = masked[np.arange(n_rows), objs]

    def _rescan_all(self) -> None:
        """Full-sweep rebuild of every cached best — no row gathering.

        Identical arithmetic and tie-break to :meth:`_rescan_rows` on
        ``arange(M)``, minus the three full-matrix fancy-index copies.
        """
        values = self.rstat * self.state.nn_dist - self.wterm
        np.copyto(values, NEG_INF, where=self._inel)
        objs = values.argmax(axis=1)
        self._best_objs[:] = objs
        self._best_vals[:] = values[np.arange(values.shape[0]), objs]

    def notify_allocation(self, server: int, k: int) -> None:
        """Repair cached bests after ``state.add_replica(server, k)``.

        Dirty set: agents whose NN entry for ``k`` changed in the
        broadcast *and* whose cached best is ``k``, plus the winner
        (whose eligibility row shrank).  See the module docstring for
        the exactness argument.
        """
        dirty = self.state.last_nn_changed & (self._best_objs == k)
        dirty[server] = True
        rows = dirty.nonzero()[0]
        self._refresh_ineligible_row(server)
        if len(rows) <= 8:
            for i in rows:
                self._rescan_row(int(i))
        else:
            self._rescan_rows(rows)
        if self._counting:
            tracer = obs.current()
            tracer.count("delta_engine/incremental_updates")
            tracer.count("delta_engine/dirty_rows", len(rows))

    def refresh_object(self, k: int) -> None:
        """Object k's column changed (NN relaxations, batch commits).

        Rescanning every agent whose cached best is ``k`` is exact: any
        other agent's changed cells in column ``k`` only moved down, so
        its cached argmax is untouched (module docstring argument).
        """
        self._rescan_rows(np.nonzero(self._best_objs == k)[0])

    def refresh_server(self, i: int) -> None:
        """Row i's eligibility changed (capacity consumed)."""
        self._refresh_ineligible_row(i)
        self._rescan_row(i)

    def resync(self) -> None:
        """Full rebuild from the live state (lazy/stale-view protocols)."""
        np.greater(
            self.instance.sizes[None, :],
            self.state.residual[:, None],
            out=self._inel,
        )
        np.logical_or(self._inel, self.state.x, out=self._inel)
        self._rescan_all()
        tracer = obs.current()
        if tracer.enabled:
            self._counting = True
            tracer.count("delta_engine/resyncs")

    # -- views --------------------------------------------------------------

    def best_per_server(self) -> tuple[np.ndarray, np.ndarray]:
        """Each agent's dominant report: (values, objects), both (M,).

        Returns copies — callers may hold them across allocations.
        """
        return self._best_vals.copy(), self._best_objs.copy()

    def best_view(self) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy view of the cached bests for the tight round loop.

        Mutated in place by :meth:`notify_allocation`; callers must not
        hold references across allocations.
        """
        return self._best_vals, self._best_objs

    def row(self, server: int) -> np.ndarray:
        """(N,) masked benefit row of one agent, materialized on demand."""
        values = (
            self.rstat[server] * self.state.nn_dist[server] - self.wterm[server]
        )
        eligible = (
            self.instance.sizes <= self.state.residual[server]
        ) & ~self.state.x[server]
        return np.where(eligible, values, NEG_INF)

    def value_at(self, server: int, k: int) -> float:
        """One masked benefit cell (``-inf`` when ineligible)."""
        if self.state.x[server, k] or (
            self.instance.sizes[k] > self.state.residual[server]
        ):
            return float(NEG_INF)
        return float(
            self.rstat[server, k] * self.state.nn_dist[server, k]
            - self.wterm[server, k]
        )

    def eligible_counts(self, servers: np.ndarray) -> np.ndarray:
        """Per-agent count of eligible objects (|L_i|) for the given rows."""
        eligible = (
            self.instance.sizes[None, :] <= self.state.residual[servers, None]
        ) & ~self.state.x[servers]
        return eligible.sum(axis=1)

    @property
    def matrix(self) -> np.ndarray:
        """Full (M, N) masked benefit matrix, materialized on demand.

        O(M·N) — for debugging and API compatibility only; the hot path
        never calls it.
        """
        values = self.rstat * self.state.nn_dist - self.wterm
        eligible = (
            self.instance.sizes[None, :] <= self.state.residual[:, None]
        ) & ~self.state.x
        return np.where(eligible, values, NEG_INF)

    def local_benefit(self, server: int, k: int) -> float:
        """Eq. 5 valuation of one cell, ignoring eligibility masking."""
        return float(
            self.rstat[server, k] * self.state.nn_dist[server, k]
            - self.wterm[server, k]
        )
