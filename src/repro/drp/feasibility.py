"""Structural invariant checks for instances and replication states.

Used by tests and by long-running experiments as cheap sanity guards; a
violated invariant raises :class:`repro.errors.InfeasibleInstanceError`
with a message naming the first offending server/object.
"""

from __future__ import annotations

import numpy as np

from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import InfeasibleInstanceError


def check_instance(instance: DRPInstance) -> None:
    """Re-validate the instance's structural constraints.

    :class:`DRPInstance` validates at construction; this re-checks (the
    arrays are mutable numpy objects, so corruption is possible) and is
    what property-based tests call after adversarial mutations.
    """
    DRPInstance(
        cost=instance.cost,
        reads=instance.reads,
        writes=instance.writes,
        sizes=instance.sizes,
        capacities=instance.capacities,
        primaries=instance.primaries,
        name=instance.name,
    )


def check_state(state: ReplicationState) -> None:
    """Verify all replication-scheme invariants.

    1. every primary copy is present (the primary-copies policy),
    2. storage use matches X and never exceeds capacity,
    3. NN distances equal the true minimum over replica columns,
    4. NN servers actually hold the replica and realize the distance.
    """
    inst = state.instance
    n = inst.n_objects
    cols = np.arange(n)

    if not state.x[inst.primaries, cols].all():
        k = int(np.nonzero(~state.x[inst.primaries, cols])[0][0])
        raise InfeasibleInstanceError(f"primary copy of object {k} is missing")

    used = state.x @ inst.sizes
    if not np.array_equal(used, state.used):
        raise InfeasibleInstanceError("state.used is inconsistent with X")
    over = np.nonzero(used > inst.capacities)[0]
    if len(over):
        i = int(over[0])
        raise InfeasibleInstanceError(
            f"server {i} stores {int(used[i])} > capacity {int(inst.capacities[i])}"
        )

    for k in range(n):
        reps = np.nonzero(state.x[:, k])[0]
        true_dist = inst.cost[:, reps].min(axis=1)
        if not np.allclose(state.nn_dist[:, k], true_dist):
            raise InfeasibleInstanceError(f"NN distances stale for object {k}")
        nn = state.nn_server[:, k]
        if not state.x[nn, k].all():
            raise InfeasibleInstanceError(
                f"NN table for object {k} points at a non-replicator"
            )
        realized = inst.cost[np.arange(inst.n_servers), nn]
        if not np.allclose(realized, true_dist):
            raise InfeasibleInstanceError(
                f"NN server does not realize the NN distance for object {k}"
            )
