"""Incrementally-maintained *global* benefit matrix.

Centralized placement methods (Greedy, Aε-Star, and the "global oracle"
AGT-RAM ablation) rank candidate allocations by exact ΔOTC.  Computing
the full (M, N) matrix costs O(M²N); afterwards an allocation of object
k on server i only invalidates

* column k (its NN distances changed) — recomputed in O(M²), and
* row i's eligibility (its residual capacity shrank) — re-masked in O(N).

This mirrors :class:`repro.drp.benefit.BenefitEngine` so algorithms can
swap oracles; the asymptotic gap between the two engines *is* the
paper's claimed complexity advantage of the semi-distributed design.
"""

from __future__ import annotations

import numpy as np

from repro.drp.benefit import NEG_INF, global_benefit_column
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.obs import tracer as obs


class GlobalBenefitEngine:
    """Exact ΔOTC for every (server, object) candidate, kept fresh."""

    engine_name = "global"

    def __init__(self, instance: DRPInstance, state: ReplicationState):
        if state.instance is not instance:
            raise ValueError("state does not belong to instance")
        with obs.current().span("global_engine/init"):
            self.instance = instance
            self.state = state
            m, n = instance.n_servers, instance.n_objects
            self._benefit = np.empty((m, n), dtype=np.float64)
            for k in range(n):
                self._benefit[:, k] = global_benefit_column(instance, state, k)

    @property
    def matrix(self) -> np.ndarray:
        """(M, N) exact ΔOTC; ineligible cells are ``-inf``.  Live view."""
        return self._benefit

    def refresh_object(self, k: int) -> None:
        self._benefit[:, k] = global_benefit_column(self.instance, self.state, k)

    def refresh_server(self, i: int) -> None:
        """Capacity of server i changed: mask newly-infeasible cells.

        Values of still-feasible cells in row i are unchanged (they depend
        only on NN distances and write totals), so masking suffices.
        """
        infeasible = self.instance.sizes > self.state.residual[i]
        self._benefit[i, infeasible] = NEG_INF

    def notify_allocation(self, server: int, k: int) -> None:
        self.refresh_object(k)
        self.refresh_server(server)
        tracer = obs.current()
        if tracer.enabled:
            tracer.count("global_engine/incremental_updates")

    def best_cell(self) -> tuple[int, int, float]:
        """Global argmax: (server, object, benefit)."""
        flat = int(np.argmax(self._benefit))
        i, k = divmod(flat, self.instance.n_objects)
        return i, k, float(self._benefit[i, k])

    def best_per_server(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-agent dominant report under the global oracle."""
        objs = self._benefit.argmax(axis=1)
        vals = self._benefit[np.arange(self._benefit.shape[0]), objs]
        return vals, objs

    def row(self, server: int) -> np.ndarray:
        """(N,) masked benefit row of one agent.  Live view — do not mutate."""
        return self._benefit[server]

    def value_at(self, server: int, k: int) -> float:
        """One masked benefit cell (``-inf`` when ineligible)."""
        return float(self._benefit[server, k])

    def eligible_counts(self, servers: np.ndarray) -> np.ndarray:
        """Per-agent count of eligible objects for the given rows."""
        return np.isfinite(self._benefit[servers]).sum(axis=1)


class RegionalBenefitEngine:
    """Benefit oracle for cooperative *regional* games (paper §7).

    Between the private local CoR (each agent sees only its own reads)
    and the global ΔOTC oracle sits the cooperative-region model: agents
    within a region pool their read/write books, so a candidate replica
    at server i is valued by the read rerouting of *all of i's region*,
    while cross-region effects stay invisible:

    ``b_ik = o_k Σ_{x in region(i)} r_xk max(0, d_k(x) − c(x,i))
             − o_k c(P_k, i)(W_k − w_ik)``

    Still a lower bound on the true ΔOTC (it drops only non-negative
    cross-region read terms), so allocations keep strictly reducing OTC.
    Maintenance mirrors :class:`GlobalBenefitEngine`: column refresh on
    allocation, row re-mask on capacity change.
    """

    def __init__(
        self,
        instance: DRPInstance,
        state: ReplicationState,
        regions: np.ndarray,
    ):
        if state.instance is not instance:
            raise ValueError("state does not belong to instance")
        regions = np.asarray(regions, dtype=np.int64)
        if regions.shape != (instance.n_servers,):
            raise ValueError(
                f"regions must have shape ({instance.n_servers},), "
                f"got {regions.shape}"
            )
        self.instance = instance
        self.state = state
        self.regions = regions
        # same_region[x, i] — does reader x share candidate i's region?
        self._same = regions[:, None] == regions[None, :]
        o = instance.sizes.astype(np.float64)
        cp = instance.primary_cost_rows()
        w_total = instance.total_write_counts().astype(np.float64)
        self._wterm = (cp.T * o) * (w_total - instance.writes)
        m, n = instance.n_servers, instance.n_objects
        self._benefit = np.empty((m, n), dtype=np.float64)
        for k in range(n):
            self._benefit[:, k] = self._column(k)

    def _column(self, k: int) -> np.ndarray:
        inst = self.instance
        d_k = self.state.nn_dist[:, k]
        saved = np.maximum(0.0, d_k[:, None] - inst.cost)  # (reader x, cand i)
        saved *= self._same
        o_k = float(inst.sizes[k])
        read_gain = o_k * (inst.reads[:, k] @ saved)
        g = read_gain - self._wterm[:, k]
        eligible = (~self.state.x[:, k]) & (inst.sizes[k] <= self.state.residual)
        return np.where(eligible, g, NEG_INF)

    @property
    def matrix(self) -> np.ndarray:
        """(M, N) regional benefits; ineligible cells are ``-inf``."""
        return self._benefit

    def refresh_object(self, k: int) -> None:
        self._benefit[:, k] = self._column(k)

    def refresh_server(self, i: int) -> None:
        infeasible = self.instance.sizes > self.state.residual[i]
        self._benefit[i, infeasible] = NEG_INF

    def notify_allocation(self, server: int, k: int) -> None:
        self.refresh_object(k)
        self.refresh_server(server)

    def best_per_server(self) -> tuple[np.ndarray, np.ndarray]:
        objs = self._benefit.argmax(axis=1)
        vals = self._benefit[np.arange(self._benefit.shape[0]), objs]
        return vals, objs
