"""The immutable DRP problem instance.

Section 2 of the paper: M servers with storage capacities s_i connected by
a network with communication costs c(i, j); N objects with sizes o_k, per
server read counts r_ik and write counts w_ik; each object has exactly one
primary copy on server P_k that can never be de-allocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.topology import Topology, cost_matrix
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_finite_array, check_fraction
from repro.workload.synthetic import SyntheticWorkload


@dataclass(frozen=True)
class DRPInstance:
    """One Data Replication Problem instance.

    Attributes
    ----------
    cost:
        (M, M) symmetric non-negative matrix with zero diagonal; entry
        (i, j) is the cost of moving one data unit between servers i, j.
    reads, writes:
        (M, N) non-negative matrices; r_ik / w_ik of the paper.  Stored
        as float64: fractional write weights express the paper's
        partial-update policy ("we can move only the updated parts"),
        see :func:`repro.drp.transforms.delta_update_instance`.
    sizes:
        (N,) positive integer object sizes o_k in data units.
    capacities:
        (M,) non-negative integer storage capacities s_i.
    primaries:
        (N,) server index P_k holding object k's irremovable primary copy.
    name:
        Label used in reports.
    """

    cost: np.ndarray
    reads: np.ndarray
    writes: np.ndarray
    sizes: np.ndarray
    capacities: np.ndarray
    primaries: np.ndarray
    name: str = "drp"

    def __post_init__(self) -> None:
        object.__setattr__(self, "cost", np.asarray(self.cost, dtype=np.float64))
        object.__setattr__(self, "reads", np.asarray(self.reads, dtype=np.float64))
        object.__setattr__(self, "writes", np.asarray(self.writes, dtype=np.float64))
        object.__setattr__(self, "sizes", np.asarray(self.sizes, dtype=np.int64))
        object.__setattr__(
            self, "capacities", np.asarray(self.capacities, dtype=np.int64)
        )
        object.__setattr__(self, "primaries", np.asarray(self.primaries, dtype=np.int64))

        m = self.cost.shape[0]
        if self.cost.shape != (m, m):
            raise ConfigurationError(f"cost must be square, got {self.cost.shape}")
        n = self.sizes.shape[0]
        if self.reads.shape != (m, n) or self.writes.shape != (m, n):
            raise ConfigurationError(
                f"reads/writes must have shape ({m}, {n}); got "
                f"{self.reads.shape} and {self.writes.shape}"
            )
        if self.capacities.shape != (m,):
            raise ConfigurationError(f"capacities must have shape ({m},)")
        if self.primaries.shape != (n,):
            raise ConfigurationError(f"primaries must have shape ({n},)")
        check_finite_array(self.cost, "link cost matrix", nonnegative=True)
        if not np.allclose(self.cost, self.cost.T):
            raise ConfigurationError("cost matrix must be symmetric")
        if np.any(np.diag(self.cost) != 0):
            raise ConfigurationError("cost diagonal must be zero")
        check_finite_array(
            self.reads, "read frequencies (reads)", nonnegative=True
        )
        check_finite_array(
            self.writes, "write frequencies (writes)", nonnegative=True
        )
        if (self.sizes <= 0).any():
            k = int(np.nonzero(self.sizes <= 0)[0][0])
            raise ConfigurationError(
                f"object sizes must be positive, but object {k} has size "
                f"{int(self.sizes[k])}"
            )
        if (self.capacities < 0).any():
            i = int(np.nonzero(self.capacities < 0)[0][0])
            raise ConfigurationError(
                f"capacities must be non-negative, but server {i} has "
                f"capacity {int(self.capacities[i])}"
            )
        if n and (self.primaries.min() < 0 or self.primaries.max() >= m):
            raise ConfigurationError("primary server index out of range")

        # An object bigger than every server is unstorable anywhere —
        # catch it by name before the aggregate primary-load check turns
        # it into a less specific per-server message.
        if n and m:
            cap_max = int(self.capacities.max())
            oversized = np.nonzero(self.sizes > cap_max)[0]
            if len(oversized):
                k = int(oversized[0])
                raise InfeasibleInstanceError(
                    f"object {k} (size {int(self.sizes[k])}) exceeds every "
                    f"server capacity (max {cap_max}); no server can store "
                    f"it, not even its primary"
                )

        # Primary copies must themselves fit: Σ_{k: P_k = i} o_k <= s_i.
        primary_load = np.zeros(m, dtype=np.int64)
        np.add.at(primary_load, self.primaries, self.sizes)
        overloaded = np.nonzero(primary_load > self.capacities)[0]
        if len(overloaded):
            i = int(overloaded[0])
            raise InfeasibleInstanceError(
                f"server {i} cannot store its primary copies "
                f"(load {int(primary_load[i])} > capacity {int(self.capacities[i])})"
            )
        object.__setattr__(self, "_primary_load", primary_load)
        # Cache the derived arrays the benefit oracles hit in hot loops.
        object.__setattr__(self, "_primary_cost_rows", self.cost[self.primaries, :])
        object.__setattr__(self, "_w_total", self.writes.sum(axis=0))

    # -- derived views ------------------------------------------------------

    @property
    def n_servers(self) -> int:
        return self.cost.shape[0]

    @property
    def n_objects(self) -> int:
        return self.sizes.shape[0]

    @property
    def primary_load(self) -> np.ndarray:
        """(M,) total size of primary copies each server must hold."""
        return self._primary_load

    def primary_cost_rows(self) -> np.ndarray:
        """(N, M) matrix whose row k is ``c(P_k, ·)`` — used throughout the
        cost model to price primary↔server transfers.  Cached; treat as
        read-only."""
        return self._primary_cost_rows

    def primary_cost_cols(self) -> np.ndarray:
        """(M, N) C-contiguous matrix ``c(i, P_k)`` — column layout of
        :meth:`primary_cost_rows`.

        This is the initial NN-distance table (with only primaries, every
        server's nearest replica of k is P_k), so
        :class:`~repro.drp.state.ReplicationState` construction becomes a
        plain memcpy instead of an O(M·N) column gather per state.
        Lazily computed once per instance; treat as read-only.
        """
        cached = getattr(self, "_primary_cost_cols", None)
        if cached is None:
            cached = np.ascontiguousarray(self.cost[:, self.primaries])
            object.__setattr__(self, "_primary_cost_cols", cached)
        return cached

    def _primary_cost_rows_t(self) -> np.ndarray:
        """(M, N) C-contiguous transpose of :meth:`primary_cost_rows`.

        ``[i, k] = c(P_k, i)`` — kept distinct from
        :meth:`primary_cost_cols` (``c(i, P_k)``) because symmetry is only
        validated to tolerance, and the cost model's write legs price the
        primary→server direction specifically.
        """
        cached = getattr(self, "_primary_cost_rows_T", None)
        if cached is None:
            cached = np.ascontiguousarray(self._primary_cost_rows.T)
            object.__setattr__(self, "_primary_cost_rows_T", cached)
        return cached

    def local_value_terms(self) -> tuple[np.ndarray, np.ndarray]:
        """Static struct-of-arrays terms of the Eq. 5 local CoR valuation.

        Returns ``(rstat, wterm)``, both float64 (M, N):

        * ``rstat[i, k] = r_ik * o_k`` — read-rate scale,
        * ``wterm[i, k] = o_k * c(P_k, i) * (W_k - w_ik)`` — update-keeping
          cost.

        Both depend only on the immutable instance, so they are computed
        once and shared by every benefit engine (naive and delta) and
        every run — the arrays are identical objects, which is also what
        makes the two engines' arithmetic bit-for-bit identical.  Treat
        as read-only.
        """
        cached = getattr(self, "_local_value_terms", None)
        if cached is None:
            o = self.sizes.astype(np.float64)
            w_total = self._w_total.astype(np.float64)
            wterm = (self._primary_cost_rows.T * o) * (w_total - self.writes)
            rstat = self.reads.astype(np.float64) * o
            cached = (np.ascontiguousarray(rstat), np.ascontiguousarray(wterm))
            object.__setattr__(self, "_local_value_terms", cached)
        return cached

    def primary_ship_total(self) -> float:
        """Scheme-independent write cost ``Σ_ik w_ik o_k c(i, P_k)``.

        Every update is first shipped to the object's primary (Eq. 2);
        that leg does not depend on the replication scheme, so it is
        computed once and cached.
        """
        cached = getattr(self, "_primary_ship_total", None)
        if cached is None:
            o = self.sizes.astype(np.float64)
            cp_t = self._primary_cost_rows_t()
            cached = float(np.einsum("ik,ik,k->", self.writes, cp_t, o))
            object.__setattr__(self, "_primary_ship_total", cached)
        return cached

    def cost_col_rows(self) -> np.ndarray:
        """(M, M) C-contiguous transpose of :attr:`cost`: row j is the
        cost *column* ``c(·, j)`` — every server's distance to a replica
        hosted on j.  Kept distinct from :attr:`cost` itself because
        symmetry is only validated to tolerance.  The columnar flush
        path reconstructs committed NN columns by min-chaining these
        rows, so its per-commit settlement never walks a strided column.
        Cached; treat as read-only.
        """
        cached = getattr(self, "_cost_col_rows", None)
        if cached is None:
            cached = np.ascontiguousarray(self.cost.T)
            object.__setattr__(self, "_cost_col_rows", cached)
        return cached

    def read_scale_rows(self) -> np.ndarray:
        """(N, M) C-contiguous transpose of ``rstat``
        (:meth:`local_value_terms`): row k is object k's read-rate scale
        across servers.  The incremental OTC tracker dots one object's
        column per commit — contiguous in this layout, a cache miss per
        element in the (M, N) one.  Cached; treat as read-only.
        """
        cached = getattr(self, "_read_scale_rows", None)
        if cached is None:
            rstat, _ = self.local_value_terms()
            cached = np.ascontiguousarray(rstat.T)
            object.__setattr__(self, "_read_scale_rows", cached)
        return cached

    def primary_otc_terms(self) -> tuple[float, np.ndarray]:
        """Seed values for the incremental OTC tracker
        (:meth:`~repro.drp.state.ReplicationState.begin_otc_tracking`).

        Returns ``(otc0, read_k)`` for the primaries-only scheme:
        ``read_k[k] = Σ_i rstat_ik c(i, P_k)`` — the per-object read
        cost the tracker delta-maintains — and ``otc0`` the scheme's
        total OTC.  Both depend only on the immutable instance, so a
        fresh state starts tracking with an O(N) memcpy instead of an
        O(M·N) reduction.  Cached; treat the array as read-only.
        """
        cached = getattr(self, "_primary_otc_terms", None)
        if cached is None:
            rstat, wterm = self.local_value_terms()
            read_k = np.einsum("ik,ik->k", rstat, self.primary_cost_cols())
            kept0 = float(
                wterm[self.primaries, np.arange(self.n_objects)].sum()
            )
            otc0 = float(read_k.sum()) + self.primary_ship_total() + kept0
            cached = (otc0, read_k)
            object.__setattr__(self, "_primary_otc_terms", cached)
        return cached

    def total_write_counts(self) -> np.ndarray:
        """(N,) total writes per object, the paper's Σ_x w_xk.  Cached;
        treat as read-only."""
        return self._w_total

    def total_requests(self) -> int:
        return int(self.reads.sum() + self.writes.sum())

    def replica_headroom(self) -> np.ndarray:
        """(M,) capacity left after storing primaries."""
        return self.capacities - self._primary_load

    def __repr__(self) -> str:
        return (
            f"DRPInstance(name={self.name!r}, M={self.n_servers}, "
            f"N={self.n_objects}, requests={self.total_requests()})"
        )


def build_instance(
    topology: Topology,
    workload: SyntheticWorkload,
    *,
    capacity_fraction: float = 0.25,
    capacity_jitter: float = 0.5,
    primaries: Optional[np.ndarray] = None,
    seed: SeedLike = None,
    name: str = "drp",
) -> DRPInstance:
    """Assemble a :class:`DRPInstance` from a topology and a workload.

    Mirrors the paper's setup:

    * the cost matrix is the shortest-path closure of the topology,
    * "the primary replicas' original server was mimicked by choosing
      random locations" — ``primaries`` default to uniform random servers,
    * "the capacities of the servers C% were generated randomly with range
      from Total Primary Object Sizes / 2 to 1.5 x Total Primary Object
      Sizes" — each server's *replica headroom* is
      ``capacity_fraction x Σ o_k`` jittered by ``Uniform(1 ± capacity_jitter)``,
      on top of the space its own primaries need (so every instance is
      feasible by construction and ``capacity_fraction`` is exactly the
      paper's C% knob).
    """
    check_fraction(capacity_jitter, "capacity_jitter")
    if capacity_fraction < 0:
        raise ConfigurationError("capacity_fraction must be >= 0")
    if topology.n_nodes != workload.n_servers:
        raise ConfigurationError(
            f"topology has {topology.n_nodes} nodes but workload has "
            f"{workload.n_servers} servers"
        )
    rng = as_generator(seed)
    c = cost_matrix(topology)
    m, n = workload.n_servers, workload.n_objects

    if primaries is None:
        primaries = rng.integers(0, m, size=n)
    primaries = np.asarray(primaries, dtype=np.int64)

    primary_load = np.zeros(m, dtype=np.int64)
    np.add.at(primary_load, primaries, workload.sizes)
    total_size = int(workload.sizes.sum())
    headroom = np.round(
        capacity_fraction
        * total_size
        * rng.uniform(1.0 - capacity_jitter, 1.0 + capacity_jitter, size=m)
    ).astype(np.int64)
    capacities = primary_load + np.maximum(0, headroom)

    return DRPInstance(
        cost=c,
        reads=workload.reads,
        writes=workload.writes,
        sizes=workload.sizes,
        capacities=capacities,
        primaries=primaries,
        name=name,
    )
