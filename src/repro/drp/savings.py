"""The paper's performance metric: OTC savings percentage.

"The solution quality was measured in terms of network communication cost
(OTC percentage) that was saved under the replica scheme found by the
replica allocation methods, compared to the initial one, i.e., when only
primary copies exist."
"""

from __future__ import annotations

import numpy as np

from repro.drp.cost import primary_only_otc, total_otc
from repro.drp.state import ReplicationState


def otc_savings_percent(state: ReplicationState) -> float:
    """Percentage of the primaries-only OTC saved by ``state``.

    Returns 0.0 when the baseline cost is zero (degenerate empty
    workload).  A well-formed allocation never yields negative savings
    because allocators only place replicas with positive benefit, but the
    metric itself is defined for any scheme and may go negative for
    adversarial X matrices (e.g. replicating write-hot objects
    everywhere).
    """
    baseline = primary_only_otc(state.instance)
    if baseline == 0.0:
        return 0.0
    return 100.0 * (baseline - total_otc(state)) / baseline


def savings_percent_curve(baseline_otc: float, otc_values) -> np.ndarray:
    """Vectorized savings-% over a whole per-round OTC series.

    One batched sweep over the round series (e.g.
    ``RoundSeries.otc``) instead of a Python loop per round; returns an
    all-zero curve for a zero baseline, matching
    :func:`otc_savings_percent`.
    """
    otc = np.asarray(otc_values, dtype=np.float64)
    if baseline_otc == 0.0:
        return np.zeros_like(otc)
    return 100.0 * (baseline_otc - otc) / baseline_otc
