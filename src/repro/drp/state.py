"""Mutable replication scheme: the X matrix plus the NN tables.

The paper's servers each store, for every object, the primary server P_k
and the nearest-neighbor server NN_ik holding a replica (Section 2).  The
mechanism's NN-update broadcast (Figure 2, line 20) is the
:meth:`ReplicationState.add_replica` distance relaxation here.
"""

from __future__ import annotations

import numpy as np

from repro.drp.instance import DRPInstance
from repro.errors import CapacityError, ConfigurationError


class ReplicationState:
    """Replication scheme over a :class:`~repro.drp.instance.DRPInstance`.

    Attributes
    ----------
    x:
        (M, N) boolean replication matrix; ``x[P_k, k]`` is always True.
    nn_dist:
        (M, N) float; ``nn_dist[i, k] = min_{j in R_k} c(i, j)`` — zero for
        replicators.
    nn_server:
        (M, N) int; the argmin server realizing ``nn_dist`` (ties break to
        the earliest replica added, matching the incremental protocol).
    used:
        (M,) storage units consumed on each server.
    """

    #: Class-level default: incremental OTC tracking is opt-in
    #: (:meth:`begin_otc_tracking`), so untracked states pay nothing.
    _otc_track = False

    def __init__(self, instance: DRPInstance):
        self.instance = instance
        m, n = instance.n_servers, instance.n_objects
        self.x = np.zeros((m, n), dtype=bool)
        self.x[instance.primaries, np.arange(n)] = True
        # With only primaries, NN of every server for object k is P_k.
        # The instance caches the column gather, so this is a memcpy.
        self.nn_dist = instance.primary_cost_cols().copy()
        self.nn_server = np.broadcast_to(instance.primaries, (m, n)).copy()
        self.used = instance.primary_load.copy()
        self.n_replicas_added = 0
        # (M,) bool mask of the agents whose NN entry changed in the most
        # recent :meth:`add_replica` broadcast.  Delta-maintained benefit
        # engines consume it as their dirty set; all-False before the
        # first allocation and after bulk NN rebuilds.  The buffer is
        # reused by every broadcast — read it before the next mutation.
        self.last_nn_changed = np.zeros(m, dtype=bool)

    # -- factories ----------------------------------------------------------

    @classmethod
    def primaries_only(cls, instance: DRPInstance) -> "ReplicationState":
        """The paper's initial scheme: only the primary copies exist."""
        return cls(instance)

    @classmethod
    def from_matrix(cls, instance: DRPInstance, x: np.ndarray) -> "ReplicationState":
        """Build a state from an arbitrary boolean matrix.

        The matrix is validated (primaries present, shapes match) and the
        NN tables are recomputed from scratch — used by population-based
        baselines (GRA) that manipulate whole schemes.
        """
        x = np.asarray(x, dtype=bool)
        m, n = instance.n_servers, instance.n_objects
        if x.shape != (m, n):
            raise ConfigurationError(f"x must have shape ({m}, {n}), got {x.shape}")
        if not x[instance.primaries, np.arange(n)].all():
            raise ConfigurationError("primary copies may not be de-allocated")
        state = cls(instance)
        state.x = x.copy()
        state.used = x @ instance.sizes
        state.n_replicas_added = int(x.sum() - n)
        state.recompute_nn()
        return state

    def copy(self) -> "ReplicationState":
        dup = ReplicationState.__new__(ReplicationState)
        dup.instance = self.instance
        dup.x = self.x.copy()
        dup.nn_dist = self.nn_dist.copy()
        dup.nn_server = self.nn_server.copy()
        dup.used = self.used.copy()
        dup.n_replicas_added = self.n_replicas_added
        dup.last_nn_changed = self.last_nn_changed.copy()
        if self._otc_track:
            dup._otc_track = True
            dup._otc_value = self._otc_value
            dup._otc_read_k = self._otc_read_k.copy()
            dup._otc_rstat_rows = self._otc_rstat_rows
            dup._otc_wterm = self._otc_wterm
            dup._otc_scratch = np.empty_like(self._otc_scratch)
        return dup

    # -- queries ------------------------------------------------------------

    @property
    def residual(self) -> np.ndarray:
        """(M,) storage units still free on each server."""
        return self.instance.capacities - self.used

    def replica_set(self, k: int) -> np.ndarray:
        """Sorted server indices of R_k."""
        return np.nonzero(self.x[:, k])[0]

    def replica_counts(self) -> np.ndarray:
        """(N,) number of copies of each object, primaries included."""
        return self.x.sum(axis=0)

    def total_replicas(self) -> int:
        """Total copies beyond the primaries."""
        return int(self.x.sum() - self.instance.n_objects)

    def is_replica(self, server: int, k: int) -> bool:
        return bool(self.x[server, k])

    def can_host(self, server: int, k: int) -> bool:
        """True iff server may receive a new replica of k: not already a
        replicator and the object fits the residual capacity."""
        return (not self.x[server, k]) and (
            self.instance.sizes[k] <= self.residual[server]
        )

    # -- incremental OTC tracking -------------------------------------------

    def begin_otc_tracking(self) -> float:
        """Start delta-maintaining the scheme's total OTC across commits.

        After this call :meth:`tracked_otc` returns the current OTC in
        O(1), and each :meth:`add_replica` keeps it fresh with one O(M)
        dot product on top of the broadcast it already performs — the
        per-round recompute the event stream used to pay
        (:func:`~repro.drp.cost.total_otc`, O(M·N)) disappears from the
        hot path.  The commit delta is exact: adding a replica of ``k``
        on ``server`` changes only the update-keeping term
        ``wterm[server, k]`` and object ``k``'s read column, whose new
        total is ``Σ_i rstat_ik · nn_dist_ik`` over the relaxed column.

        Tracked values accumulate float rounding commit by commit, so
        headline results should still report the closed-form
        :func:`~repro.drp.cost.total_otc`; the tracker is for per-round
        telemetry.  Returns the starting OTC.
        """
        inst = self.instance
        rstat, wterm = inst.local_value_terms()
        if self.n_replicas_added == 0:
            otc0, read_k = inst.primary_otc_terms()
            self._otc_value = otc0
            self._otc_read_k = read_k.copy()
        else:
            read_k = np.einsum("ik,ik->k", rstat, self.nn_dist)
            kept = float(np.einsum("ik,ik->", self.x, wterm))
            self._otc_read_k = read_k
            self._otc_value = (
                float(read_k.sum()) + inst.primary_ship_total() + kept
            )
        # Transposed copy: the per-commit delta dots one object's
        # read-scale row — contiguous in (N, M) layout, one cache/TLB
        # miss per element in the (M, N) one.
        self._otc_rstat_rows = inst.read_scale_rows()
        self._otc_wterm = wterm
        # Contiguous scratch for the masked read-cost delta each commit
        # computes inside :meth:`add_replica`.
        self._otc_scratch = np.empty(inst.n_servers)
        self._otc_track = True
        return self._otc_value

    def end_otc_tracking(self) -> None:
        """Stop tracking; subsequent commits skip the maintenance dot."""
        self._otc_track = False

    def tracked_otc(self) -> float:
        """The delta-maintained total OTC (requires active tracking)."""
        if not self._otc_track:
            raise ConfigurationError(
                "OTC tracking is not active; call begin_otc_tracking() first"
            )
        return self._otc_value

    # -- mutation -----------------------------------------------------------

    def add_replica(self, server: int, k: int) -> None:
        """Allocate a replica of object k on ``server``.

        Performs the paper's NN-table broadcast: every server relaxes its
        nearest-replica distance against the new replicator.  O(M).
        """
        if self.x[server, k]:
            raise ConfigurationError(
                f"server {server} already replicates object {k}"
            )
        size = int(self.instance.sizes[k])
        residual_server = int(self.instance.capacities[server] - self.used[server])
        if size > residual_server:
            raise CapacityError(
                f"object {k} (size {size}) exceeds residual "
                f"{residual_server} of server {server}"
            )
        self.x[server, k] = True
        self.used[server] += size
        self.n_replicas_added += 1
        d_new = self.instance.cost[:, server]
        # Column views + copyto-with-where instead of boolean fancy
        # indexing: same relaxation, no index-array materialization.
        dist_col = self.nn_dist[:, k]
        closer = np.less(d_new, dist_col, out=self.last_nn_changed)
        np.copyto(dist_col, d_new, where=closer)
        np.copyto(self.nn_server[:, k], server, where=closer)
        if self._otc_track:
            # dist_col now holds the relaxed column, so one dot refreshes
            # object k's read cost; the write side moves by exactly the
            # new replicator's update-keeping term.  The column is staged
            # contiguous first: einsum's reduction order depends on
            # operand strides, and over contiguous rows it matches the
            # batched ``einsum("rj,rj->r", ...)`` the columnar flush path
            # computes over its reconstructed copies of the same columns
            # — which is what keeps the two emission paths' OTC floats
            # bit-identical.
            scratch = self._otc_scratch
            np.copyto(scratch, dist_col)
            new_rk = float(np.einsum("j,j->", self._otc_rstat_rows[k], scratch))
            self._otc_value += float(self._otc_wterm[server, k]) + (
                new_rk - float(self._otc_read_k[k])
            )
            self._otc_read_k[k] = new_rk

    def recompute_nn(self) -> None:
        """Rebuild NN tables from X (vectorized per object).

        Cost O(Σ_k M·|R_k|); used after bulk edits to X.
        """
        inst = self.instance
        # A bulk rebuild invalidates any notion of "the last broadcast" —
        # and the incremental OTC tracker, which only follows
        # add_replica deltas (re-arm with begin_otc_tracking if needed).
        self._otc_track = False
        self.last_nn_changed = np.zeros(inst.n_servers, dtype=bool)
        for k in range(inst.n_objects):
            reps = np.nonzero(self.x[:, k])[0]
            block = inst.cost[:, reps]
            arg = block.argmin(axis=1)
            self.nn_dist[:, k] = block[np.arange(inst.n_servers), arg]
            self.nn_server[:, k] = reps[arg]

    def __repr__(self) -> str:
        return (
            f"ReplicationState(M={self.instance.n_servers}, "
            f"N={self.instance.n_objects}, extra_replicas={self.total_replicas()})"
        )
