"""Instance transformations — cost-model policies the paper sketches.

Section 2's footnote: "we made the indirect assumption that in order to
perform a write we need to ship the whole updated version of the
object.  This of course is not always the case, as we can move only the
updated parts of it (modeling such policies can also be done using our
framework)."

Under the OTC model every write term is linear in the shipped volume,
so shipping only a δ-fraction of the object per update is *exactly*
equivalent to scaling the write-count matrix by δ — which the float
request matrices support without approximation.  The same linearity
powers :func:`scaled_request_instance`, used to normalize workloads
across instance sizes.
"""

from __future__ import annotations

import numpy as np

from repro.drp.instance import DRPInstance
from repro.errors import ConfigurationError


def delta_update_instance(instance: DRPInstance, delta: float) -> DRPInstance:
    """Model partial-update shipping: each write moves ``delta * o_k``.

    Parameters
    ----------
    delta:
        Fraction of the object shipped per update, in (0, 1].  ``1.0``
        returns an equivalent instance (whole-object shipping, the
        paper's default assumption).

    Notes
    -----
    Equivalent by linearity: every write cost term is
    ``w_ik * (delta * o_k) * c(...) == (delta * w_ik) * o_k * c(...)``.
    Read costs are untouched, so replication becomes strictly more
    attractive as ``delta`` shrinks — quantified in
    ``benchmarks/bench_delta_updates.py``.
    """
    if not (0.0 < delta <= 1.0):
        raise ConfigurationError(f"delta must be in (0, 1], got {delta}")
    return DRPInstance(
        cost=instance.cost,
        reads=instance.reads,
        writes=instance.writes * delta,
        sizes=instance.sizes,
        capacities=instance.capacities,
        primaries=instance.primaries,
        name=f"{instance.name}[delta={delta:g}]",
    )


def scaled_request_instance(instance: DRPInstance, factor: float) -> DRPInstance:
    """Scale all request rates by ``factor`` (> 0).

    OTC scales linearly with request volume, so savings percentages are
    invariant under this transform (a tested property) — useful for
    normalizing traffic density across instance sizes.
    """
    if factor <= 0:
        raise ConfigurationError(f"factor must be > 0, got {factor}")
    return DRPInstance(
        cost=instance.cost,
        reads=instance.reads * factor,
        writes=instance.writes * factor,
        sizes=instance.sizes,
        capacities=instance.capacities,
        primaries=instance.primaries,
        name=f"{instance.name}[x{factor:g}]",
    )


def read_only_instance(instance: DRPInstance) -> DRPInstance:
    """Drop all writes — the replication-friendliest limit, where the
    'replicate everywhere' policy becomes optimal given capacity."""
    return DRPInstance(
        cost=instance.cost,
        reads=instance.reads,
        writes=np.zeros_like(instance.writes),
        sizes=instance.sizes,
        capacities=instance.capacities,
        primaries=instance.primaries,
        name=f"{instance.name}[read-only]",
    )
