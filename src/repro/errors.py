"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from infeasible
problem instances or mechanism-protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter or configuration value is malformed or out of range."""


class InfeasibleInstanceError(ReproError):
    """A DRP instance violates a structural requirement.

    Examples: a primary object larger than its primary server's capacity,
    a disconnected topology, or a negative request count.
    """


class CapacityError(ReproError):
    """An operation would exceed a server's residual storage capacity."""


class MechanismProtocolError(ReproError):
    """The mechanism message protocol was violated.

    Raised e.g. when an agent bids for an object outside its eligible
    list, or when a payment is issued to a non-winning agent.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget."""


class InvariantViolationError(ReproError):
    """An online safety invariant was violated during a strict run.

    Raised by :class:`repro.runtime.invariants.InvariantMonitor` when a
    check fails under ``strict=True``; the violating
    :class:`~repro.obs.events.InvariantEvent` has already been emitted
    into the active sink when this propagates.
    """
