"""Experiment harness reproducing the paper's evaluation (Section 5).

Every figure and table has a driver here; the matching pytest-benchmark
target lives in ``benchmarks/``.  Paper-scale instances (M = 3718,
N = 25,000) are scaled down (documented in DESIGN.md §3); the knobs
(C%, R/W, update ratio) and the experimental pipeline (topology →
trace-style workload → instance) are the paper's.
"""

from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.instances import paper_instance, worldcup_instance
from repro.experiments.runner import run_algorithms, PAPER_ALGORITHMS
from repro.experiments.sweeps import (
    capacity_sweep,
    rw_ratio_sweep,
    size_grid,
    update_ratio_sweep,
    SweepRow,
)
from repro.experiments.figures import (
    figure3_capacity_sweep,
    figure4_rw_sweep,
    replica_growth,
)
from repro.experiments.tables import table1_running_time, table2_quality
from repro.experiments.report import format_sweep, format_series
from repro.experiments.replication import (
    ReplicatedComparison,
    replicate_comparison,
)
from repro.experiments.sensitivity import SensitivityRow, sensitivity_study
from repro.experiments.export import sweep_to_csv, table_to_csv, read_csv_rows

__all__ = [
    "ExperimentConfig",
    "SCALES",
    "paper_instance",
    "worldcup_instance",
    "run_algorithms",
    "PAPER_ALGORITHMS",
    "capacity_sweep",
    "rw_ratio_sweep",
    "size_grid",
    "update_ratio_sweep",
    "SweepRow",
    "figure3_capacity_sweep",
    "figure4_rw_sweep",
    "replica_growth",
    "table1_running_time",
    "table2_quality",
    "format_sweep",
    "format_series",
    "ReplicatedComparison",
    "replicate_comparison",
    "SensitivityRow",
    "sensitivity_study",
    "sweep_to_csv",
    "table_to_csv",
    "read_csv_rows",
]
