"""Experiment configuration.

:class:`ExperimentConfig` bundles every knob of the paper's setup.  The
``SCALES`` presets trade fidelity for runtime: the paper's absolute sizes
(M = 3718, N = 25,000, 1–2 million requests) are far beyond a pure-Python
evaluation loop, and — because every algorithm sees the same instance —
the comparative shapes are scale-stable (verified across the presets in
the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigurationError
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one DRP evaluation instance.

    Attributes mirror the paper's experimental section: M servers, N
    objects, topology family/parameters, total request volume, the R/W
    ratio (fraction of reads), the server-capacity knob C%, and a seed.
    """

    n_servers: int = 60
    n_objects: int = 300
    topology: str = "random"
    topology_params: dict[str, Any] = field(
        default_factory=lambda: {"p": 0.4, "weight_range": (1.0, 40.0)}
    )
    total_requests: int = 60_000
    rw_ratio: float = 0.75
    capacity_fraction: float = 0.25
    popularity_alpha: float = 0.85
    # The paper maps ~500 active clients onto 3718 servers, so request
    # mass is highly concentrated per server; skew 1.2 reproduces that
    # concentration at our scale.
    server_skew: float = 1.2
    mean_object_size: float = 12.0
    size_cv: float = 1.0
    seed: int = 0
    name: str = "experiment"

    def __post_init__(self) -> None:
        check_positive_int(self.n_servers, "n_servers")
        check_positive_int(self.n_objects, "n_objects")
        if self.total_requests < 0:
            raise ConfigurationError("total_requests must be >= 0")
        check_fraction(self.rw_ratio, "rw_ratio")
        if self.capacity_fraction < 0:
            raise ConfigurationError("capacity_fraction must be >= 0")

    def with_(self, **overrides) -> "ExperimentConfig":
        """Functional update, e.g. ``cfg.with_(rw_ratio=0.95)``."""
        return replace(self, **overrides)


#: Size presets.  "tiny" suits unit tests, "small" the default benchmark
#: runs, "medium" overnight sweeps closer to the paper's proportions
#: (N/M ratio of ~6.7, as in M=3718 / N=25,000).
SCALES: dict[str, ExperimentConfig] = {
    "tiny": ExperimentConfig(
        n_servers=16, n_objects=60, total_requests=8_000, name="tiny"
    ),
    "small": ExperimentConfig(
        n_servers=60, n_objects=300, total_requests=60_000, name="small"
    ),
    "medium": ExperimentConfig(
        n_servers=120, n_objects=800, total_requests=200_000, name="medium"
    ),
}
