"""CSV export of sweep and table results.

Downstream plotting (gnuplot, pandas, spreadsheets) wants flat CSV;
these writers emit exactly the rows the drivers produce, stdlib-only.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence, Union

from repro.experiments.sweeps import SweepRow
from repro.experiments.tables import TableRow

PathLike = Union[str, Path]


def sweep_to_csv(rows: Sequence[SweepRow], path: PathLike) -> Path:
    """Write sweep rows as CSV (one line per sweep-point x algorithm)."""
    path = Path(path)
    if not rows:
        raise ValueError("no sweep rows to export")
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "sweep_param",
                "sweep_value",
                "algorithm",
                "savings_percent",
                "otc",
                "runtime_s",
                "replicas",
                "rounds",
            ]
        )
        for r in rows:
            writer.writerow(
                [
                    r.sweep_param,
                    r.sweep_value,
                    r.algorithm,
                    f"{r.savings_percent:.6f}",
                    f"{r.otc:.6f}",
                    f"{r.runtime_s:.6f}",
                    r.replicas,
                    r.rounds,
                ]
            )
    return path


def table_to_csv(rows: Sequence[TableRow], path: PathLike) -> Path:
    """Write table rows (one line per problem instance) as CSV."""
    path = Path(path)
    if not rows:
        raise ValueError("no table rows to export")
    algorithms = list(rows[0].values)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["label", *algorithms, "agt_ram_improvement_percent"])
        for r in rows:
            writer.writerow(
                [r.label]
                + [f"{r.values.get(a, float('nan')):.6f}" for a in algorithms]
                + [f"{r.improvement_percent:.6f}"]
            )
    return path


def read_csv_rows(path: PathLike) -> list[dict[str, str]]:
    """Read back an exported CSV as dict rows (testing/round-trips)."""
    with Path(path).open(newline="") as fh:
        return list(csv.DictReader(fh))
