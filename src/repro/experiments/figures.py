"""Figure reproductions.

Each function returns ``{algorithm: [(x, savings%), ...]}`` series — the
exact data the paper plots — so benchmark targets and examples can print
or chart them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence

from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import PAPER_ALGORITHMS
from repro.experiments.sweeps import SweepRow, capacity_sweep, rw_ratio_sweep

Series = dict[str, list[tuple[float, float]]]


def _to_series(rows: Sequence[SweepRow], field: str = "savings_percent") -> Series:
    series: Series = defaultdict(list)
    for row in rows:
        series[row.algorithm].append((row.sweep_value, getattr(row, field)))
    return dict(series)


def figure3_capacity_sweep(
    scale: str = "small",
    *,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    capacities: Sequence[float] = (0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40),
    seed: int = 0,
    base: ExperimentConfig | None = None,
) -> Series:
    """Figure 3: OTC savings (%) vs server capacity, R/W = 0.95.

    Expected shape (paper): steep initial gains that flatten once the
    most beneficial objects are replicated; AGT-RAM/Greedy lead, GRA
    trails; all methods within ~15% of each other at high capacity.
    """
    cfg = (base or SCALES[scale]).with_(rw_ratio=0.95, name="figure3")
    rows = capacity_sweep(cfg, capacities, algorithms, seed=seed)
    return _to_series(rows)


def figure4_rw_sweep(
    scale: str = "small",
    *,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    ratios: Sequence[float] = (0.05, 0.20, 0.35, 0.50, 0.65, 0.80, 0.95),
    seed: int = 0,
    base: ExperimentConfig | None = None,
) -> Series:
    """Figure 4: OTC savings (%) vs read/write ratio, C = 45%.

    Expected shape (paper): savings grow with the read share for every
    method (replication pays when reads dominate); AGT-RAM and Greedy
    climb to the high-80s% while GRA saturates far lower.
    """
    cfg = (base or SCALES[scale]).with_(capacity_fraction=0.45, name="figure4")
    rows = rw_ratio_sweep(cfg, ratios, algorithms, seed=seed)
    return _to_series(rows)


def replica_growth(
    scale: str = "small",
    *,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    capacities: Sequence[float] = (0.10, 0.18),
    seed: int = 0,
    base: ExperimentConfig | None = None,
) -> Mapping[str, float]:
    """Section 5's observation: growing capacity 10% → 18% yields ~4x
    more replicas (averaged over algorithms).

    Returns ``{algorithm: replica_growth_factor}``.
    """
    cfg = (base or SCALES[scale]).with_(rw_ratio=0.95, name="replica-growth")
    rows = capacity_sweep(cfg, capacities, algorithms, seed=seed)
    lo, hi = capacities[0], capacities[-1]
    by_alg: dict[str, dict[float, int]] = defaultdict(dict)
    for row in rows:
        by_alg[row.algorithm][row.sweep_value] = row.replicas
    return {
        alg: (counts[hi] / counts[lo] if counts[lo] else float("inf"))
        for alg, counts in by_alg.items()
    }
