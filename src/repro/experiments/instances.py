"""Instance builders for the evaluation.

Two pipelines, as in the paper:

* :func:`paper_instance` — the fast path used by sweeps: topology +
  directly-synthesized (Zipf, skewed) workload matrices.
* :func:`worldcup_instance` — the full trace pipeline: synthetic WC'98
  log lines → parser → per-client aggregates → 1-M client mapping →
  matrices.  Slower but exercises the exact processing chain the paper
  describes; used by integration tests and the trace-replay example.
"""

from __future__ import annotations

import numpy as np

from repro.drp.instance import DRPInstance, build_instance
from repro.experiments.config import ExperimentConfig
from repro.topology import make_topology
from repro.utils.rng import spawn_children
from repro.workload.clients import map_clients_to_servers
from repro.workload.stats import trace_to_matrices
from repro.workload.synthetic import SyntheticWorkload, synthesize_workload
from repro.workload.worldcup import WorldCupLogGenerator, parse_common_log


def paper_instance(cfg: ExperimentConfig) -> DRPInstance:
    """Build a DRP instance from an :class:`ExperimentConfig`."""
    rng_topo, rng_work, rng_inst = spawn_children(cfg.seed, 3)
    topo = make_topology(
        cfg.topology, cfg.n_servers, seed=rng_topo, **cfg.topology_params
    )
    workload = synthesize_workload(
        topo.n_nodes,
        cfg.n_objects,
        total_requests=cfg.total_requests,
        rw_ratio=cfg.rw_ratio,
        popularity_alpha=cfg.popularity_alpha,
        server_skew=cfg.server_skew,
        mean_object_size=cfg.mean_object_size,
        size_cv=cfg.size_cv,
        seed=rng_work,
    )
    return build_instance(
        topo,
        workload,
        capacity_fraction=cfg.capacity_fraction,
        seed=rng_inst,
        name=cfg.name,
    )


def worldcup_instance(
    cfg: ExperimentConfig,
    *,
    n_clients: int = 200,
    write_fraction: float | None = None,
) -> DRPInstance:
    """Build an instance through the full log pipeline.

    Generates synthetic WC'98 log lines, parses them back (exercising the
    common-log-format parser), aggregates per client, and maps clients to
    servers 1-M — the paper's exact processing chain.
    """
    rng_topo, rng_gen, rng_map, rng_inst = spawn_children(cfg.seed, 4)
    topo = make_topology(
        cfg.topology, cfg.n_servers, seed=rng_topo, **cfg.topology_params
    )
    wf = (1.0 - cfg.rw_ratio) if write_fraction is None else write_fraction
    gen = WorldCupLogGenerator(
        n_objects=cfg.n_objects,
        n_clients=n_clients,
        mean_object_size=cfg.mean_object_size,
        size_cv=cfg.size_cv,
        popularity_alpha=cfg.popularity_alpha,
        write_fraction=wf,
        seed=rng_gen,
    )
    lines = gen.generate_log(cfg.total_requests)
    trace = parse_common_log(lines, status_ok_only=True)
    mapping = map_clients_to_servers(
        trace.n_clients, topo.n_nodes, skew=cfg.server_skew, seed=rng_map
    )
    reads, writes = trace_to_matrices(trace, mapping, topo.n_nodes)
    # The parser re-derives object sizes from response bytes; request
    # matrices must align with the parsed catalog.
    workload = SyntheticWorkload(
        reads=reads,
        writes=writes,
        sizes=np.asarray(trace.catalog.sizes),
        rw_ratio=cfg.rw_ratio,
    )
    return build_instance(
        topo,
        workload,
        capacity_fraction=cfg.capacity_fraction,
        seed=rng_inst,
        name=f"{cfg.name}-worldcup",
    )
