"""Multi-seed replication of experimental setups.

The paper: "Each experimental setup was evaluated thirteen times, i.e.,
only the Friday (24 hours) logs from May 1, 1998 to July 24" — every
reported number is an average over independent workload draws.  This
module does the same with seeds standing in for Fridays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.analysis.metrics import ResultSummary, summarize_results
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.experiments.runner import PAPER_ALGORITHMS, run_algorithms
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ReplicatedComparison:
    """Summaries of every algorithm across the replicated runs."""

    config: ExperimentConfig
    n_replications: int
    summaries: Mapping[str, ResultSummary]

    def mean_savings(self) -> dict[str, float]:
        return {a: s.savings_mean for a, s in self.summaries.items()}

    def mean_runtimes(self) -> dict[str, float]:
        return {a: s.runtime_mean for a, s in self.summaries.items()}


def replicate_comparison(
    base: ExperimentConfig,
    *,
    n_replications: int = 13,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    placer_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    seed: int = 0,
) -> ReplicatedComparison:
    """Evaluate ``algorithms`` on ``n_replications`` fresh instance draws.

    Each replication regenerates topology, workload and primaries from
    ``base.seed + r`` (a new "Friday"), then runs every algorithm on the
    identical instance so the comparison stays paired.
    """
    check_positive_int(n_replications, "n_replications")
    per_alg: dict[str, list] = {a: [] for a in algorithms}
    for r in range(n_replications):
        inst = paper_instance(base.with_(seed=base.seed + r, name=f"{base.name}#r{r}"))
        results = run_algorithms(
            inst, algorithms, seed=seed + r, placer_kwargs=placer_kwargs
        )
        for alg, res in results.items():
            per_alg[alg].append(res)
    return ReplicatedComparison(
        config=base,
        n_replications=n_replications,
        summaries={a: summarize_results(v) for a, v in per_alg.items()},
    )
