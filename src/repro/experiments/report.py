"""Rendering of sweep/table results into the rows the paper reports."""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.experiments.sweeps import SweepRow
from repro.utils.tables import render_table


def format_series(
    series: dict[str, list[tuple[float, float]]],
    *,
    x_label: str = "x",
    y_label: str = "OTC savings (%)",
    title: str | None = None,
) -> str:
    """Render figure series as one table: rows = x values, cols = methods."""
    algorithms = sorted(series)
    xs: list[float] = sorted({x for pts in series.values() for x, _ in pts})
    lookup = {
        alg: {x: y for x, y in pts} for alg, pts in series.items()
    }
    rows = []
    for x in xs:
        rows.append(
            [x] + [lookup[alg].get(x, float("nan")) for alg in algorithms]
        )
    return render_table(
        [x_label] + algorithms,
        rows,
        title=title or f"{y_label} by {x_label}",
    )


def format_sweep(
    rows: Sequence[SweepRow],
    *,
    field: str = "savings_percent",
    title: str | None = None,
) -> str:
    """Render raw sweep rows pivoted by (sweep value x algorithm)."""
    by_value: dict = defaultdict(dict)
    algorithms: list[str] = []
    for row in rows:
        by_value[row.sweep_value][row.algorithm] = getattr(row, field)
        if row.algorithm not in algorithms:
            algorithms.append(row.algorithm)
    param = rows[0].sweep_param if rows else "value"
    table_rows = [
        [str(value)] + [cells.get(alg, float("nan")) for alg in algorithms]
        for value, cells in by_value.items()
    ]
    return render_table([param] + algorithms, table_rows, title=title)


def format_table_rows(table_rows, *, metric_label: str) -> str:
    """Render :class:`repro.experiments.tables.TableRow` records."""
    if not table_rows:
        return "(empty table)"
    algorithms = list(table_rows[0].values)
    headers = ["Problem Size"] + algorithms + ["AGT-RAM improvement (%)"]
    rows = []
    for tr in table_rows:
        rows.append(
            [tr.label]
            + [tr.values.get(alg, float("nan")) for alg in algorithms]
            + [tr.improvement_percent]
        )
    return render_table(headers, rows, title=metric_label)
