"""Uniform algorithm execution for the comparisons.

The paper compares six methods on identical instances; this module runs
any subset by label, wiring per-algorithm seeds so stochastic methods
(GRA, DA, EA, Random) are reproducible yet independent.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.baselines.base import make_placer
from repro.drp.instance import DRPInstance
from repro.result import PlacementResult
from repro.utils.rng import spawn_children

#: The paper's comparison set, in its reporting order.
PAPER_ALGORITHMS: tuple[str, ...] = ("Greedy", "GRA", "Ae-Star", "AGT-RAM", "DA", "EA")

#: Algorithms whose constructors accept a seed.
_STOCHASTIC = {"GRA", "DA", "EA", "Random"}


def run_algorithms(
    instance: DRPInstance,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    *,
    seed: int = 0,
    placer_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> dict[str, PlacementResult]:
    """Run each named algorithm on ``instance``.

    Parameters
    ----------
    algorithms:
        Labels from the algorithm registry (see
        :func:`repro.baselines.base.make_placer`).
    seed:
        Root seed; each stochastic algorithm gets an independent stream.
    placer_kwargs:
        Optional per-algorithm constructor overrides, e.g.
        ``{"GRA": {"generations": 50}}``.

    Returns
    -------
    dict
        ``{label: PlacementResult}`` in the order requested.
    """
    placer_kwargs = dict(placer_kwargs or {})
    streams = spawn_children(seed, len(algorithms))
    results: dict[str, PlacementResult] = {}
    for alg, rng in zip(algorithms, streams):
        kwargs = dict(placer_kwargs.get(alg, {}))
        if alg in _STOCHASTIC and "seed" not in kwargs:
            kwargs["seed"] = rng
        placer = make_placer(alg, **kwargs)
        results[alg] = placer.place(instance)
    return results
