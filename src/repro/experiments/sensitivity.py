"""Sensitivity of the comparison to modeling choices.

The reproduction's central claim is that the paper's *orderings* are
robust; this module stresses that by sweeping the knobs the paper never
varied — topology family, popularity skew, client concentration — and
recording whether the headline ordering (AGT-RAM in the top tier, GRA
at the bottom, Greedy the fully-informed ceiling) survives each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.experiments.runner import run_algorithms

#: The ordering predicates that define "the paper's shape holds".
ORDERING_ALGS = ("Greedy", "AGT-RAM", "GRA")


@dataclass(frozen=True)
class SensitivityRow:
    """One knob setting and whether the headline ordering survived."""

    knob: str
    value: Any
    savings: Mapping[str, float]
    ordering_holds: bool


def _ordering_holds(savings: Mapping[str, float]) -> bool:
    return (
        savings["GRA"] <= savings["AGT-RAM"] + 1e-9
        and savings["AGT-RAM"] <= savings["Greedy"] + 5.0
    )


def sensitivity_study(
    base: ExperimentConfig,
    *,
    topology_kinds: Sequence[str] = ("random", "waxman", "powerlaw", "transit-stub"),
    popularity_alphas: Sequence[float] = (0.6, 0.85, 1.1),
    server_skews: Sequence[float] = (0.4, 1.2, 2.0),
    algorithms: Sequence[str] = ORDERING_ALGS,
    placer_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    seed: int = 0,
) -> list[SensitivityRow]:
    """Sweep modeling knobs; return one row per setting.

    The base config should use the paper's headline regime (read-heavy,
    generous capacity) so every method has room to differentiate.
    """
    rows: list[SensitivityRow] = []

    def run(knob: str, value: Any, cfg: ExperimentConfig) -> None:
        inst = paper_instance(cfg)
        results = run_algorithms(
            inst, algorithms, seed=seed, placer_kwargs=placer_kwargs
        )
        savings = {a: r.savings_percent for a, r in results.items()}
        rows.append(
            SensitivityRow(
                knob=knob,
                value=value,
                savings=savings,
                ordering_holds=_ordering_holds(savings),
            )
        )

    for kind in topology_kinds:
        params: dict[str, Any] = {}
        if kind == "random":
            params = {"p": 0.4, "weight_range": (1.0, 40.0)}
        run("topology", kind, base.with_(topology=kind, topology_params=params,
                                         name=f"sens-topo-{kind}"))
    for alpha in popularity_alphas:
        run("popularity_alpha", alpha,
            base.with_(popularity_alpha=alpha, name=f"sens-alpha-{alpha}"))
    for skew in server_skews:
        run("server_skew", skew,
            base.with_(server_skew=skew, name=f"sens-skew-{skew}"))
    return rows
