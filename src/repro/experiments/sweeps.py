"""Parameter-sweep drivers behind the figures and tables.

Each sweep holds every knob fixed except the swept one, rebuilds the
instance per point (the paper regenerates workloads per setup), runs the
requested algorithms, and emits flat :class:`SweepRow` records the
report/benchmark layer formats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.experiments.runner import PAPER_ALGORITHMS, run_algorithms


@dataclass(frozen=True)
class SweepRow:
    """One (sweep-point, algorithm) measurement."""

    sweep_param: str
    sweep_value: Any
    algorithm: str
    savings_percent: float
    otc: float
    runtime_s: float
    replicas: int
    rounds: int


def _sweep(
    param: str,
    values: Sequence[Any],
    base: ExperimentConfig,
    algorithms: Sequence[str],
    *,
    seed: int,
    placer_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> list[SweepRow]:
    rows: list[SweepRow] = []
    for value in values:
        cfg = base.with_(**{param: value})
        instance = paper_instance(cfg)
        results = run_algorithms(
            instance, algorithms, seed=seed, placer_kwargs=placer_kwargs
        )
        for alg, res in results.items():
            rows.append(
                SweepRow(
                    sweep_param=param,
                    sweep_value=value,
                    algorithm=alg,
                    savings_percent=res.savings_percent,
                    otc=res.otc,
                    runtime_s=res.runtime_s,
                    replicas=res.replicas_allocated,
                    rounds=res.rounds,
                )
            )
    return rows


def capacity_sweep(
    base: ExperimentConfig,
    capacities: Sequence[float] = (0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40),
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    *,
    seed: int = 0,
    placer_kwargs=None,
) -> list[SweepRow]:
    """Figure 3's sweep: OTC savings vs server-capacity fraction C%.

    The paper fixes R/W = 0.95 for this figure; callers set that on
    ``base`` (``figure3_capacity_sweep`` does).
    """
    return _sweep(
        "capacity_fraction",
        list(capacities),
        base,
        algorithms,
        seed=seed,
        placer_kwargs=placer_kwargs,
    )


def rw_ratio_sweep(
    base: ExperimentConfig,
    ratios: Sequence[float] = (0.05, 0.20, 0.35, 0.50, 0.65, 0.80, 0.95),
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    *,
    seed: int = 0,
    placer_kwargs=None,
) -> list[SweepRow]:
    """Figure 4's sweep: OTC savings vs read/write ratio at fixed C."""
    return _sweep(
        "rw_ratio", list(ratios), base, algorithms, seed=seed, placer_kwargs=placer_kwargs
    )


def update_ratio_sweep(
    base: ExperimentConfig,
    update_ratios: Sequence[float] = (0.05, 0.10, 0.20),
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    *,
    seed: int = 0,
    placer_kwargs=None,
) -> list[SweepRow]:
    """Section 5's robustness check: "further experiments with various
    update ratios (5%, 10%, and 20%) showed similar plot trends".

    An update ratio U% is a write fraction, i.e. ``rw_ratio = 1 - U``.
    """
    return _sweep(
        "rw_ratio",
        [1.0 - u for u in update_ratios],
        base,
        algorithms,
        seed=seed,
        placer_kwargs=placer_kwargs,
    )


def size_grid(
    base: ExperimentConfig,
    grid: Sequence[tuple[int, int]],
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    *,
    seed: int = 0,
    placer_kwargs=None,
) -> list[SweepRow]:
    """Table 1's grid: runtime across (M, N) problem sizes.

    ``grid`` holds (n_servers, n_objects) pairs; request volume scales
    with the problem so per-cell traffic density stays comparable.
    """
    rows: list[SweepRow] = []
    base_density = base.total_requests / (base.n_servers * base.n_objects)
    for m, n in grid:
        cfg = base.with_(
            n_servers=m,
            n_objects=n,
            total_requests=int(base_density * m * n),
            name=f"M={m},N={n}",
        )
        instance = paper_instance(cfg)
        results = run_algorithms(
            instance, algorithms, seed=seed, placer_kwargs=placer_kwargs
        )
        for alg, res in results.items():
            rows.append(
                SweepRow(
                    sweep_param="size",
                    sweep_value=(m, n),
                    algorithm=alg,
                    savings_percent=res.savings_percent,
                    otc=res.otc,
                    runtime_s=res.runtime_s,
                    replicas=res.replicas_allocated,
                    rounds=res.rounds,
                )
            )
    return rows
