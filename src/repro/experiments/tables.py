"""Table reproductions.

Table 1 measures termination time over a grid of problem sizes; Table 2
measures solution quality over ten mixed problem instances.  Both report
an "Improvement brought by AGT-RAM (%)" column computed against the best
competing method, matching the paper's bracketed formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.experiments.runner import PAPER_ALGORITHMS, run_algorithms
from repro.experiments.sweeps import size_grid

#: Scaled version of Table 1's 3x3 (M, N) grid (paper: M in {2500, 3000,
#: 3718} x N in {15k, 20k, 25k}; the M:N proportions are preserved).
TABLE1_GRID: tuple[tuple[int, int], ...] = (
    (50, 300),
    (50, 400),
    (50, 500),
    (60, 300),
    (60, 400),
    (60, 500),
    (75, 300),
    (75, 400),
    (75, 500),
)

#: Scaled version of Table 2's ten mixed instances
#: (M, N, C%, R/W) — proportions follow the paper's rows.
TABLE2_SPECS: tuple[tuple[int, int, float, float], ...] = (
    (20, 100, 0.20, 0.75),
    (30, 150, 0.20, 0.80),
    (40, 200, 0.25, 0.95),
    (50, 250, 0.35, 0.95),
    (60, 350, 0.25, 0.75),
    (70, 450, 0.30, 0.65),
    (75, 450, 0.25, 0.85),
    (80, 550, 0.25, 0.65),
    (90, 650, 0.35, 0.50),
    (95, 650, 0.10, 0.40),
)


@dataclass(frozen=True)
class TableRow:
    """One table row: metric per algorithm plus the improvement column."""

    label: str
    values: Mapping[str, float]
    improvement_percent: float


def _improvement(
    values: Mapping[str, float],
    *,
    higher_is_better: bool,
    reference: str = "Greedy",
) -> float:
    """AGT-RAM's improvement over the reference method, in percent.

    The paper's bracketed formulas compute the improvement against the
    Greedy comparator (its strongest conventional rival); when Greedy was
    not run, the best other method stands in.

    Runtime (lower better): ``(ref - agt) / ref * 100``.
    Savings (higher better): ``(agt - ref) / ref * 100``.
    """
    agt = values["AGT-RAM"]
    others = {k: v for k, v in values.items() if k != "AGT-RAM"}
    if not others:
        return 0.0
    if reference in others:
        ref = others[reference]
    elif higher_is_better:
        ref = max(others.values())
    else:
        ref = min(others.values())
    if ref == 0:
        return 0.0
    if higher_is_better:
        return 100.0 * (agt - ref) / ref
    return 100.0 * (ref - agt) / ref


def table1_running_time(
    base: ExperimentConfig,
    grid: Sequence[tuple[int, int]] = TABLE1_GRID,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    *,
    seed: int = 0,
    placer_kwargs=None,
) -> list[TableRow]:
    """Table 1: running time (s) per algorithm over the size grid.

    The paper fixes C = 45% and R/W = 0.85 for this table.
    """
    cfg = base.with_(capacity_fraction=0.45, rw_ratio=0.85, name="table1")
    rows = size_grid(cfg, grid, algorithms, seed=seed, placer_kwargs=placer_kwargs)
    out: list[TableRow] = []
    for m, n in grid:
        values = {
            r.algorithm: r.runtime_s
            for r in rows
            if r.sweep_value == (m, n)
        }
        out.append(
            TableRow(
                label=f"M={m}, N={n}",
                values=values,
                improvement_percent=_improvement(values, higher_is_better=False),
            )
        )
    return out


def table2_quality(
    base: Optional[ExperimentConfig] = None,
    specs: Sequence[tuple[int, int, float, float]] = TABLE2_SPECS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    *,
    seed: int = 0,
    placer_kwargs=None,
) -> list[TableRow]:
    """Table 2: OTC savings (%) over randomly-parameterized instances.

    Each spec is (M, N, C%, R/W); request volume scales with M*N.
    """
    base = base or ExperimentConfig()
    density = base.total_requests / (base.n_servers * base.n_objects)
    out: list[TableRow] = []
    for idx, (m, n, cap, rw) in enumerate(specs):
        cfg = base.with_(
            n_servers=m,
            n_objects=n,
            capacity_fraction=cap,
            rw_ratio=rw,
            total_requests=int(density * m * n),
            seed=base.seed + idx,
            name=f"table2-{idx}",
        )
        instance = paper_instance(cfg)
        results = run_algorithms(
            instance, algorithms, seed=seed + idx, placer_kwargs=placer_kwargs
        )
        values = {alg: res.savings_percent for alg, res in results.items()}
        out.append(
            TableRow(
                label=f"M={m}, N={n} [C={cap:.0%}, R/W={rw:.2f}]",
                values=values,
                improvement_percent=_improvement(values, higher_is_better=True),
            )
        )
    return out
