"""Serialization of instances, schemes, and results.

Long sweeps want checkpointing and post-hoc analysis wants the raw
schemes; this module persists them with numpy's ``.npz`` container plus
a JSON sidecar for human-readable metadata — no pickle, so files are
portable and safe to load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.result import PlacementResult

PathLike = Union[str, Path]

_INSTANCE_KEYS = ("cost", "reads", "writes", "sizes", "capacities", "primaries")

#: Format version written into every file; bump on layout changes.
FORMAT_VERSION = 1


def save_instance(instance: DRPInstance, path: PathLike) -> Path:
    """Write a DRP instance to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(
        path,
        cost=instance.cost,
        reads=instance.reads,
        writes=instance.writes,
        sizes=instance.sizes,
        capacities=instance.capacities,
        primaries=instance.primaries,
        _meta=np.array(
            json.dumps({"name": instance.name, "version": FORMAT_VERSION})
        ),
    )
    return path


def load_instance(path: PathLike) -> DRPInstance:
    """Load an instance written by :func:`save_instance`.

    Validation runs as usual at construction, so a corrupted or
    hand-edited file fails loudly rather than producing silent nonsense.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        missing = [k for k in _INSTANCE_KEYS if k not in data]
        if missing:
            raise ConfigurationError(
                f"{path} is not a DRP instance file (missing {missing})"
            )
        meta = {}
        if "_meta" in data:
            try:
                meta = json.loads(str(data["_meta"]))
            except (json.JSONDecodeError, TypeError):
                meta = {}
        try:
            return DRPInstance(
                cost=data["cost"],
                reads=data["reads"],
                writes=data["writes"],
                sizes=data["sizes"],
                capacities=data["capacities"],
                primaries=data["primaries"],
                name=str(meta.get("name", path.stem)),
            )
        except ValueError as exc:
            # ConfigurationError / InfeasibleInstanceError both subclass
            # ValueError; add the file path so a bad instance in a sweep
            # directory is locatable from the message alone.
            raise type(exc)(f"{path}: {exc}") from exc


def save_scheme(state: ReplicationState, path: PathLike) -> Path:
    """Persist a replication scheme (the X matrix; NN tables are derived)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(path, x=state.x)
    return path


def load_scheme(instance: DRPInstance, path: PathLike) -> ReplicationState:
    """Load a scheme saved by :func:`save_scheme` against ``instance``."""
    with np.load(Path(path), allow_pickle=False) as data:
        if "x" not in data:
            raise ConfigurationError(f"{path} is not a replication-scheme file")
        return ReplicationState.from_matrix(instance, data["x"])


def result_summary(result: PlacementResult) -> dict:
    """JSON-serializable summary of a placement result (no arrays)."""
    return {
        "algorithm": result.algorithm,
        "otc": result.otc,
        "savings_percent": result.savings_percent,
        "runtime_s": result.runtime_s,
        "rounds": result.rounds,
        "replicas": result.replicas_allocated,
    }


def save_result(result: PlacementResult, path: PathLike) -> Path:
    """Write a result: scheme as ``.npz`` plus a ``.json`` summary."""
    path = Path(path)
    base = path.with_suffix("") if path.suffix in (".json", ".npz") else path
    save_scheme(result.state, base.with_suffix(".npz"))
    json_path = base.with_suffix(".json")
    json_path.write_text(json.dumps(result_summary(result), indent=2))
    return json_path


def load_result_summary(path: PathLike) -> dict:
    """Read back the JSON summary written by :func:`save_result`."""
    data = json.loads(Path(path).read_text())
    required = {"algorithm", "otc", "savings_percent"}
    if not required <= set(data):
        raise ConfigurationError(f"{path} is not a result summary file")
    return data
