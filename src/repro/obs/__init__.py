"""repro.obs — lightweight observability: tracing, counters, bench harness.

Two halves:

* :mod:`repro.obs.tracer` — hierarchical timer spans and counters with a
  near-zero-overhead disabled mode.  The whole library is instrumented
  permanently; tracing only costs something once a tracer is installed
  (:func:`capture` / :func:`install`).
* :mod:`repro.obs.report` — the machine-readable perf harness behind
  ``python -m repro bench``: runs the benchmark scenarios with tracing
  on, emits a schema-versioned ``BENCH_<date>.json``, and diffs two such
  documents for regressions.

See ``docs/observability.md`` for the span taxonomy and JSON schema.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    SpanStat,
    Tracer,
    capture,
    current,
    install,
)

__all__ = [
    "NULL_TRACER",
    "SpanStat",
    "Tracer",
    "capture",
    "current",
    "install",
]
