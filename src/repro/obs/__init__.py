"""repro.obs — lightweight observability: tracing, events, exporters.

Four parts:

* :mod:`repro.obs.tracer` — hierarchical timer spans and counters with a
  near-zero-overhead disabled mode.  The whole library is instrumented
  permanently; tracing only costs something once a tracer is installed
  (:func:`capture` / :func:`install`).
* :mod:`repro.obs.events` — the typed, schema-versioned event stream
  (round boundaries, bids, winners, payments, NN updates, capacity
  rejections) plus the per-round time-series registry; no-op by default
  behind the same discipline (:func:`capture_events`).
* :mod:`repro.obs.export` — standard-format exporters for the stream:
  JSONL event log, Chrome trace-event JSON (Perfetto-loadable), and an
  OpenMetrics/Prometheus textfile snapshot.
* :mod:`repro.obs.report` — the machine-readable perf harness behind
  ``python -m repro bench``: runs the benchmark scenarios with tracing
  on, emits a schema-versioned ``BENCH_<date>.json``, and diffs two such
  documents for regressions.  :mod:`repro.obs.audit` re-verifies the
  mechanism's axioms offline from a recorded event log
  (``python -m repro audit``).

See ``docs/observability.md`` for the span taxonomy, event schema and
JSON schemas.
"""

from repro.obs.events import (
    NULL_SINK,
    EventSink,
    RecordingSink,
    RoundSeries,
)
from repro.obs.events import capture as capture_events
from repro.obs.events import current as current_sink
from repro.obs.events import install as install_sink
from repro.obs.tracer import (
    NULL_TRACER,
    SpanStat,
    Tracer,
    capture,
    current,
    install,
)

__all__ = [
    "NULL_TRACER",
    "SpanStat",
    "Tracer",
    "capture",
    "current",
    "install",
    "NULL_SINK",
    "EventSink",
    "RecordingSink",
    "RoundSeries",
    "capture_events",
    "current_sink",
    "install_sink",
]
