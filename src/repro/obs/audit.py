"""Offline mechanism audit: re-verify the paper's axioms from a log.

Tanaka et al. (PAPERS.md) make the point that *faithfulness* of a
mechanism implementation is itself an auditable property.  This module
turns AGT-RAM's axioms into exactly that: given nothing but a recorded
JSONL event log (:mod:`repro.obs.export`), it re-checks, round by round,
that

* the winner was the **argmax** of the round's bids (Figure 2 line 10),
* the payment was the **exact second price** — the best report excluding
  the winner's own, clamped at the zero reserve (Axiom 5); batched
  rounds are checked against the uniform clearing price (the best
  rejected report) instead,
* **capacity** was never violated: each allocated object fit the
  winner's recorded residual, residuals shrink consistently across
  rounds, and every capacity rejection was justified.

**Faulty runs** are audited *modulo the fault log*: a
:class:`~repro.obs.events.TimeoutEvent` declares which agents' bids
were lost to the channel that round, and exactly those agents are
excluded from the argmax and second-price checks — the central body
can only be held to the bids that reached it.  The declaration is
itself checked: a timeout naming an agent that never bid is a
structure violation, and a *winner* whose bid the log claims was lost
is a winner violation.  Fault, election, checkpoint, and recovery
events are tallied in the report.

**Byzantine runs** are audited *modulo the rejection log* the same
way: a :class:`~repro.obs.events.ValidationEvent` declares a bid the
trust boundary rejected, and that agent is excluded from the round's
argmax/second-price verification (a rejected bid cannot win — if it
does, that's a winner violation).  Additionally, the audit
cross-references :class:`~repro.obs.events.QuarantineEvent` records
against second-price payments: a round whose paid price was *set* by
an agent the run later quarantined is reported as a **tainted
payment** — the post-hoc measure of how much payment distortion a
collusion or inflation campaign achieved before detection caught it.
Tainted payments are reported, not flagged as violations: the central
body priced correctly given the bids it could not yet know were
manipulated.

Any discrepancy — a corrupted log, a buggy reimplementation, a
non-truthful payment rule — surfaces as a :class:`AuditViolation`.
``python -m repro audit run.jsonl`` is the CLI wrapper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from repro.obs.events import (
    AdversaryEvent,
    BidEvent,
    CapacityReject,
    CheckpointEvent,
    ElectionEvent,
    Event,
    FailoverEvent,
    FaultEvent,
    HealEvent,
    HedgeEvent,
    ManipulationEvent,
    NNUpdateEvent,
    PartitionEvent,
    PaymentEvent,
    QuarantineEvent,
    ReauctionEvent,
    ReconcileEvent,
    RecoveryEvent,
    RequestEvent,
    RequestTimeout,
    RoundEnd,
    RoundStart,
    RunEnd,
    RunStart,
    ServeEnd,
    ServeStart,
    ShedEvent,
    TimeoutEvent,
    ValidationEvent,
    WinnerEvent,
)

__all__ = [
    "AuditViolation",
    "AuditReport",
    "TaintedPayment",
    "audit_events",
    "audit_stream",
    "audit_files",
    "audit_file",
    "ShardedAuditReport",
    "audit_sharded_stream",
    "audit_sharded_events",
    "audit_sharded_files",
    "audit_sharded_file",
    "ServingViolation",
    "ServingAuditReport",
    "audit_serving_events",
    "audit_serving_file",
]

#: Relative tolerance for payment/bid float comparisons.
REL_TOL = 1e-9
#: Absolute tolerance floor for values near zero.
ABS_TOL = 1e-9


@dataclass(frozen=True)
class AuditViolation:
    """One broken invariant, anchored to a run and round."""

    run: str
    round: int
    kind: str  # "winner" | "payment" | "capacity" | "structure"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.run} round {self.round}: {self.detail}"


@dataclass(frozen=True)
class TaintedPayment:
    """A correctly-priced payment whose price setter was later
    quarantined — the audit's measure of pre-detection damage."""

    run: str
    round: int
    winner: int
    amount: float
    #: The agent whose bid set the second price.
    setter: int
    #: The round at which that agent was (first) quarantined/expelled.
    quarantined_at: int

    def __str__(self) -> str:
        return (
            f"{self.run} round {self.round}: payment {self.amount} to agent "
            f"{self.winner} was priced by agent {self.setter}, quarantined "
            f"at round {self.quarantined_at}"
        )


@dataclass
class AuditReport:
    """Outcome of auditing one event log."""

    runs_audited: int = 0
    rounds_audited: int = 0
    bids_seen: int = 0
    payments_verified: int = 0
    faults_seen: int = 0
    timeouts_seen: int = 0
    elections_seen: int = 0
    checkpoints_seen: int = 0
    recoveries_seen: int = 0
    validations_seen: int = 0
    manipulations_seen: int = 0
    quarantines_seen: int = 0
    adversarial_bids_seen: int = 0
    tainted_payments: list[TaintedPayment] = field(default_factory=list)
    violations: list[AuditViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def tainted_payment_total(self) -> float:
        """Sum paid in rounds priced by a later-quarantined agent."""
        return float(sum(t.amount for t in self.tainted_payments))

    def summary(self) -> str:
        lines = [
            f"runs audited       {self.runs_audited}",
            f"rounds audited     {self.rounds_audited}",
            f"bids seen          {self.bids_seen}",
            f"payments verified  {self.payments_verified}",
        ]
        if self.faults_seen or self.timeouts_seen or self.recoveries_seen:
            lines.append(
                f"faults seen        {self.faults_seen} "
                f"(timeouts {self.timeouts_seen}, elections "
                f"{self.elections_seen}, checkpoints {self.checkpoints_seen}, "
                f"recoveries {self.recoveries_seen})"
            )
        if (
            self.validations_seen
            or self.manipulations_seen
            or self.quarantines_seen
            or self.adversarial_bids_seen
        ):
            lines.append(
                f"byzantine log      {self.adversarial_bids_seen} injected, "
                f"{self.validations_seen} rejected, "
                f"{self.manipulations_seen} flagged, "
                f"{self.quarantines_seen} quarantine action(s)"
            )
        if self.tainted_payments:
            lines.append(
                f"tainted payments   {len(self.tainted_payments)} round(s) "
                f"priced by a later-quarantined agent, "
                f"{self.tainted_payment_total:.6g} total"
            )
            lines.extend(f"  {t}" for t in self.tainted_payments)
        if self.ok:
            if self.timeouts_seen:
                lines.append(
                    "PASS  every round paid the true second price, picked "
                    "the argmax bid, and respected capacity — modulo the "
                    "declared fault log"
                )
                return "\n".join(lines)
            lines.append(
                "PASS  every round paid the true second price, picked the "
                "argmax bid, and respected capacity"
            )
        else:
            lines.append(f"FAIL  {len(self.violations)} violation(s):")
            lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


@dataclass
class _Round:
    """Accumulated state of one in-flight round."""

    index: int
    bids: dict[int, BidEvent] = field(default_factory=dict)
    winners: list[WinnerEvent] = field(default_factory=list)
    payments: list[PaymentEvent] = field(default_factory=list)
    rejects: list[CapacityReject] = field(default_factory=list)
    #: Agents whose bids a TimeoutEvent declared lost; excluded from
    #: argmax/payment verification.
    missing: set[int] = field(default_factory=set)
    #: Agents whose bids a ValidationEvent declared rejected; likewise
    #: excluded (a rejected bid cannot win or set a price).
    rejected: set[int] = field(default_factory=set)


class _Auditor:
    """Streaming verifier; feed events in order, read the report after."""

    def __init__(self) -> None:
        self.report = AuditReport()
        self._run_stack: list[str] = []
        self._round: Optional[_Round] = None
        #: Per-run, per-agent expected residual capacity after the last
        #: commit (cross-round consistency check).
        self._residuals: dict[int, float] = {}
        #: Per-run second-price records awaiting quarantine resolution:
        #: (round, winner, amount, price-setter agents).
        self._priced: list[tuple[int, int, float, tuple[int, ...]]] = []
        #: Per-run quarantine/expel rounds per agent.
        self._quarantined_at: dict[int, list[int]] = {}

    # -- helpers -----------------------------------------------------------

    @property
    def _run_label(self) -> str:
        return self._run_stack[-1] if self._run_stack else "<no run>"

    def _flag(self, round_index: int, kind: str, detail: str) -> None:
        self.report.violations.append(
            AuditViolation(
                run=self._run_label, round=round_index, kind=kind, detail=detail
            )
        )

    def _finalize_run(self) -> None:
        """Resolve buffered second-price records against the quarantine
        log: a payment priced by a later-quarantined agent is tainted."""
        for rnd, winner, amount, setters in self._priced:
            for setter in setters:
                later = [
                    q for q in self._quarantined_at.get(setter, ()) if q >= rnd
                ]
                if later:
                    self.report.tainted_payments.append(
                        TaintedPayment(
                            run=self._run_label,
                            round=rnd,
                            winner=winner,
                            amount=amount,
                            setter=setter,
                            quarantined_at=min(later),
                        )
                    )
                    break  # one taint per payment is enough
        self._priced = []
        self._quarantined_at = {}

    # -- event dispatch ----------------------------------------------------

    def feed(self, event: Event) -> None:
        if isinstance(event, RunStart):
            self._run_stack.append(event.algorithm)
            self._residuals = {}
            self.report.runs_audited += 1
        elif isinstance(event, RunEnd):
            self._finalize_run()
            if self._run_stack:
                self._run_stack.pop()
            self._residuals = {}
        elif isinstance(event, RoundStart):
            if self._round is not None:
                self._flag(
                    self._round.index,
                    "structure",
                    f"round {event.round} started before round "
                    f"{self._round.index} ended",
                )
            self._round = _Round(index=event.round)
        elif isinstance(event, BidEvent):
            if self._round is None:
                self._flag(event.round, "structure", "bid outside any round")
                return
            if event.agent in self._round.bids:
                self._flag(
                    event.round,
                    "structure",
                    f"agent {event.agent} bid twice in one round",
                )
                return
            self._round.bids[event.agent] = event
            self.report.bids_seen += 1
        elif isinstance(event, WinnerEvent):
            if self._round is None:
                self._flag(event.round, "structure", "winner outside any round")
                return
            self._round.winners.append(event)
        elif isinstance(event, PaymentEvent):
            if self._round is None:
                self._flag(event.round, "structure", "payment outside any round")
                return
            self._round.payments.append(event)
        elif isinstance(event, CapacityReject):
            if self._round is not None:
                self._round.rejects.append(event)
        elif isinstance(event, TimeoutEvent):
            self.report.timeouts_seen += 1
            if self._round is None:
                self._flag(event.round, "structure", "timeout outside any round")
                return
            for agent in event.agents:
                if agent not in self._round.bids:
                    self._flag(
                        event.round,
                        "structure",
                        f"timeout declares agent {agent}'s bid lost, but "
                        f"that agent never bid this round",
                    )
            self._round.missing.update(event.agents)
        elif isinstance(event, ValidationEvent):
            self.report.validations_seen += 1
            if self._round is not None and event.agent >= 0:
                self._round.rejected.add(event.agent)
        elif isinstance(event, ManipulationEvent):
            self.report.manipulations_seen += 1
        elif isinstance(event, QuarantineEvent):
            self.report.quarantines_seen += 1
            if event.action in ("quarantine", "expel"):
                self._quarantined_at.setdefault(event.agent, []).append(
                    event.round
                )
        elif isinstance(event, AdversaryEvent):
            self.report.adversarial_bids_seen += 1
        elif isinstance(event, FaultEvent):
            self.report.faults_seen += 1
        elif isinstance(event, ElectionEvent):
            self.report.elections_seen += 1
        elif isinstance(event, CheckpointEvent):
            self.report.checkpoints_seen += 1
        elif isinstance(event, RecoveryEvent):
            self.report.recoveries_seen += 1
        elif isinstance(event, NNUpdateEvent):
            pass
        elif isinstance(event, RoundEnd):
            if self._round is None:
                self._flag(event.round, "structure", "round_end without start")
                return
            self._verify_round(self._round, event)
            self._round = None
            self.report.rounds_audited += 1

    # -- the three axioms --------------------------------------------------

    def _verify_round(self, rnd: _Round, end: RoundEnd) -> None:
        if end.committed != len(rnd.winners):
            self._flag(
                rnd.index,
                "structure",
                f"round committed {end.committed} replica(s) but logged "
                f"{len(rnd.winners)} winner event(s)",
            )
        # Bids declared lost by a TimeoutEvent never reached the central
        # body, and bids a ValidationEvent declared rejected never
        # entered the decision, so the argmax/second-price invariants
        # hold over the *delivered, accepted* reports only.
        values = {
            a: b.value
            for a, b in rnd.bids.items()
            if a not in rnd.missing and a not in rnd.rejected
        }
        best = max(values.values()) if values else float("-inf")
        winner_agents = {w.agent for w in rnd.winners}

        for w in rnd.winners:
            if w.agent in rnd.missing:
                self._flag(
                    rnd.index,
                    "winner",
                    f"winner {w.agent}'s bid was declared lost by the "
                    f"round's timeout — a lost bid cannot win",
                )
                continue
            if w.agent in rnd.rejected:
                self._flag(
                    rnd.index,
                    "winner",
                    f"winner {w.agent}'s bid was rejected by the trust "
                    f"boundary — a rejected bid cannot win",
                )
                continue
            self._verify_winner(rnd, w, values, best)
            self._verify_capacity(rnd, w)
        for p in rnd.payments:
            self._verify_payment(rnd, p, values, winner_agents)
        for r in rnd.rejects:
            if r.reason == "capacity" and r.obj_size <= r.residual:
                self._flag(
                    rnd.index,
                    "capacity",
                    f"agent {r.agent} was capacity-rejected for object "
                    f"{r.obj} although size {r.obj_size} fits residual "
                    f"{r.residual}",
                )

    def _verify_winner(
        self,
        rnd: _Round,
        w: WinnerEvent,
        values: dict[int, float],
        best: float,
    ) -> None:
        bid = rnd.bids.get(w.agent)
        if bid is None:
            self._flag(
                rnd.index,
                "winner",
                f"winner {w.agent} never bid this round",
            )
            return
        if not (_close(bid.value, w.value) and bid.obj == w.obj):
            self._flag(
                rnd.index,
                "winner",
                f"winner record (obj {w.obj}, value {w.value}) does not "
                f"match agent {w.agent}'s bid (obj {bid.obj}, value "
                f"{bid.value})",
            )
        # Argmax (allowing ties in batched rounds, where every winner
        # must still be at least as good as every non-winner).
        if len(rnd.winners) == 1 and not _close(w.value, best) and w.value < best:
            self._flag(
                rnd.index,
                "winner",
                f"winner {w.agent} bid {w.value} but the round's best bid "
                f"was {best} — not the argmax",
            )
        elif len(rnd.winners) > 1:
            winner_agents = {x.agent for x in rnd.winners}
            best_rejected = max(
                (v for a, v in values.items() if a not in winner_agents),
                default=float("-inf"),
            )
            if w.value < best_rejected and not _close(w.value, best_rejected):
                self._flag(
                    rnd.index,
                    "winner",
                    f"batch winner {w.agent} bid {w.value}, below the best "
                    f"rejected bid {best_rejected}",
                )

    def _verify_payment(
        self,
        rnd: _Round,
        p: PaymentEvent,
        values: dict[int, float],
        winner_agents: set[int],
    ) -> None:
        if p.agent not in winner_agents:
            self._flag(
                rnd.index,
                "payment",
                f"payment of {p.amount} to non-winner {p.agent}",
            )
            return
        if p.rule == "second_price":
            others = [v for a, v in values.items() if a != p.agent]
            expected = max((v for v in others), default=0.0)
            expected = expected if math.isfinite(expected) and expected > 0 else 0.0
            if expected > 0:
                # Remember who set this price; resolved against the
                # quarantine log at run end (tainted-payment report).
                setters = tuple(
                    sorted(
                        a
                        for a, v in values.items()
                        if a != p.agent and _close(v, expected)
                    )
                )
                self._priced.append((rnd.index, p.agent, p.amount, setters))
        elif p.rule == "uniform":
            rejected = [
                v
                for a, v in values.items()
                if a not in winner_agents and math.isfinite(v) and v > 0
            ]
            expected = max(rejected, default=0.0)
        else:
            self._flag(
                rnd.index,
                "payment",
                f"rule {p.rule!r} is not a truthful second-price rule",
            )
            return
        if not _close(p.amount, expected):
            self._flag(
                rnd.index,
                "payment",
                f"agent {p.agent} was paid {p.amount} but the true "
                f"{p.rule} amount is {expected}",
            )
        else:
            self.report.payments_verified += 1

    def _verify_capacity(self, rnd: _Round, w: WinnerEvent) -> None:
        if w.obj_size > w.residual_before:
            self._flag(
                rnd.index,
                "capacity",
                f"object {w.obj} (size {w.obj_size}) exceeds agent "
                f"{w.agent}'s residual {w.residual_before}",
            )
            return
        known = self._residuals.get(w.agent)
        if known is not None and not _close(known, w.residual_before):
            self._flag(
                rnd.index,
                "capacity",
                f"agent {w.agent} claims residual {w.residual_before} but "
                f"{known} remained after its previous allocation",
            )
        self._residuals[w.agent] = w.residual_before - w.obj_size


def audit_stream(
    events: Iterable[Event],
    *,
    window: int = 0,
    on_window: Optional[Callable[[int, AuditReport], None]] = None,
) -> AuditReport:
    """Verify an event stream against the mechanism's axioms, one round
    at a time in bounded memory.

    The verifier is inherently streaming: per-round state is dropped at
    each ``RoundEnd``, so memory is bounded by the widest single round
    (plus the violation and tainted-payment lists — empty on a clean
    log) no matter how many gigabytes the stream spans.  Feed it a lazy
    iterator (:func:`~repro.obs.export.open_event_stream`), not a
    materialized list, to actually realize that bound.

    ``window`` > 0 reports progress: after every ``window`` audited
    rounds, ``on_window(rounds_audited, report)`` fires with the
    running report, so a long audit can stream verdicts (the CLI's
    ``--window N --stream`` prints one line per window).  Windowing
    never changes the verdict — the same auditor sees the same events
    in the same order; the callback is a read-only checkpoint.
    """
    if window < 0:
        raise ValueError("window must be >= 0")
    auditor = _Auditor()
    report = auditor.report
    next_mark = window if window else 0
    for event in events:
        auditor.feed(event)
        if window and report.rounds_audited >= next_mark:
            if on_window is not None:
                on_window(report.rounds_audited, report)
            next_mark += window
    if auditor._round is not None:
        auditor._flag(
            auditor._round.index, "structure", "log ends inside an open round"
        )
    # A log truncated before its RunEnd still gets its tainted-payment
    # resolution over whatever quarantine records were seen.
    auditor._finalize_run()
    return report


def audit_events(events: Iterable[Event]) -> AuditReport:
    """Verify a recorded event stream against the mechanism's axioms."""
    return audit_stream(events)


def audit_files(
    paths: Sequence[str | Path],
    *,
    window: int = 0,
    on_window: Optional[Callable[[int, AuditReport], None]] = None,
) -> AuditReport:
    """Audit one logical event log spread over files, lazily.

    Each path may be a single JSONL or binary log, or the logical name
    of a rotated chunk set (``events.jsonl`` standing for
    ``events.part00000.jsonl`` …) — resolution and format sniffing via
    :func:`~repro.obs.export.event_log_chunks` /
    :func:`~repro.obs.export.open_event_stream`.  Files are decoded
    record-by-record and chained into one stream, so a multi-file,
    multi-gigabyte log audits in bounded memory with verdicts identical
    to a whole-log audit.
    """
    from repro.obs.export import event_log_chunks, open_event_stream

    resolved: list[Path] = []
    for p in paths:
        resolved.extend(event_log_chunks(p))

    def chained() -> Iterable[Event]:
        for path in resolved:
            yield from open_event_stream(path)

    return audit_stream(chained(), window=window, on_window=on_window)


def audit_file(path: str | Path) -> AuditReport:
    """Load one event log (JSONL or binary, possibly chunked) and audit it."""
    return audit_files([path])


# -- sharded-central audit ----------------------------------------------------


@dataclass(frozen=True)
class _ShardCommit:
    """One committed regional allocation, as the cross-shard pass sees
    it (the payment is attached when the round's PaymentEvent lands)."""

    region: int
    server: int
    obj: int
    value: float
    size: int
    round: int
    payment: float = 0.0


@dataclass
class ShardedAuditReport:
    """Outcome of auditing one sharded-central event log.

    ``shards`` holds one flat :class:`AuditReport` per region: each
    shard's region-tagged rounds are demultiplexed into their own
    streaming :class:`_Auditor`, so every regional argmax, second price
    and residual chain is verified independently — with revoked
    capacity credited back from the declared
    :class:`~repro.obs.events.ReconcileEvent`\\ s, which is what the
    flat audit cannot do.

    The **cross-shard pass** re-derives the reconciliation from the log
    alone: it tracks the global ``(server, object)`` placement across
    all shards (a commit of an already-live pair is a
    ``double_allocation`` violation), groups each partition window's
    commits by island (from the :class:`~repro.obs.events.PartitionEvent`
    assignment), recomputes the contested objects and the
    lowest-cost-winner resolution, and checks the heal-time
    :class:`ReconcileEvent` declared exactly that outcome — conflicts,
    kept/revoked pairs, refunded capacity and clawed-back payments.  A
    heal without a reconcile, an undeclared divergence, or a revoked
    pair that was never committed all surface as cross violations.
    """

    shards: dict[int, AuditReport] = field(default_factory=dict)
    cross_violations: list[AuditViolation] = field(default_factory=list)
    partitions_seen: int = 0
    heals_seen: int = 0
    reconciles_seen: int = 0
    commits_seen: int = 0
    revocations_seen: int = 0
    #: Untagged infrastructure events seen outside any shard round.
    faults_seen: int = 0
    elections_seen: int = 0
    checkpoints_seen: int = 0
    recoveries_seen: int = 0
    validations_seen: int = 0
    manipulations_seen: int = 0
    quarantines_seen: int = 0
    adversarial_bids_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.cross_violations and all(
            r.ok for r in self.shards.values()
        )

    @property
    def violations(self) -> list[AuditViolation]:
        out = list(self.cross_violations)
        for r in self.shards.values():
            out.extend(r.violations)
        return out

    def summary(self) -> str:
        lines = [
            f"shards audited     {len(self.shards)}",
            f"rounds audited     "
            f"{sum(r.rounds_audited for r in self.shards.values())}",
            f"commits seen       {self.commits_seen}",
            f"payments verified  "
            f"{sum(r.payments_verified for r in self.shards.values())}",
            f"partitions         {self.partitions_seen} "
            f"(heals {self.heals_seen}, reconciles {self.reconciles_seen}, "
            f"revocations {self.revocations_seen})",
        ]
        for region in sorted(self.shards):
            r = self.shards[region]
            verdict = "ok" if r.ok else f"{len(r.violations)} violation(s)"
            lines.append(
                f"  shard {region}: {r.rounds_audited} round(s), "
                f"{r.payments_verified} payment(s) verified, {verdict}"
            )
        if self.ok:
            lines.append(
                "PASS  every shard paid its regional second price and "
                "picked its regional argmax, the global placement is "
                "conflict-free, and every split-brain divergence was "
                "declared and reconciled"
            )
        else:
            bad = self.violations
            lines.append(f"FAIL  {len(bad)} violation(s):")
            lines.extend(f"  {v}" for v in bad)
        return "\n".join(lines)


class _CrossShardAuditor:
    """The reconciliation re-derivation over the demuxed commit stream."""

    def __init__(self, report: ShardedAuditReport) -> None:
        self.report = report
        #: Live global placement: (server, obj) -> its commit record.
        self.placement: dict[tuple[int, int], _ShardCommit] = {}
        #: The active window's island assignment (None when healed).
        self.islands: Optional[tuple[int, ...]] = None
        self.window_commits: list[_ShardCommit] = []
        self.window_reconciled = False
        self.partition_round = -1

    def _flag(self, rnd: int, kind: str, detail: str) -> None:
        self.report.cross_violations.append(
            AuditViolation(run="cross-shard", round=rnd, kind=kind,
                           detail=detail)
        )

    def commit(self, c: _ShardCommit) -> None:
        self.report.commits_seen += 1
        pair = (c.server, c.obj)
        if pair in self.placement:
            self._flag(
                c.round, "capacity",
                f"double allocation: (server {c.server}, object {c.obj}) "
                f"committed in shard {c.region} but already live since "
                f"round {self.placement[pair].round}",
            )
            return
        self.placement[pair] = c
        if self.islands is not None:
            self.window_commits.append(c)

    def attach_payment(self, region: int, server: int, amount: float) -> None:
        """Bind a round's payment to its commit (payments follow their
        winner within the same regional round)."""
        for i in range(len(self.window_commits) - 1, -1, -1):
            c = self.window_commits[i]
            if c.region == region and c.server == server:
                self.window_commits[i] = _ShardCommit(
                    region=c.region, server=c.server, obj=c.obj,
                    value=c.value, size=c.size, round=c.round,
                    payment=amount,
                )
                pair = (c.server, c.obj)
                if pair in self.placement:
                    self.placement[pair] = self.window_commits[i]
                return

    def on_partition(self, e: PartitionEvent) -> None:
        self.report.partitions_seen += 1
        if self.islands is not None:
            self._flag(
                e.round, "structure",
                "partition declared while a previous window is still open",
            )
        self.islands = tuple(e.islands)
        self.window_commits = []
        self.window_reconciled = False
        self.partition_round = e.round

    def on_reconcile(self, e: ReconcileEvent) -> None:
        self.report.reconciles_seen += 1
        if self.islands is None:
            self._flag(
                e.round, "structure", "reconcile without an open partition"
            )
            return
        islands = self.islands
        # Independent re-derivation of the merge (mirrors the runner's
        # declared rule without importing it): an object committed by
        # >= 2 islands is contested; the highest-value commit survives,
        # ties to the lowest server id, then region, then round.
        by_obj: dict[int, list[_ShardCommit]] = {}
        for c in self.window_commits:
            by_obj.setdefault(c.obj, []).append(c)
        conflicts: list[int] = []
        kept: list[_ShardCommit] = []
        revoked: list[_ShardCommit] = []
        for obj in sorted(by_obj):
            group = by_obj[obj]
            committed_islands = {islands[c.region] for c in group}
            if len(committed_islands) < 2:
                continue
            conflicts.append(obj)
            winner = min(
                group, key=lambda c: (-c.value, c.server, c.region, c.round)
            )
            kept.append(winner)
            revoked.extend(c for c in group if c is not winner)
        order = lambda c: (c.obj, c.server)  # noqa: E731
        kept.sort(key=order)
        revoked.sort(key=order)

        if tuple(conflicts) != tuple(e.conflicts):
            self._flag(
                e.round, "structure",
                f"reconcile declares conflicts {list(e.conflicts)} but the "
                f"window's commits contest {conflicts}",
            )
        expected_kept = tuple((c.server, c.obj) for c in kept)
        if expected_kept != tuple(e.kept):
            self._flag(
                e.round, "winner",
                f"reconcile keeps {list(e.kept)} but the lowest-cost-winner "
                f"rule keeps {list(expected_kept)}",
            )
        expected_revoked = tuple((c.server, c.obj) for c in revoked)
        if expected_revoked != tuple(e.revoked):
            self._flag(
                e.round, "winner",
                f"reconcile revokes {list(e.revoked)} but the "
                f"lowest-cost-winner rule revokes {list(expected_revoked)}",
            )
        expected_cap = sum(c.size for c in revoked)
        if e.refunded_capacity != expected_cap:
            self._flag(
                e.round, "capacity",
                f"reconcile refunds {e.refunded_capacity} capacity unit(s) "
                f"but the revoked commits total {expected_cap}",
            )
        expected_pay = float(sum(c.payment for c in revoked))
        if not _close(e.refunded_payment, expected_pay):
            self._flag(
                e.round, "payment",
                f"reconcile claws back {e.refunded_payment} but the revoked "
                f"commits were paid {expected_pay}",
            )
        expected_reauction = tuple(sorted({c.obj for c in revoked}))
        if expected_reauction != tuple(e.reauctioned):
            self._flag(
                e.round, "structure",
                f"reconcile re-auctions {list(e.reauctioned)} but the "
                f"revoked objects are {list(expected_reauction)}",
            )
        # Apply the *declared* revocations to the global placement and
        # credit the capacity back into the owning shard's residual
        # chain (the per-shard auditors can then verify post-heal
        # rounds against refunded residuals).
        self.report.revocations_seen += len(e.revoked)
        for server, obj in e.revoked:
            c = self.placement.pop((server, obj), None)
            if c is None:
                self._flag(
                    e.round, "structure",
                    f"reconcile revokes (server {server}, object {obj}) "
                    "which is not a live allocation",
                )
                continue
            shard = self.report.shards.get(c.region)
            if shard is not None:
                # Mutate the shard auditor's expected-residual chain via
                # the report's back-reference (set in audit_sharded).
                auditor = getattr(shard, "_auditor", None)
                if auditor is not None and server in auditor._residuals:
                    auditor._residuals[server] += c.size
        self.window_reconciled = True

    def on_heal(self, e: HealEvent) -> None:
        self.report.heals_seen += 1
        if self.islands is None:
            self._flag(e.round, "structure", "heal without an open partition")
            return
        if tuple(e.islands) != self.islands:
            self._flag(
                e.round, "structure",
                f"heal declares islands {list(e.islands)} but the open "
                f"partition split {list(self.islands)}",
            )
        if not self.window_reconciled:
            self._flag(
                e.round, "structure",
                "heal without a reconcile: the window's divergence was "
                "never declared",
            )
        if e.divergent != len(self.window_commits):
            self._flag(
                e.round, "structure",
                f"heal declares {e.divergent} divergent commit(s) but the "
                f"window logged {len(self.window_commits)}",
            )
        self.islands = None
        self.window_commits = []
        self.window_reconciled = False

    def finish(self) -> None:
        if self.islands is not None:
            self._flag(
                self.partition_round, "structure",
                "log ends inside an open partition window (no heal)",
            )


def audit_sharded_stream(events: Iterable[Event]) -> ShardedAuditReport:
    """Audit a sharded-central event log, per shard and cross-shard.

    Region-tagged round events are demultiplexed into one streaming
    flat :class:`_Auditor` per shard (each sees a synthetic run of its
    own region's rounds), while the cross-shard pass follows partition
    / reconcile / heal declarations over the combined commit stream —
    see :class:`ShardedAuditReport`.  Untagged infrastructure events
    (faults, elections, checkpoints, recoveries, the Byzantine layer)
    are routed to the shard whose round is currently open, or tallied
    globally when none is.
    """
    report = ShardedAuditReport()
    cross = _CrossShardAuditor(report)
    auditors: dict[int, _Auditor] = {}
    run_label = "Sharded-AGT-RAM"
    open_shard: Optional[int] = None
    #: The open round's winner sizes, for payment attachment.
    pending_winner: Optional[WinnerEvent] = None

    def shard_auditor(region: int) -> _Auditor:
        auditor = auditors.get(region)
        if auditor is None:
            auditor = _Auditor()
            auditor.feed(RunStart(t=0.0, algorithm=f"{run_label}/shard{region}"))
            auditors[region] = auditor
            report.shards[region] = auditor.report
            # Back-reference for the cross pass's residual refunds.
            auditor.report._auditor = auditor  # type: ignore[attr-defined]
        return auditor

    for event in events:
        nonlocal_region = getattr(event, "region", -1)
        if isinstance(event, RunStart):
            run_label = event.algorithm
        elif isinstance(event, RunEnd):
            for auditor in auditors.values():
                auditor.feed(
                    RunEnd(t=event.t, algorithm=auditor._run_label,
                           otc=event.otc, rounds=event.rounds)
                )
        elif isinstance(event, PartitionEvent):
            cross.on_partition(event)
        elif isinstance(event, ReconcileEvent):
            cross.on_reconcile(event)
        elif isinstance(event, HealEvent):
            cross.on_heal(event)
        elif isinstance(
            event,
            (RoundStart, BidEvent, WinnerEvent, PaymentEvent,
             CapacityReject, RoundEnd),
        ) and nonlocal_region >= 0:
            auditor = shard_auditor(nonlocal_region)
            if isinstance(event, RoundStart):
                open_shard = nonlocal_region
                pending_winner = None
            auditor.feed(event)
            if isinstance(event, WinnerEvent):
                pending_winner = event
                cross.commit(
                    _ShardCommit(
                        region=nonlocal_region, server=event.agent,
                        obj=event.obj, value=event.value,
                        size=event.obj_size, round=event.round,
                    )
                )
            elif isinstance(event, PaymentEvent):
                if (
                    pending_winner is not None
                    and pending_winner.agent == event.agent
                ):
                    cross.attach_payment(
                        nonlocal_region, event.agent, event.amount
                    )
            elif isinstance(event, RoundEnd):
                open_shard = None
                pending_winner = None
        else:
            # Untagged infrastructure / Byzantine events.
            if open_shard is not None:
                shard_auditor(open_shard).feed(event)
            elif isinstance(event, FaultEvent):
                report.faults_seen += 1
            elif isinstance(event, ElectionEvent):
                report.elections_seen += 1
            elif isinstance(event, CheckpointEvent):
                report.checkpoints_seen += 1
            elif isinstance(event, RecoveryEvent):
                report.recoveries_seen += 1
            elif isinstance(event, ValidationEvent):
                report.validations_seen += 1
            elif isinstance(event, ManipulationEvent):
                report.manipulations_seen += 1
            elif isinstance(event, QuarantineEvent):
                report.quarantines_seen += 1
            elif isinstance(event, AdversaryEvent):
                report.adversarial_bids_seen += 1

    cross.finish()
    for auditor in auditors.values():
        if auditor._round is not None:
            auditor._flag(
                auditor._round.index, "structure",
                "log ends inside an open round",
            )
        auditor._finalize_run()
    return report


def audit_sharded_events(events: Iterable[Event]) -> ShardedAuditReport:
    """Verify a recorded sharded-central stream per shard and cross-shard."""
    return audit_sharded_stream(events)


def audit_sharded_files(paths: Sequence[str | Path]) -> ShardedAuditReport:
    """Audit one logical sharded event log spread over files, lazily."""
    from repro.obs.export import event_log_chunks, open_event_stream

    resolved: list[Path] = []
    for p in paths:
        resolved.extend(event_log_chunks(p))

    def chained() -> Iterable[Event]:
        for path in resolved:
            yield from open_event_stream(path)

    return audit_sharded_stream(chained())


def audit_sharded_file(path: str | Path) -> ShardedAuditReport:
    """Load one event log (JSONL or binary, possibly chunked) and audit
    it as a sharded-central run."""
    return audit_sharded_files([path])


# -- serving audit -----------------------------------------------------------


@dataclass(frozen=True)
class ServingViolation:
    """One broken serving invariant, anchored to a campaign tick."""

    tick: int
    kind: str  # "placement" | "structure"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] tick {self.tick}: {self.detail}"


@dataclass
class ServingAuditReport:
    """Outcome of auditing one serving campaign's event log.

    The core check is **placement consistency**: every request the log
    claims was served must have been answered by a server that actually
    hosted the object at that logical time — a replica in the
    :class:`~repro.obs.events.ServeStart` snapshot as evolved by every
    committed :class:`~repro.obs.events.ReauctionEvent` delta, or the
    object's primary (primaries never drop their copy).  A router that
    silently reads from a stale or never-valid replica shows up here as
    a placement violation.
    """

    requests_audited: int = 0
    served_ok: int = 0
    failed: int = 0
    sheds_seen: int = 0
    hedges_seen: int = 0
    failovers_seen: int = 0
    timeouts_seen: int = 0
    reauctions_seen: int = 0
    violations: list[ServingViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"requests audited   {self.requests_audited}",
            f"served ok          {self.served_ok}",
            f"failed             {self.failed}",
            f"shed               {self.sheds_seen}",
            f"hedges             {self.hedges_seen}",
            f"failovers          {self.failovers_seen}",
            f"attempt timeouts   {self.timeouts_seen}",
            f"re-auctions        {self.reauctions_seen}",
        ]
        if self.ok:
            lines.append(
                "PASS  every served request was answered by a replica in "
                "the placement (or the primary) at that logical time"
            )
        else:
            lines.append(f"FAIL  {len(self.violations)} violation(s):")
            lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def audit_serving_events(events: Iterable[Event]) -> ServingAuditReport:
    """Verify a serving campaign's log for placement consistency.

    Mechanism events (including the nested re-auction runs' own
    bid/winner/payment stream) are ignored here — feed the same log to
    :func:`audit_events` for the axiom checks.
    """
    report = ServingAuditReport()
    primaries: Optional[tuple[int, ...]] = None
    placement: set[tuple[int, int]] = set()
    counted = {"ok": 0, "failed": 0, "shed": 0}

    def flag(tick: int, kind: str, detail: str) -> None:
        report.violations.append(ServingViolation(tick, kind, detail))

    for e in events:
        if isinstance(e, ServeStart):
            if primaries is not None:
                flag(0, "structure", "second serve_start in one log")
            primaries = e.primaries
            placement = set(e.replicas)
            for k, p in enumerate(primaries):
                if (p, k) in placement:
                    flag(
                        0,
                        "structure",
                        f"replica list duplicates primary copy ({p}, {k})",
                    )
        elif isinstance(e, RequestEvent):
            report.requests_audited += 1
            if primaries is None:
                flag(e.tick, "structure", "request before serve_start")
                continue
            if e.outcome == "ok":
                report.served_ok += 1
                counted["ok"] += 1
                if e.replica < 0:
                    flag(
                        e.tick,
                        "placement",
                        f"request for object {e.obj} marked ok with no "
                        "serving replica",
                    )
                elif not (
                    (e.replica, e.obj) in placement
                    or (0 <= e.obj < len(primaries) and primaries[e.obj] == e.replica)
                ):
                    flag(
                        e.tick,
                        "placement",
                        f"object {e.obj} served by server {e.replica}, "
                        "which holds no replica at this logical time",
                    )
            else:
                report.failed += 1
                counted["failed"] += 1
        elif isinstance(e, ShedEvent):
            report.sheds_seen += 1
            counted["shed"] += 1
        elif isinstance(e, HedgeEvent):
            report.hedges_seen += 1
        elif isinstance(e, FailoverEvent):
            report.failovers_seen += 1
        elif isinstance(e, RequestTimeout):
            report.timeouts_seen += 1
        elif isinstance(e, ReauctionEvent):
            report.reauctions_seen += 1
            if primaries is None:
                flag(e.tick, "structure", "reauction before serve_start")
                continue
            for pair in e.removed:
                server, obj = pair
                if 0 <= obj < len(primaries) and primaries[obj] == server:
                    flag(
                        e.tick,
                        "placement",
                        f"reauction removed primary copy ({server}, {obj})",
                    )
                elif pair not in placement:
                    flag(
                        e.tick,
                        "structure",
                        f"reauction removed ({server}, {obj}) which was "
                        "not in the placement",
                    )
                else:
                    placement.discard(pair)
            for pair in e.added:
                server, obj = pair
                if pair in placement or (
                    0 <= obj < len(primaries) and primaries[obj] == server
                ):
                    flag(
                        e.tick,
                        "structure",
                        f"reauction added duplicate replica ({server}, {obj})",
                    )
                else:
                    placement.add(pair)
        elif isinstance(e, ServeEnd):
            if primaries is None:
                flag(0, "structure", "serve_end before serve_start")
                continue
            for name, logged in (
                ("served", e.served),
                ("failed", e.failed),
                ("shed", e.shed),
            ):
                seen = counted["ok" if name == "served" else name]
                if logged != seen:
                    flag(
                        0,
                        "structure",
                        f"serve_end claims {logged} {name} request(s) but "
                        f"the log records {seen}",
                    )
    return report


def audit_serving_file(path: str | Path) -> ServingAuditReport:
    """Load an event log (JSONL or binary, possibly chunked) and audit
    its serving campaign."""
    from repro.obs.export import event_log_chunks, open_event_stream

    def chained() -> Iterable[Event]:
        for chunk in event_log_chunks(path):
            yield from open_event_stream(chunk)

    return audit_serving_events(chained())
