"""Engine-equivalence proof harness: naive vs vectorized, bit for bit.

The delta-maintained :class:`~repro.drp.delta.DeltaBenefitEngine` is
only admissible because it is *indistinguishable* from the naive
full-matrix engine — same winners, same second prices, same final
scheme, same event stream.  This module turns that claim into a
checkable artifact:

1. **Identity pass** — run AGT-RAM once per engine under logical event
   time with a recording sink, then compare rounds, the final X matrix,
   per-agent payments and utilities, the exact OTC, and every recorded
   event *as serialized dicts* (so even float formatting must agree).
2. **Audit pass** — both event logs are re-verified by the offline
   mechanism audit (argmax winner, exact second price, capacity), so
   the two engines are not merely identical to each other but
   individually faithful to the axioms.
3. **Timing pass** — both engines run uninstrumented ``repeats`` times;
   the reported speedup is best-of-naive over best-of-vectorized.  The
   instrumented pass proves identity; this pass measures the win the
   fast path actually delivers (events and tracing off is exactly the
   regime the tight loop optimizes).

``python -m repro audit --compare-engines`` drives this and is what the
CI ``engine-equivalence`` job and the nightly scaling workflow gate on
(see docs/performance.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.drp.instance import DRPInstance
from repro.obs import events as ev
from repro.utils.timing import perf_counter

#: Engines whose runs are compared; naive first (it is the reference).
COMPARED_ENGINES = ("naive", "vectorized")


@dataclass
class EngineComparison:
    """Outcome of one naive-vs-vectorized comparison run."""

    scale: Optional[str]
    n_servers: int
    n_objects: int
    rounds: int
    replicas: int
    events_compared: int
    mismatches: list[str] = field(default_factory=list)
    audit_ok: bool = True
    naive_wall_s: float = 0.0
    vectorized_wall_s: float = 0.0
    repeats: int = 0

    @property
    def identical(self) -> bool:
        return not self.mismatches

    @property
    def speedup(self) -> float:
        if self.vectorized_wall_s <= 0.0:
            return float("inf") if self.naive_wall_s > 0.0 else 1.0
        return self.naive_wall_s / self.vectorized_wall_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "scale": self.scale,
            "n_servers": self.n_servers,
            "n_objects": self.n_objects,
            "rounds": self.rounds,
            "replicas": self.replicas,
            "events_compared": self.events_compared,
            "identical": self.identical,
            "mismatches": list(self.mismatches),
            "audit_ok": self.audit_ok,
            "naive_wall_s": self.naive_wall_s,
            "vectorized_wall_s": self.vectorized_wall_s,
            "speedup": self.speedup,
            "repeats": self.repeats,
        }


def _recorded_run(instance: DRPInstance, engine: str, **kwargs):
    """One instrumented run: (result, events-as-dicts)."""
    from repro.core.agt_ram import run_agt_ram

    sink = ev.RecordingSink()
    with ev.logical_time(), ev.capture(sink):
        result = run_agt_ram(instance, engine=engine, **kwargs)
    return result, sink.events


def compare_engines(
    instance: DRPInstance,
    *,
    repeats: int = 3,
    scale: Optional[str] = None,
    **mechanism_kwargs: Any,
) -> EngineComparison:
    """Prove run-level identity of the two engines on ``instance``.

    ``mechanism_kwargs`` are forwarded to both runs (payment rule,
    batch size, ...).  ``scale`` is a label recorded in the result.
    """
    from repro.core.agt_ram import run_agt_ram
    from repro.obs.audit import audit_events

    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    results: dict[str, Any] = {}
    logs: dict[str, list] = {}
    for engine in COMPARED_ENGINES:
        results[engine], logs[engine] = _recorded_run(
            instance, engine, **mechanism_kwargs
        )

    ref, cand = results["naive"], results["vectorized"]
    mismatches: list[str] = []

    def check(label: str, ok: bool) -> None:
        if not ok:
            mismatches.append(label)

    check("rounds", ref.rounds == cand.rounds)
    check("placements", np.array_equal(ref.state.x, cand.state.x))
    check("otc", ref.otc == cand.otc)
    check(
        "payments",
        np.array_equal(ref.extra["payments"], cand.extra["payments"]),
    )
    check(
        "utilities",
        np.array_equal(ref.extra["utilities"], cand.extra["utilities"]),
    )

    ref_events = [ev.asdict(e) for e in logs["naive"]]
    cand_events = [ev.asdict(e) for e in logs["vectorized"]]
    if len(ref_events) != len(cand_events):
        mismatches.append(
            f"event-count ({len(ref_events)} vs {len(cand_events)})"
        )
    else:
        for i, (a, b) in enumerate(zip(ref_events, cand_events)):
            if a != b:
                mismatches.append(f"event[{i}] ({a.get('type')} != {b.get('type')})")
                break

    audit_ok = all(
        audit_events(logs[engine]).ok for engine in COMPARED_ENGINES
    )

    # Each engine is timed in its own back-to-back block after untimed
    # warmups: the identity pass above leaves sizeable garbage (30k+
    # recorded events at the small preset) and cold allocator state, so
    # the first runs absorb collection pauses and page faults.
    # Interleaving the engines instead would be systematically unfair —
    # the naive engine's per-round full-matrix rebuilds churn hundreds
    # of MB through the allocator, and a vectorized run sandwiched
    # between two naive runs starts cache-cold every time.  Best-of-N
    # within a warm block is the standard estimator of each engine's
    # true cost.
    walls: dict[str, float] = {}
    for engine in COMPARED_ENGINES:
        for _ in range(2):
            run_agt_ram(instance, engine=engine, **mechanism_kwargs)
        best = float("inf")
        for _ in range(repeats):
            t0 = perf_counter()
            run_agt_ram(instance, engine=engine, **mechanism_kwargs)
            best = min(best, perf_counter() - t0)
        walls[engine] = best

    return EngineComparison(
        scale=scale,
        n_servers=instance.n_servers,
        n_objects=instance.n_objects,
        rounds=ref.rounds,
        replicas=ref.state.total_replicas(),
        events_compared=len(ref_events),
        mismatches=mismatches,
        audit_ok=audit_ok,
        naive_wall_s=walls["naive"],
        vectorized_wall_s=walls["vectorized"],
        repeats=repeats,
    )


def compare_engines_at_scale(
    scale: str, *, repeats: int = 3, **mechanism_kwargs: Any
) -> EngineComparison:
    """Run :func:`compare_engines` on a bench preset (tiny … large)."""
    from repro.experiments.instances import paper_instance
    from repro.obs.report import bench_config

    instance = paper_instance(bench_config(scale))
    return compare_engines(
        instance, repeats=repeats, scale=scale, **mechanism_kwargs
    )


def format_comparison(cmp: EngineComparison) -> str:
    """Human-readable report for one comparison."""
    label = cmp.scale or f"{cmp.n_servers}x{cmp.n_objects}"
    lines = [
        f"engine equivalence @ {label} "
        f"(M={cmp.n_servers}, N={cmp.n_objects}, rounds={cmp.rounds}, "
        f"replicas={cmp.replicas})",
        f"  identity : {'OK' if cmp.identical else 'MISMATCH'} "
        f"({cmp.events_compared} events compared bit-for-bit)",
        f"  audit    : {'OK' if cmp.audit_ok else 'VIOLATIONS'}",
        f"  wall     : naive {cmp.naive_wall_s * 1e3:.2f} ms, "
        f"vectorized {cmp.vectorized_wall_s * 1e3:.2f} ms "
        f"(best of {cmp.repeats})",
        f"  speedup  : {cmp.speedup:.2f}x",
    ]
    for m in cmp.mismatches:
        lines.append(f"  MISMATCH: {m}")
    return "\n".join(lines)
