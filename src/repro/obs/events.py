"""Structured event stream — the decision-granular half of ``repro.obs``.

Where :mod:`repro.obs.tracer` aggregates (span totals, counters), this
module *streams*: every mechanism decision — round boundaries, bids,
winner selection, payments, NN-table broadcasts, capacity rejections —
is emitted as a typed, schema-versioned record the moment it happens.
The stream is what the exporters (:mod:`repro.obs.export`) serialize and
what the offline audit (:mod:`repro.obs.audit`) re-verifies the paper's
axioms against.

The same disciplines as the tracer apply:

* **No-op by default.**  The active sink is :data:`NULL_SINK` unless one
  is installed; instrumented code gates every emission on a single
  ``sink.enabled`` attribute read.
* **contextvars registry.**  :func:`current` / :func:`install` /
  :func:`capture` mirror the tracer registry and are
  :mod:`contextvars`-based, so concurrent captures (thread-pool workers,
  future async code) never clobber each other.
* **Machine-readable.**  Every event serializes to a flat JSON-safe dict
  (:meth:`Event.to_dict`) and parses back (:func:`parse_event`), which
  is what makes the JSONL log a lossless transcript.

Timestamps are ``perf_counter`` seconds (monotonic, process-local):
good for ordering and durations, meaningless across processes.
"""

from __future__ import annotations

import math
import time
from array import array
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import asdict, dataclass, field, fields
from typing import Any, ClassVar, Iterable, Iterator, Optional

try:  # numpy backs the columnar buffers when present
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a core dependency
    _np = None  # type: ignore[assignment]

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "Event",
    "RunStart",
    "RunEnd",
    "RoundStart",
    "BidEvent",
    "WinnerEvent",
    "PaymentEvent",
    "NNUpdateEvent",
    "CapacityReject",
    "RoundEnd",
    "FaultEvent",
    "TimeoutEvent",
    "ElectionEvent",
    "CheckpointEvent",
    "RecoveryEvent",
    "ValidationEvent",
    "ManipulationEvent",
    "QuarantineEvent",
    "AdversaryEvent",
    "ServeStart",
    "ServeEnd",
    "RequestEvent",
    "RequestTimeout",
    "HedgeEvent",
    "ShedEvent",
    "FailoverEvent",
    "ReauctionEvent",
    "PartitionEvent",
    "HealEvent",
    "ReconcileEvent",
    "InvariantEvent",
    "parse_event",
    "logical_time",
    "EventSink",
    "NullSink",
    "RecordingSink",
    "ColumnarSink",
    "NULL_SINK",
    "current",
    "install",
    "capture",
    "RoundSeries",
    "RoundBlock",
    "ColumnarRoundBuffer",
    "iter_block_events",
    "now",
    "now_block",
]

#: Version of the event record schema.  Bumps only on breaking changes
#: (field removal / retyping); readers reject newer versions.
EVENT_SCHEMA_VERSION = 1

#: Monotonic clock used for every event timestamp.
now = time.perf_counter


def _wall_now_block(n: int) -> tuple[float, float]:
    """Reserve timestamps for ``n`` events emitted together.

    Returns ``(start, step)``: event ``j`` of the block is stamped
    ``start + step * j``.  Under the wall clock a deferred flush cannot
    recover per-decision times, so the whole block shares one
    ``perf_counter`` reading (``step`` 0) — ordering is preserved and
    stamps stay non-decreasing across blocks.  :func:`logical_time`
    swaps this for a tick-per-event variant so buffered emission stays
    byte-identical to the per-object path.
    """
    return now(), 0.0


#: Block-granular clock used by the columnar pipeline; swapped together
#: with :data:`now` by :func:`logical_time`.
now_block = _wall_now_block


# -- event records -----------------------------------------------------------


@dataclass(frozen=True)
class Event:
    """Base event: a timestamp plus a class-level ``type`` tag."""

    type: ClassVar[str] = "event"

    #: ``perf_counter`` seconds at emission (monotonic, process-local).
    t: float

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-safe dict, ``type`` included."""
        d = asdict(self)
        d["type"] = self.type
        return d


@dataclass(frozen=True)
class RunStart(Event):
    """One mechanism/baseline execution begins (template-hook emitted)."""

    type: ClassVar[str] = "run_start"

    algorithm: str = ""


@dataclass(frozen=True)
class RunEnd(Event):
    """The matching execution ends, with its headline outcome."""

    type: ClassVar[str] = "run_end"

    algorithm: str = ""
    otc: float = 0.0
    rounds: int = 0


@dataclass(frozen=True)
class RoundStart(Event):
    """A mechanism round opens (Figure 2, top of the loop).

    ``region`` is ``-1`` for the flat single-central mechanism; the
    hierarchical/sharded runtimes tag each regional sub-round with its
    region id so per-shard streams can be demultiplexed
    (:func:`repro.obs.audit.audit_sharded_events`).
    """

    type: ClassVar[str] = "round_start"

    round: int = 0
    region: int = -1


@dataclass(frozen=True)
class BidEvent(Event):
    """One agent's dominant report t_i^k (Figure 2 line 08)."""

    type: ClassVar[str] = "bid"

    round: int = 0
    agent: int = -1
    obj: int = -1
    value: float = 0.0
    #: Region whose (regional) central received the bid; -1 = flat.
    region: int = -1


@dataclass(frozen=True)
class WinnerEvent(Event):
    """OMAX selection (line 10): the winning (agent, object, value).

    ``obj_size`` and ``residual_before`` (the winner's free capacity
    *before* the commit) are recorded so the offline audit can verify
    capacity feasibility from the log alone.
    """

    type: ClassVar[str] = "winner"

    round: int = 0
    agent: int = -1
    obj: int = -1
    value: float = 0.0
    obj_size: int = 0
    residual_before: int = 0
    #: Region whose sealed-bid auction the winner cleared; -1 = flat.
    region: int = -1


@dataclass(frozen=True)
class PaymentEvent(Event):
    """Payment issued to a round winner (lines 11-12, Axiom 5).

    ``rule`` names the pricing rule in force (``"second_price"``,
    ``"uniform"`` for batched clearing, ``"first_price"`` for the
    ablation) so the audit knows what to re-verify.
    """

    type: ClassVar[str] = "payment"

    round: int = 0
    agent: int = -1
    amount: float = 0.0
    rule: str = "second_price"
    #: Region whose central issued the payment; -1 = flat.
    region: int = -1


@dataclass(frozen=True)
class NNUpdateEvent(Event):
    """NN-table broadcast after a commit (lines 13, 19-21)."""

    type: ClassVar[str] = "nn_update"

    round: int = 0
    obj: int = -1
    agents: int = 0


@dataclass(frozen=True)
class CapacityReject(Event):
    """A provisional winner was skipped because the object no longer
    fits its residual capacity (stale bid in a batched/warm-start round)."""

    type: ClassVar[str] = "capacity_reject"

    round: int = 0
    agent: int = -1
    obj: int = -1
    obj_size: int = 0
    residual: int = 0
    #: "capacity" (object no longer fits) or "duplicate" (agent already
    #: hosts the object — possible under warm starts).
    reason: str = "capacity"
    #: Region whose round skipped the provisional winner; -1 = flat.
    region: int = -1


@dataclass(frozen=True)
class RoundEnd(Event):
    """A round closes.  ``committed`` counts replicas allocated this
    round (0 terminates the game); ``otc`` is the system OTC after it."""

    type: ClassVar[str] = "round_end"

    round: int = 0
    committed: int = 0
    otc: float = 0.0
    #: Region of the sub-round that closed; -1 = flat.
    region: int = -1


@dataclass(frozen=True)
class FaultEvent(Event):
    """One injected fault (:mod:`repro.runtime.faults`).

    ``kind`` names the fault: ``"drop"``, ``"delay"``, ``"duplicate"``,
    ``"straggler"``, ``"agent_crash"``, or ``"central_crash"``.
    ``target`` is the affected traffic class (``"bid"``,
    ``"nn_update"``, ``"resync"``; empty for process faults) and
    ``agent`` the affected agent (``-1`` for the central body).
    """

    type: ClassVar[str] = "fault"

    round: int = 0
    kind: str = ""
    agent: int = -1
    target: str = ""
    detail: str = ""


@dataclass(frozen=True)
class TimeoutEvent(Event):
    """The round's bid deadline passed with bids still missing.

    ``agents`` lists the bidders whose reports never arrived in time
    (the audit excludes exactly these from its argmax/second-price
    re-verification — a dropped bid is not a wrong winner).
    ``quorum_met`` records whether the central body proceeded with the
    ``received`` of ``expected`` bids or stalled the round.
    """

    type: ClassVar[str] = "timeout"

    round: int = 0
    agents: tuple[int, ...] = ()
    expected: int = 0
    received: int = 0
    quorum_met: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "agents", tuple(self.agents))


@dataclass(frozen=True)
class ElectionEvent(Event):
    """A §7 central-body handover: the live agents elected a new acting
    central.  ``voters`` counts the live electorate."""

    type: ClassVar[str] = "election"

    round: int = 0
    candidate: int = -1
    voters: int = 0


@dataclass(frozen=True)
class CheckpointEvent(Event):
    """The central body snapshotted its state (round counter + replica
    map) after ``allocations`` total commits."""

    type: ClassVar[str] = "checkpoint"

    round: int = 0
    allocations: int = 0


@dataclass(frozen=True)
class RecoveryEvent(Event):
    """A crashed component came back.

    ``kind`` is ``"agent"`` (a crashed agent rejoined the game) or
    ``"central"`` (the acting central restored ``checkpoint_round``'s
    snapshot and re-learned ``replayed`` newer commits from the agents'
    state-sync reports).
    """

    type: ClassVar[str] = "recovery"

    round: int = 0
    kind: str = "agent"
    agent: int = -1
    checkpoint_round: int = -1
    replayed: int = 0
    acting_central: int = -1


@dataclass(frozen=True)
class ValidationEvent(Event):
    """The trust boundary rejected a malformed or infeasible bid.

    Emitted by the :class:`~repro.runtime.adversary.MessageValidator`
    in front of the central body, or by
    :class:`~repro.runtime.central.CentralBody` itself on wire-level
    protocol violations.  ``kind`` names the failed check:

    * ``"schema"`` — non-finite value, out-of-range object id, or a
      sequence number beyond the retry budget;
    * ``"feasibility"`` — a bid for an object the sender already hosts;
    * ``"overclaim"`` — a bid for an object exceeding the sender's
      residual capacity;
    * ``"equivocation"`` — two bids from one sender with conflicting
      payloads in one round (all of that sender's copies are discarded);
    * ``"unknown_sender"`` — a bid from an out-of-range agent id.

    The rejected bid is excluded from the round's decision; the audit
    excludes the named agent from that round's argmax/second-price
    checks (a rejected bid cannot win or set a price).
    """

    type: ClassVar[str] = "validation"

    round: int = 0
    agent: int = -1
    kind: str = ""
    obj: int = -1
    value: float = 0.0
    detail: str = ""


@dataclass(frozen=True)
class ManipulationEvent(Event):
    """The online detector flagged a delivered bid as manipulated.

    The :class:`~repro.runtime.adversary.ManipulationDetector`
    recomputes each delivered bid's valuation from the central body's
    own benefit oracle; a report deviating beyond tolerance is flagged
    here (``reported`` vs ``recomputed``) and counts one strike toward
    quarantine.  Unlike a :class:`ValidationEvent` the bid *was*
    well-formed and did enter the decision — detection is advisory
    until the quarantine policy acts on it.
    """

    type: ClassVar[str] = "manipulation"

    round: int = 0
    agent: int = -1
    kind: str = "misreport"
    obj: int = -1
    reported: float = 0.0
    recomputed: float = 0.0


@dataclass(frozen=True)
class QuarantineEvent(Event):
    """The quarantine policy changed an agent's standing.

    ``action`` is ``"quarantine"`` (strikes reached the threshold; the
    agent is excluded from bidding until ``until_round``),
    ``"release"`` (probation served, the agent rejoins the game), or
    ``"expel"`` (repeat offender removed for the rest of the run).
    """

    type: ClassVar[str] = "quarantine"

    round: int = 0
    agent: int = -1
    action: str = "quarantine"
    strikes: int = 0
    until_round: int = -1


@dataclass(frozen=True)
class AdversaryEvent(Event):
    """Ground truth: one injected Byzantine manipulation.

    Emitted by the :class:`~repro.runtime.adversary.AdversaryInjector`
    for every bid it actually altered (identity transforms are not
    recorded), so a campaign can score detection precision/recall by
    joining these records against :class:`ValidationEvent` /
    :class:`ManipulationEvent` on ``(round, agent)``.
    """

    type: ClassVar[str] = "adversary"

    round: int = 0
    agent: int = -1
    behavior: str = ""
    obj: int = -1
    value: float = 0.0
    detail: str = ""


@dataclass(frozen=True)
class InvariantEvent(Event):
    """An online safety-invariant monitor observed a violation.

    Emitted by :class:`repro.runtime.invariants.InvariantMonitor` the
    moment a check fails *during* a run (the offline audit re-derives
    the same properties after the fact).  ``invariant`` names the
    violated check:

    * ``"capacity"`` — a commit exceeded the winner's residual capacity
      (or broke the monitor's reconstructed residual chain);
    * ``"double_allocation"`` — a (server, object) pair was committed
      while already live, without an intervening declared revocation;
    * ``"payment_bound"`` — a round's payment exceeded the winning bid
      (second-price payments never do);
    * ``"availability_floor"`` — the served fraction over the sliding
      request window dropped below the configured floor;
    * ``"undeclared_revocation"`` — a reconcile declared a revocation
      for a pair that was never committed.

    ``round`` is the mechanism round (``-1`` on the serving path) and
    ``tick`` the serving request index (``-1`` on the mechanism path).
    """

    type: ClassVar[str] = "invariant"

    invariant: str = ""
    round: int = -1
    tick: int = -1
    agent: int = -1
    obj: int = -1
    value: float = 0.0
    bound: float = 0.0
    detail: str = ""


def _pairs(value: Any) -> tuple[tuple[int, int], ...]:
    """Coerce a (server, obj)-pair sequence (or its JSON list-of-lists
    form) back into the canonical nested-tuple representation."""
    return tuple((int(a), int(b)) for a, b in value)


@dataclass(frozen=True)
class ServeStart(Event):
    """A serving campaign begins against a frozen placement snapshot.

    ``primaries`` maps object -> primary server and ``replicas`` lists
    every (server, object) replica pair in the placement at campaign
    start.  Together they seed the serving audit's placement model,
    which :class:`ReauctionEvent` deltas then evolve.
    """

    type: ClassVar[str] = "serve_start"

    workload: str = ""
    n_requests: int = 0
    n_servers: int = 0
    n_objects: int = 0
    primaries: tuple[int, ...] = ()
    replicas: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "primaries", tuple(int(p) for p in self.primaries)
        )
        object.__setattr__(self, "replicas", _pairs(self.replicas))


@dataclass(frozen=True)
class ServeEnd(Event):
    """The serving campaign's headline outcome (the SLO-gate inputs)."""

    type: ClassVar[str] = "serve_end"

    served: int = 0
    shed: int = 0
    failed: int = 0
    hedges: int = 0
    failovers: int = 0
    reauctions: int = 0
    availability: float = 1.0
    p50: float = 0.0
    p99: float = 0.0


@dataclass(frozen=True)
class RequestEvent(Event):
    """One client request resolved (or abandoned) by the router.

    ``tick`` is the request's index in the campaign (the serving loop's
    logical clock); ``server`` is the origin server the client maps to;
    ``replica`` is the server that actually answered (``-1`` when every
    attempt failed).  ``outcome`` is ``"ok"`` or ``"failed"`` — shed
    requests emit :class:`ShedEvent` instead of a ``RequestEvent``.
    """

    type: ClassVar[str] = "request"

    tick: int = 0
    client: int = -1
    server: int = -1
    obj: int = -1
    kind: str = "read"
    replica: int = -1
    latency: float = 0.0
    attempts: int = 1
    hedged: bool = False
    outcome: str = "ok"


@dataclass(frozen=True)
class RequestTimeout(Event):
    """One attempt at ``replica`` exceeded the per-request deadline.

    Distinct from the mechanism-layer :class:`TimeoutEvent` (a round's
    bid deadline): this is data-path, one record per timed-out attempt,
    so attempt counts in :class:`RequestEvent` can be cross-checked.
    """

    type: ClassVar[str] = "request_timeout"

    tick: int = 0
    obj: int = -1
    replica: int = -1
    attempt: int = 0
    deadline: float = 0.0


@dataclass(frozen=True)
class HedgeEvent(Event):
    """A slow read was hedged to a second replica.

    The first attempt at ``primary`` exceeded the hedge ``threshold``
    (a trailing latency quantile), so a duplicate read was issued to
    ``backup``; ``winner`` is whichever answered first.
    """

    type: ClassVar[str] = "hedge"

    tick: int = 0
    obj: int = -1
    primary: int = -1
    backup: int = -1
    winner: int = -1
    threshold: float = 0.0


@dataclass(frozen=True)
class ShedEvent(Event):
    """Admission control rejected the request before routing.

    ``tokens`` is the token-bucket level at rejection time (always
    below 1.0 — sheds happen only when the bucket cannot cover one
    request).  Shed requests are excluded from the availability SLO's
    denominator and reported separately.
    """

    type: ClassVar[str] = "shed"

    tick: int = 0
    client: int = -1
    obj: int = -1
    kind: str = "read"
    tokens: float = 0.0


@dataclass(frozen=True)
class FailoverEvent(Event):
    """The router rerouted a request off a failed replica.

    ``reason`` is ``"timeout"`` (attempt deadline exceeded) or
    ``"unhealthy"`` (EWMA health tracker marked the replica down, so it
    was skipped without an attempt).  ``to_server == -1`` means no
    alternative was left and the request failed.
    """

    type: ClassVar[str] = "failover"

    tick: int = 0
    obj: int = -1
    from_server: int = -1
    to_server: int = -1
    reason: str = "timeout"


@dataclass(frozen=True)
class ReauctionEvent(Event):
    """A drift-triggered incremental re-auction committed.

    The drift detector flagged ``objects`` (popularity shifted beyond
    tolerance), the mechanism re-ran on the induced sub-instance while
    the router kept serving the stale placement, and the resulting
    placement delta — ``added`` / ``removed`` (server, object) replica
    pairs — was swapped in atomically at tick ``tick``.  The serving
    audit replays exactly these deltas over the :class:`ServeStart`
    snapshot.
    """

    type: ClassVar[str] = "reauction"

    tick: int = 0
    trigger: str = "drift"
    objects: tuple[int, ...] = ()
    added: tuple[tuple[int, int], ...] = ()
    removed: tuple[tuple[int, int], ...] = ()
    otc_before: float = 0.0
    otc_after: float = 0.0
    rounds: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "objects", tuple(int(k) for k in self.objects)
        )
        object.__setattr__(self, "added", _pairs(self.added))
        object.__setattr__(self, "removed", _pairs(self.removed))


@dataclass(frozen=True)
class PartitionEvent(Event):
    """A network partition split the sharded central into islands.

    ``islands`` maps region id -> island index (``islands[r]`` is the
    communication island region ``r`` belongs to from protocol round
    ``round`` until the matching :class:`HealEvent`).  Regions in
    different islands cannot exchange commits: each island keeps
    clearing on its own fork of the replica map.
    """

    type: ClassVar[str] = "partition"

    round: int = 0
    islands: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "islands", tuple(int(i) for i in self.islands)
        )


@dataclass(frozen=True)
class HealEvent(Event):
    """The partition healed: all regions communicate again.

    ``islands`` echoes the assignment that just ended; ``divergent``
    counts the commits made across all islands while split.  A heal is
    always accompanied by exactly one :class:`ReconcileEvent` declaring
    how the divergent forks were merged.
    """

    type: ClassVar[str] = "heal"

    round: int = 0
    islands: tuple[int, ...] = ()
    divergent: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "islands", tuple(int(i) for i in self.islands)
        )


@dataclass(frozen=True)
class ReconcileEvent(Event):
    """Deterministic merge of divergent island placements at heal time.

    ``conflicts`` lists the contested objects (allocated in two or more
    islands during the split); per contested object the single
    lowest-cost (highest-benefit, ties to the lowest server id) commit
    is ``kept`` and every other commit is ``revoked`` — its capacity is
    refunded (``refunded_capacity`` size units total), its payment is
    clawed back (``refunded_payment``), and the object re-enters the
    post-heal auction (``reauctioned``).  The cross-shard audit
    recomputes all of this from the region-tagged winner events alone.
    """

    type: ClassVar[str] = "reconcile"

    round: int = 0
    conflicts: tuple[int, ...] = ()
    kept: tuple[tuple[int, int], ...] = ()
    revoked: tuple[tuple[int, int], ...] = ()
    refunded_capacity: int = 0
    refunded_payment: float = 0.0
    reauctioned: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "conflicts", tuple(int(k) for k in self.conflicts)
        )
        object.__setattr__(self, "kept", _pairs(self.kept))
        object.__setattr__(self, "revoked", _pairs(self.revoked))
        object.__setattr__(
            self, "reauctioned", tuple(int(k) for k in self.reauctioned)
        )


#: ``type`` tag -> event class, for parsing serialized records.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.type: cls
    for cls in (
        RunStart,
        RunEnd,
        RoundStart,
        BidEvent,
        WinnerEvent,
        PaymentEvent,
        NNUpdateEvent,
        CapacityReject,
        RoundEnd,
        FaultEvent,
        TimeoutEvent,
        ElectionEvent,
        CheckpointEvent,
        RecoveryEvent,
        ValidationEvent,
        ManipulationEvent,
        QuarantineEvent,
        AdversaryEvent,
        ServeStart,
        ServeEnd,
        RequestEvent,
        RequestTimeout,
        HedgeEvent,
        ShedEvent,
        FailoverEvent,
        ReauctionEvent,
        PartitionEvent,
        HealEvent,
        ReconcileEvent,
        InvariantEvent,
    )
}


def parse_event(record: dict[str, Any]) -> Event:
    """Reconstruct a typed event from its :meth:`Event.to_dict` form.

    Unknown extra keys are ignored (forward compatibility); a missing or
    unknown ``type`` raises ``ValueError``.
    """
    tag = record.get("type")
    cls = EVENT_TYPES.get(tag) if isinstance(tag, str) else None
    if cls is None:
        raise ValueError(f"unknown event type {tag!r}")
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in record.items() if k in names})


@contextmanager
def logical_time() -> Iterator[None]:
    """Swap the event clock for a deterministic counter.

    Inside the block every :func:`now` call returns 0.0, 1.0, 2.0, … —
    which makes event logs byte-for-byte reproducible across runs (the
    chaos campaign's determinism guarantee).  Ordering and structure are
    preserved; durations become meaningless.  The swap is process-global
    (module-level), so don't nest it with concurrent wall-clock captures.

    :func:`now_block` is swapped from the same counter: a block of ``n``
    events consumes ``n`` consecutive ticks (``step`` 1.0), so a flushed
    :class:`RoundBlock` expands to exactly the timestamps the per-object
    path would have produced — integer-valued floats are exact, which is
    what makes buffered and legacy logs byte-identical under this clock.
    """
    global now, now_block
    previous = (now, now_block)
    ticks = [0]

    def _tick() -> float:
        t = ticks[0]
        ticks[0] = t + 1
        return float(t)

    def _tick_block(n: int) -> tuple[float, float]:
        t = ticks[0]
        ticks[0] = t + n
        return float(t), 1.0

    now = _tick
    now_block = _tick_block
    try:
        yield
    finally:
        now, now_block = previous


# -- columnar round buffers --------------------------------------------------

#: Flat estimate for one materialized Event object's memory footprint,
#: used by :attr:`ColumnarSink.nbytes` for non-buffered emissions.
_LOOSE_EVENT_BYTES = 88


@dataclass
class RoundBlock:
    """One flushed span of consecutive mechanism rounds, struct-of-arrays.

    A block is the columnar pipeline's unit of emission: ``rounds`` rows
    starting at round ``base_round``, each row holding the round's full
    pre-commit bid vector plus the commit scalars.  ``winners[i] == -1``
    marks the terminal (``committed=0``) round.  Timestamps are assigned
    at flush time as ``t0 + t_step * j`` over the block's expanded event
    sequence (see :func:`iter_block_events`), so expansion is
    deterministic no matter when — or how often — it happens.

    Arrays are numpy when available; the :mod:`array`-module fallback
    stores the bid matrices flat (row ``i`` is ``[i*n_agents :
    (i+1)*n_agents]``).
    """

    base_round: int
    rounds: int
    n_agents: int
    payment_rule: str
    t0: float
    t_step: float
    bid_vals: Any
    bid_objs: Any
    winners: Any
    objs: Any
    residuals: Any
    payments: Any
    otcs: Any
    obj_sizes: Any
    n_bids: Any

    def bid_row(self, i: int) -> Any:
        """Round ``i``'s reported values, one per agent (−inf = no bid)."""
        if _np is not None and isinstance(self.bid_vals, _np.ndarray):
            return self.bid_vals[i]
        m = self.n_agents
        return self.bid_vals[i * m : (i + 1) * m]

    def obj_row(self, i: int) -> Any:
        """Round ``i``'s reported objects, aligned with :meth:`bid_row`."""
        if _np is not None and isinstance(self.bid_objs, _np.ndarray):
            return self.bid_objs[i]
        m = self.n_agents
        return self.bid_objs[i * m : (i + 1) * m]

    @property
    def n_committed(self) -> int:
        """Rows that committed a replica (``winners >= 0``)."""
        return sum(1 for i in range(self.rounds) if self.winners[i] >= 0)

    @property
    def n_events(self) -> int:
        """Events this block expands to: per round, RoundStart + one
        BidEvent per finite report + RoundEnd, plus Winner/Payment/
        NNUpdate for committed rounds."""
        bids = int(sum(self.n_bids))
        return bids + 2 * self.rounds + 3 * self.n_committed

    @property
    def nbytes(self) -> int:
        """Raw byte size of the columnar payload."""
        total = 0
        for col in (
            self.bid_vals,
            self.bid_objs,
            self.winners,
            self.objs,
            self.residuals,
            self.payments,
            self.otcs,
            self.obj_sizes,
            self.n_bids,
        ):
            if _np is not None and isinstance(col, _np.ndarray):
                total += col.nbytes
            else:
                total += len(col) * col.itemsize
        return total


def iter_block_events(block: RoundBlock) -> Iterator[Event]:
    """Expand a :class:`RoundBlock` into the per-object event sequence.

    Yields exactly the events — same order, same python-native field
    values, same timestamps under :func:`logical_time` — that the legacy
    per-decision path emits for the same rounds: ``RoundStart``, one
    ``BidEvent`` per finite report in ascending agent order, then
    ``WinnerEvent``/``PaymentEvent``/``NNUpdateEvent`` when the round
    committed, and ``RoundEnd``.
    """
    t = block.t0
    step = block.t_step
    rule = block.payment_rule
    m = block.n_agents
    numpy_rows = _np is not None and isinstance(block.bid_vals, _np.ndarray)
    for i in range(block.rounds):
        rnd = block.base_round + i
        yield RoundStart(t=t, round=rnd)
        t += step
        vals = block.bid_row(i)
        objs = block.obj_row(i)
        if numpy_rows:
            agents = _np.nonzero(_np.isfinite(vals))[0].tolist()
        else:
            agents = [a for a in range(m) if math.isfinite(vals[a])]
        for a in agents:
            yield BidEvent(
                t=t,
                round=rnd,
                agent=a,
                obj=int(objs[a]),
                value=float(vals[a]),
            )
            t += step
        winner = int(block.winners[i])
        if winner >= 0:
            yield WinnerEvent(
                t=t,
                round=rnd,
                agent=winner,
                obj=int(block.objs[i]),
                value=float(vals[winner]),
                obj_size=int(block.obj_sizes[i]),
                residual_before=int(block.residuals[i]),
            )
            t += step
            yield PaymentEvent(
                t=t,
                round=rnd,
                agent=winner,
                amount=float(block.payments[i]),
                rule=rule,
            )
            t += step
            yield NNUpdateEvent(
                t=t, round=rnd, obj=int(block.objs[i]), agents=m
            )
            t += step
            committed = 1
        else:
            committed = 0
        yield RoundEnd(
            t=t, round=rnd, committed=committed, otc=float(block.otcs[i])
        )
        t += step


class ColumnarRoundBuffer:
    """Preallocated struct-of-arrays ring for hot-loop round emission.

    The mechanism's tight loop appends one row per round with scalar
    writes (:meth:`stage` the pre-commit bid vectors, then
    :meth:`commit` / :meth:`close` the round scalars) and flushes the
    ring into the active sink once it fills — or once at run end.  All
    derivable per-event data (timestamps, bid counts, object sizes) is
    computed vectorized at :meth:`flush`, so the per-round cost is a
    handful of array stores.

    numpy-backed when available; otherwise flat :mod:`array`-module
    columns (same layout, scalar python writes).  The hot path may bind
    the column attributes locally and maintain :attr:`n` itself — the
    arrays, not the methods, are the interface the tight loop relies on.
    """

    def __init__(
        self,
        n_agents: int,
        sizes: Any,
        *,
        capacity: int = 512,
        base_round: int = 0,
        payment_rule: str = "second_price",
        backend: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if n_agents < 1:
            raise ValueError("n_agents must be >= 1")
        if backend is None:
            backend = "numpy" if _np is not None else "array"
        if backend not in ("numpy", "array"):
            raise ValueError(f"unknown buffer backend {backend!r}")
        if backend == "numpy" and _np is None:
            raise ValueError("numpy backend requested but numpy is missing")
        self.backend = backend
        self.n_agents = n_agents
        self.capacity = capacity
        self.base_round = base_round
        self.payment_rule = payment_rule
        self.sizes = sizes
        #: Rows currently staged+committed; the next row index.
        self.n = 0
        #: Set by staging loops that fill :attr:`n_bids` themselves —
        #: counting finite reports while the bid row is still cache-hot
        #: beats re-reading the whole ring at :meth:`flush`, which is
        #: what happens when this is False.
        self.staged_n_bids = False
        # Scratch that never leaves the buffer is allocated once; only
        # the columns handed off inside RoundBlocks are re-armed per
        # flush (the sink keeps the old ones).
        if self.backend == "numpy":
            self._finite = _np.empty((capacity, n_agents), dtype=bool)
        self._alloc()

    def _alloc(self) -> None:
        cap, m = self.capacity, self.n_agents
        if self.backend == "numpy":
            self.bid_vals = _np.empty((cap, m), dtype=_np.float64)
            # int32 halves the page-fault/bandwidth bill per flush; object
            # indices always fit (N < 2^31), and expansion re-casts to
            # python ints anyway.
            self.bid_objs = _np.empty((cap, m), dtype=_np.int32)
            self.winners = _np.empty(cap, dtype=_np.int64)
            self.objs = _np.empty(cap, dtype=_np.int64)
            self.residuals = _np.empty(cap, dtype=_np.int64)
            self.payments = _np.empty(cap, dtype=_np.float64)
            self.otcs = _np.empty(cap, dtype=_np.float64)
            self.n_bids = _np.empty(cap, dtype=_np.int64)
        else:
            self.bid_vals = array("d", bytes(8 * cap * m))
            self.bid_objs = array("q", bytes(8 * cap * m))
            self.winners = array("q", bytes(8 * cap))
            self.objs = array("q", bytes(8 * cap))
            self.residuals = array("q", bytes(8 * cap))
            self.payments = array("d", bytes(8 * cap))
            self.otcs = array("d", bytes(8 * cap))
            self.n_bids = array("q", bytes(8 * cap))

    @property
    def full(self) -> bool:
        return self.n >= self.capacity

    def stage(self, vals: Any, objs: Any) -> None:
        """Copy the round's pre-commit reports into the next row."""
        i = self.n
        if self.backend == "numpy":
            self.bid_vals[i] = vals
            self.bid_objs[i] = objs
        else:
            m = self.n_agents
            self.bid_vals[i * m : (i + 1) * m] = array("d", vals)
            self.bid_objs[i * m : (i + 1) * m] = array(
                "q", [int(o) for o in objs]
            )

    def commit(
        self,
        winner: int,
        obj: int,
        residual_before: int,
        payment: float,
        otc: float,
    ) -> None:
        """Record the staged round's commit scalars and advance."""
        i = self.n
        self.winners[i] = winner
        self.objs[i] = obj
        self.residuals[i] = residual_before
        self.payments[i] = payment
        self.otcs[i] = otc
        self.n = i + 1

    def close(self, otc: float) -> None:
        """Record the staged round as terminal (no commit) and advance."""
        i = self.n
        self.winners[i] = -1
        self.objs[i] = -1
        self.residuals[i] = 0
        self.payments[i] = 0.0
        self.otcs[i] = otc
        self.n = i + 1

    def flush(self) -> Optional[RoundBlock]:
        """Hand the filled rows off as a :class:`RoundBlock` and reset.

        Returns ``None`` when empty.  Timestamps for the block's whole
        event expansion are reserved here via :func:`now_block`; the
        ring is re-armed with fresh arrays (the block keeps the old
        ones), so no row is ever copied.
        """
        rows = self.n
        if rows == 0:
            return None
        m = self.n_agents
        if self.backend == "numpy":
            bid_vals = self.bid_vals[:rows]
            bid_objs = self.bid_objs[:rows]
            winners = self.winners[:rows]
            objs = self.objs[:rows]
            if self.staged_n_bids:
                n_bids = self.n_bids[:rows]
            else:
                n_bids = _np.count_nonzero(
                    _np.isfinite(bid_vals, out=self._finite[:rows]), axis=1
                )
            committed = winners >= 0
            sizes = _np.asarray(self.sizes)
            obj_sizes = _np.where(
                committed, sizes[_np.where(committed, objs, 0)], 0
            )
            n_events = int(n_bids.sum()) + 2 * rows + 3 * int(
                committed.sum()
            )
            block_cols = (
                bid_vals,
                bid_objs,
                winners,
                objs,
                self.residuals[:rows],
                self.payments[:rows],
                self.otcs[:rows],
                obj_sizes,
                n_bids,
            )
        else:
            bid_vals = self.bid_vals[: rows * m]
            bid_objs = self.bid_objs[: rows * m]
            winners = self.winners[:rows]
            objs = self.objs[:rows]
            if self.staged_n_bids:
                n_bids = self.n_bids[:rows]
            else:
                n_bids = array(
                    "q",
                    (
                        sum(
                            1
                            for a in range(m)
                            if math.isfinite(bid_vals[i * m + a])
                        )
                        for i in range(rows)
                    ),
                )
            obj_sizes = array(
                "q",
                (
                    int(self.sizes[objs[i]]) if winners[i] >= 0 else 0
                    for i in range(rows)
                ),
            )
            n_committed = sum(1 for w in winners if w >= 0)
            n_events = int(sum(n_bids)) + 2 * rows + 3 * n_committed
            block_cols = (
                bid_vals,
                bid_objs,
                winners,
                objs,
                self.residuals[:rows],
                self.payments[:rows],
                self.otcs[:rows],
                obj_sizes,
                n_bids,
            )
        t0, t_step = now_block(n_events)
        block = RoundBlock(
            self.base_round,
            rows,
            m,
            self.payment_rule,
            t0,
            t_step,
            *block_cols,
        )
        self.base_round += rows
        self.n = 0
        self._alloc()
        return block


# -- sinks -------------------------------------------------------------------


class EventSink:
    """Receives the event stream.  Subclass and override :meth:`emit`.

    ``enabled`` is the hot-path gate: instrumented code reads it once
    per phase and skips event construction entirely when False.
    """

    enabled: bool = True

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def emit_block(self, block: RoundBlock) -> None:
        """Receive one flushed :class:`RoundBlock`.

        The default expands the block through :func:`iter_block_events`
        into the ordinary :meth:`emit` stream, so every existing sink
        sees events identical to the per-object path.  Block-aware sinks
        (:class:`ColumnarSink`) override this to keep the columnar form
        and skip object materialization entirely.
        """
        for event in iter_block_events(block):
            self.emit(event)


class NullSink(EventSink):
    """The disabled sink — drops everything, costs one attribute read."""

    enabled = False

    def emit(self, event: Event) -> None:
        return None

    def emit_block(self, block: RoundBlock) -> None:
        return None


class RecordingSink(EventSink):
    """Keeps the full stream in memory (the default :func:`capture` sink)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class ColumnarSink(EventSink):
    """Block-aware recording sink: stores flushed :class:`RoundBlock`\\ s
    raw and interleaves them, in order, with loose events.

    The hot path never materializes per-decision objects into it; blocks
    expand lazily (and deterministically — timestamps live in the block)
    on :meth:`iter_events`.  ``len()`` and :attr:`nbytes` are maintained
    incrementally, so bench accounting costs nothing extra.
    """

    def __init__(self) -> None:
        self._items: list[Any] = []
        self._n = 0
        self._nbytes = 0

    def emit(self, event: Event) -> None:
        self._items.append(event)
        self._n += 1
        self._nbytes += _LOOSE_EVENT_BYTES

    def emit_block(self, block: RoundBlock) -> None:
        self._items.append(block)
        self._n += block.n_events
        self._nbytes += block.nbytes

    def __len__(self) -> int:
        return self._n

    @property
    def nbytes(self) -> int:
        """Captured payload bytes: exact columnar sizes for blocks plus
        a flat per-object estimate for loose events."""
        return self._nbytes

    def iter_events(self) -> Iterator[Event]:
        """The full stream in emission order, blocks expanded lazily."""
        for item in self._items:
            if isinstance(item, RoundBlock):
                yield from iter_block_events(item)
            else:
                yield item

    @property
    def events(self) -> list[Event]:
        """Materialized event list (drop-in for :class:`RecordingSink`)."""
        return list(self.iter_events())

    def blocks(self) -> Iterable[RoundBlock]:
        """The raw blocks captured, in order."""
        return [b for b in self._items if isinstance(b, RoundBlock)]


#: The canonical disabled sink — the default "current" sink.
NULL_SINK = NullSink()

_current_sink: ContextVar[EventSink] = ContextVar(
    "repro_obs_event_sink", default=NULL_SINK
)


def current() -> EventSink:
    """The active sink; :data:`NULL_SINK` (disabled) by default."""
    return _current_sink.get()


def install(sink: Optional[EventSink]) -> EventSink:
    """Install ``sink`` as the active sink; returns the previous one.

    ``None`` restores the disabled default.  The registry is
    :mod:`contextvars`-based, so the installation is scoped to the
    current execution context (thread / task).
    """
    previous = _current_sink.get()
    _current_sink.set(sink if sink is not None else NULL_SINK)
    return previous


@contextmanager
def capture(sink: Optional[EventSink] = None) -> Iterator[EventSink]:
    """Scoped event capture: install a fresh (or given) sink, restore on
    exit.

    >>> from repro.obs import events as ev
    >>> with ev.capture() as sink:               # doctest: +SKIP
    ...     run_agt_ram(instance)
    >>> sink.events                              # doctest: +SKIP
    """
    active = sink if sink is not None else RecordingSink()
    previous = install(active)
    try:
        yield active
    finally:
        install(previous)


# -- per-round time series ---------------------------------------------------


@dataclass
class RoundSeries:
    """Per-round trajectories of one mechanism run.

    One entry per *committed* round, in order: exactly the quantities
    the paper plots over time and a live operator would graph.  Built by
    the instrumented mechanisms whenever an event sink is active and
    attached to the result under ``extra["round_series"]``.
    """

    #: System OTC after each round's commit.
    otc: list[float] = field(default_factory=list)
    #: The winning (dominant) report of each round.
    best_bid: list[float] = field(default_factory=list)
    #: Payment issued each round (uniform clearing price for batches).
    payment: list[float] = field(default_factory=list)
    #: Number of agents that bid each round.
    n_bids: list[int] = field(default_factory=list)
    #: Protocol messages sent during each round (simulator only).
    messages: list[int] = field(default_factory=list)
    #: Protocol bytes sent during each round (simulator only).
    bytes: list[int] = field(default_factory=list)

    def append(
        self,
        *,
        otc: float,
        best_bid: float,
        payment: float,
        n_bids: int,
        messages: Optional[int] = None,
        bytes: Optional[int] = None,
    ) -> None:
        self.otc.append(float(otc))
        self.best_bid.append(float(best_bid))
        self.payment.append(float(payment))
        self.n_bids.append(int(n_bids))
        if messages is not None:
            self.messages.append(int(messages))
        if bytes is not None:
            self.bytes.append(int(bytes))

    def __len__(self) -> int:
        return len(self.otc)

    def to_dict(self) -> dict[str, list]:
        """JSON-safe dict; message/byte series are omitted when unused."""
        out: dict[str, list] = {
            "otc": list(self.otc),
            "best_bid": list(self.best_bid),
            "payment": list(self.payment),
            "n_bids": list(self.n_bids),
        }
        if self.messages:
            out["messages"] = list(self.messages)
        if self.bytes:
            out["bytes"] = list(self.bytes)
        return out
