"""Standard-format exporters for the ``repro.obs`` event stream.

Three targets, each a well-known external format:

* **JSONL event log** — one header line plus one JSON object per event;
  lossless (``read_events_jsonl`` parses back the same typed events),
  the input format of the offline audit (:mod:`repro.obs.audit`).
* **Chrome trace-event JSON** — loadable in Perfetto / ``chrome://tracing``;
  runs and rounds become duration ("X") slices on the central track,
  bids/winners/payments become instant events on per-agent tracks.
* **OpenMetrics / Prometheus textfile** — a point-in-time snapshot of a
  bench document or a tracer snapshot, suitable for the node-exporter
  textfile collector.  :func:`lint_openmetrics` checks the invariants
  the exposition format requires.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    AdversaryEvent,
    BidEvent,
    CapacityReject,
    CheckpointEvent,
    ElectionEvent,
    Event,
    FailoverEvent,
    FaultEvent,
    HedgeEvent,
    ManipulationEvent,
    NNUpdateEvent,
    PaymentEvent,
    QuarantineEvent,
    ReauctionEvent,
    RecoveryEvent,
    RequestEvent,
    RequestTimeout,
    RoundEnd,
    RoundStart,
    RunEnd,
    RunStart,
    ServeEnd,
    ServeStart,
    ShedEvent,
    TimeoutEvent,
    ValidationEvent,
    WinnerEvent,
    parse_event,
)

__all__ = [
    "EVENTS_KIND",
    "write_events_jsonl",
    "read_events_jsonl",
    "events_to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "openmetrics_from_bench",
    "openmetrics_from_snapshot",
    "lint_openmetrics",
]

#: ``kind`` tag of the JSONL header line.
EVENTS_KIND = "repro-events"


# -- JSONL event log ---------------------------------------------------------


def write_events_jsonl(events: Iterable[Event], path: str | Path) -> Path:
    """Write the stream as JSON Lines: a header record, then one event
    per line.  Returns the path written."""
    out = Path(path)
    header = {"kind": EVENTS_KIND, "schema_version": EVENT_SCHEMA_VERSION}
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(e.to_dict(), sort_keys=True) for e in events
    )
    out.write_text("\n".join(lines) + "\n")
    return out


def read_events_jsonl(path: str | Path) -> list[Event]:
    """Parse a JSONL event log back into typed events.

    Raises ``ValueError`` on a missing/foreign header, a newer schema
    version than this library understands, or an unparseable record.
    """
    text = Path(path).read_text()
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty event log")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("kind") != EVENTS_KIND:
        raise ValueError(
            f"not a {EVENTS_KIND} log: header={header!r}"
        )
    version = header.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad event schema_version: {version!r}")
    if version > EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"event log schema_version {version} is newer than supported "
            f"{EVENT_SCHEMA_VERSION}; upgrade the library"
        )
    out: list[Event] = []
    for i, line in enumerate(lines[1:], start=2):
        record = json.loads(line)
        try:
            out.append(parse_event(record))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"line {i}: {exc}") from exc
    return out


# -- Chrome trace-event JSON -------------------------------------------------

#: Process id used for every trace event (one mechanism process).
_TRACE_PID = 1
#: Thread id of the central body's track; agent i uses ``i + 1``.
_CENTRAL_TID = 0


def _us(t: float, t0: float) -> float:
    """Rebased microseconds (the trace-event time unit)."""
    return (t - t0) * 1e6


def events_to_chrome_trace(events: Sequence[Event]) -> dict[str, Any]:
    """Convert an event stream to a Chrome trace-event document.

    Runs and rounds become complete ("X") slices on the central track —
    nested slices render as a flame graph in Perfetto; per-agent
    decisions (bid/winner/payment/capacity_reject) become instant ("i")
    events on that agent's own track.
    """
    if not events:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = events[0].t
    trace: list[dict[str, Any]] = []
    agents_seen: set[int] = set()
    run_stack: list[RunStart] = []
    round_open: dict[int, RoundStart] = {}
    serve_open: list[ServeStart] = []

    def instant(e: Event, name: str, tid: int, args: dict[str, Any]) -> None:
        trace.append(
            {
                "name": name,
                "ph": "i",
                "ts": _us(e.t, t0),
                "pid": _TRACE_PID,
                "tid": tid,
                "s": "t",
                "args": args,
            }
        )

    def complete(start: Event, end: Event, name: str, args: dict[str, Any]) -> None:
        trace.append(
            {
                "name": name,
                "ph": "X",
                "ts": _us(start.t, t0),
                "dur": max(0.0, _us(end.t, t0) - _us(start.t, t0)),
                "pid": _TRACE_PID,
                "tid": _CENTRAL_TID,
                "args": args,
            }
        )

    for e in events:
        if isinstance(e, RunStart):
            run_stack.append(e)
        elif isinstance(e, RunEnd):
            if run_stack:
                start = run_stack.pop()
                complete(
                    start,
                    e,
                    f"run {e.algorithm}",
                    {"otc": e.otc, "rounds": e.rounds},
                )
        elif isinstance(e, RoundStart):
            round_open[e.round] = e
        elif isinstance(e, RoundEnd):
            start = round_open.pop(e.round, None)
            if start is not None:
                complete(
                    start,
                    e,
                    f"round {e.round}",
                    {"committed": e.committed, "otc": e.otc},
                )
        elif isinstance(e, BidEvent):
            agents_seen.add(e.agent)
            instant(e, "bid", e.agent + 1, {"obj": e.obj, "value": e.value})
        elif isinstance(e, WinnerEvent):
            agents_seen.add(e.agent)
            instant(
                e,
                "winner",
                e.agent + 1,
                {"obj": e.obj, "value": e.value, "round": e.round},
            )
        elif isinstance(e, PaymentEvent):
            agents_seen.add(e.agent)
            instant(
                e,
                "payment",
                e.agent + 1,
                {"amount": e.amount, "rule": e.rule, "round": e.round},
            )
        elif isinstance(e, CapacityReject):
            agents_seen.add(e.agent)
            instant(
                e,
                "capacity_reject",
                e.agent + 1,
                {"obj": e.obj, "obj_size": e.obj_size, "residual": e.residual},
            )
        elif isinstance(e, NNUpdateEvent):
            instant(
                e,
                "nn_update",
                _CENTRAL_TID,
                {"obj": e.obj, "agents": e.agents, "round": e.round},
            )
        elif isinstance(e, FaultEvent):
            tid = _CENTRAL_TID if e.agent < 0 else e.agent + 1
            if e.agent >= 0:
                agents_seen.add(e.agent)
            instant(
                e,
                f"fault:{e.kind}",
                tid,
                {"target": e.target, "detail": e.detail, "round": e.round},
            )
        elif isinstance(e, TimeoutEvent):
            instant(
                e,
                "bid_timeout",
                _CENTRAL_TID,
                {
                    "agents": list(e.agents),
                    "expected": e.expected,
                    "received": e.received,
                    "quorum_met": e.quorum_met,
                    "round": e.round,
                },
            )
        elif isinstance(e, ElectionEvent):
            instant(
                e,
                "election",
                _CENTRAL_TID,
                {"candidate": e.candidate, "voters": e.voters, "round": e.round},
            )
        elif isinstance(e, CheckpointEvent):
            instant(
                e,
                "checkpoint",
                _CENTRAL_TID,
                {"allocations": e.allocations, "round": e.round},
            )
        elif isinstance(e, RecoveryEvent):
            tid = _CENTRAL_TID if e.agent < 0 else e.agent + 1
            if e.agent >= 0:
                agents_seen.add(e.agent)
            instant(
                e,
                f"recovery:{e.kind}",
                tid,
                {
                    "checkpoint_round": e.checkpoint_round,
                    "replayed": e.replayed,
                    "acting_central": e.acting_central,
                    "round": e.round,
                },
            )
        elif isinstance(e, ValidationEvent):
            tid = _CENTRAL_TID if e.agent < 0 else e.agent + 1
            if e.agent >= 0:
                agents_seen.add(e.agent)
            instant(
                e,
                f"validation:{e.kind}",
                tid,
                {"obj": e.obj, "value": e.value, "detail": e.detail,
                 "round": e.round},
            )
        elif isinstance(e, ManipulationEvent):
            agents_seen.add(e.agent)
            instant(
                e,
                f"manipulation:{e.kind}",
                e.agent + 1,
                {"obj": e.obj, "reported": e.reported,
                 "recomputed": e.recomputed, "round": e.round},
            )
        elif isinstance(e, QuarantineEvent):
            agents_seen.add(e.agent)
            instant(
                e,
                f"quarantine:{e.action}",
                e.agent + 1,
                {"strikes": e.strikes, "until_round": e.until_round,
                 "round": e.round},
            )
        elif isinstance(e, AdversaryEvent):
            agents_seen.add(e.agent)
            instant(
                e,
                f"adversary:{e.behavior}",
                e.agent + 1,
                {"obj": e.obj, "value": e.value, "detail": e.detail,
                 "round": e.round},
            )
        elif isinstance(e, ServeStart):
            serve_open.append(e)
        elif isinstance(e, ServeEnd):
            if serve_open:
                start = serve_open.pop()
                complete(
                    start,
                    e,
                    f"serve {start.workload}",
                    {
                        "served": e.served,
                        "shed": e.shed,
                        "failed": e.failed,
                        "availability": e.availability,
                        "p99": e.p99,
                    },
                )
        elif isinstance(e, RequestEvent):
            tid = _CENTRAL_TID if e.replica < 0 else e.replica + 1
            if e.replica >= 0:
                agents_seen.add(e.replica)
            instant(
                e,
                f"request:{e.outcome}",
                tid,
                {"obj": e.obj, "kind": e.kind, "latency": e.latency,
                 "attempts": e.attempts, "tick": e.tick},
            )
        elif isinstance(e, RequestTimeout):
            tid = _CENTRAL_TID if e.replica < 0 else e.replica + 1
            if e.replica >= 0:
                agents_seen.add(e.replica)
            instant(
                e,
                "request_timeout",
                tid,
                {"obj": e.obj, "attempt": e.attempt, "tick": e.tick},
            )
        elif isinstance(e, HedgeEvent):
            tid = _CENTRAL_TID if e.backup < 0 else e.backup + 1
            if e.backup >= 0:
                agents_seen.add(e.backup)
            instant(
                e,
                "hedge",
                tid,
                {"obj": e.obj, "primary": e.primary, "winner": e.winner,
                 "tick": e.tick},
            )
        elif isinstance(e, ShedEvent):
            instant(
                e,
                "shed",
                _CENTRAL_TID,
                {"obj": e.obj, "kind": e.kind, "tokens": e.tokens,
                 "tick": e.tick},
            )
        elif isinstance(e, FailoverEvent):
            tid = _CENTRAL_TID if e.to_server < 0 else e.to_server + 1
            if e.to_server >= 0:
                agents_seen.add(e.to_server)
            instant(
                e,
                f"failover:{e.reason}",
                tid,
                {"obj": e.obj, "from": e.from_server, "tick": e.tick},
            )
        elif isinstance(e, ReauctionEvent):
            instant(
                e,
                f"reauction:{e.trigger}",
                _CENTRAL_TID,
                {"objects": list(e.objects), "added": len(e.added),
                 "removed": len(e.removed), "otc_after": e.otc_after,
                 "tick": e.tick},
            )

    # Track naming metadata: process + central + one track per agent.
    meta: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0.0,
            "pid": _TRACE_PID,
            "tid": _CENTRAL_TID,
            "args": {"name": "repro mechanism"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0.0,
            "pid": _TRACE_PID,
            "tid": _CENTRAL_TID,
            "args": {"name": "central"},
        },
    ]
    for agent in sorted(agents_seen):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0.0,
                "pid": _TRACE_PID,
                "tid": agent + 1,
                "args": {"name": f"agent {agent}"},
            }
        )
    trace.sort(key=lambda d: d["ts"])
    return {"traceEvents": meta + trace, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[Event], path: str | Path) -> Path:
    """Convert, validate and write a Chrome trace file."""
    doc = events_to_chrome_trace(events)
    validate_chrome_trace(doc)
    out = Path(path)
    out.write_text(json.dumps(doc) + "\n")
    return out


def validate_chrome_trace(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed trace document.

    Checks the JSON-object form, the required per-event keys, that "X"
    events carry a non-negative ``dur``, and that non-metadata ``ts``
    values are monotonically non-decreasing (our exporter sorts them).
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("trace document must be {'traceEvents': [...]}")
    last_ts: Optional[float] = None
    for i, e in enumerate(doc["traceEvents"]):
        if not isinstance(e, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                raise ValueError(f"traceEvents[{i}] missing required key {key!r}")
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            raise ValueError(f"traceEvents[{i}].ts must be a non-negative number")
        if e["ph"] == "X":
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
                raise ValueError(
                    f"traceEvents[{i}] ('X') needs a non-negative dur"
                )
        if e["ph"] == "M":
            continue
        if last_ts is not None and e["ts"] < last_ts:
            raise ValueError(
                f"traceEvents[{i}].ts={e['ts']} decreases (prev {last_ts})"
            )
        last_ts = e["ts"]


# -- OpenMetrics / Prometheus textfile ---------------------------------------


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _sample(name: str, labels: dict[str, str], value: float) -> str:
    if labels:
        inner = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {value!r}"
    return f"{name} {value!r}"


def _render(families: list[tuple[str, str, str, list[tuple[dict, float]]]]) -> str:
    """Render ``(name, type, help, [(labels, value), ...])`` families."""
    lines: list[str] = []
    for name, mtype, help_text, samples in families:
        if not samples:
            continue
        # OpenMetrics declares the *family* name; counter samples carry
        # the `_total` suffix on top of it.
        family = (
            name[: -len("_total")]
            if mtype == "counter" and name.endswith("_total")
            else name
        )
        lines.append(f"# TYPE {family} {mtype}")
        lines.append(f"# HELP {family} {help_text}")
        for labels, value in samples:
            lines.append(_sample(name, labels, float(value)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def openmetrics_from_snapshot(
    snapshot: dict[str, Any], labels: Optional[dict[str, str]] = None
) -> str:
    """OpenMetrics text from one :meth:`Tracer.snapshot` dict."""
    base = dict(labels or {})
    span_seconds: list[tuple[dict, float]] = []
    span_count: list[tuple[dict, float]] = []
    counter_samples: list[tuple[dict, float]] = []
    for path, stat in sorted(snapshot.get("spans", {}).items()):
        span_seconds.append(({**base, "path": path}, stat["total_s"]))
        span_count.append(({**base, "path": path}, stat["count"]))
    for path, value in sorted(snapshot.get("counters", {}).items()):
        counter_samples.append(({**base, "path": path}, value))
    return _render(
        [
            (
                "repro_span_seconds_total",
                "counter",
                "Total seconds recorded under each span path.",
                span_seconds,
            ),
            (
                "repro_span_count_total",
                "counter",
                "Number of entries recorded under each span path.",
                span_count,
            ),
            (
                "repro_counter_total",
                "counter",
                "repro.obs named counters.",
                counter_samples,
            ),
        ]
    )


def openmetrics_from_bench(doc: dict[str, Any]) -> str:
    """OpenMetrics text from one ``repro-bench`` JSON document.

    One gauge per headline metric, labeled by scenario/algorithm, plus
    the span totals of every record — a point-in-time snapshot suitable
    for the Prometheus textfile collector.
    """
    wall: list[tuple[dict, float]] = []
    savings: list[tuple[dict, float]] = []
    rounds: list[tuple[dict, float]] = []
    replicas: list[tuple[dict, float]] = []
    messages: list[tuple[dict, float]] = []
    bytes_: list[tuple[dict, float]] = []
    span_seconds: list[tuple[dict, float]] = []
    for record in doc.get("results", []):
        labels = {
            "scenario": record["scenario"],
            "algorithm": record["algorithm"],
            "scale": str(doc.get("scale", "")),
        }
        wall.append((labels, record["wall_s"]))
        if "savings_percent" in record:
            savings.append((labels, record["savings_percent"]))
        if "rounds" in record:
            rounds.append((labels, record["rounds"]))
        if "replicas" in record:
            replicas.append((labels, record["replicas"]))
        if "messages" in record:
            messages.append((labels, record["messages"]))
        if "bytes" in record:
            bytes_.append((labels, record["bytes"]))
        for path, stat in sorted(record.get("spans", {}).items()):
            span_seconds.append(({**labels, "path": path}, stat["total_s"]))
    return _render(
        [
            (
                "repro_bench_wall_seconds",
                "gauge",
                "Best wall time of each bench scenario.",
                wall,
            ),
            (
                "repro_bench_savings_percent",
                "gauge",
                "OTC savings vs the primaries-only scheme.",
                savings,
            ),
            (
                "repro_bench_rounds",
                "gauge",
                "Rounds/iterations of each bench scenario.",
                rounds,
            ),
            (
                "repro_bench_replicas",
                "gauge",
                "Replicas allocated by each bench scenario.",
                replicas,
            ),
            (
                "repro_bench_messages",
                "gauge",
                "Protocol messages (simulator scenario).",
                messages,
            ),
            (
                "repro_bench_bytes",
                "gauge",
                "Protocol bytes (simulator scenario).",
                bytes_,
            ),
            (
                "repro_span_seconds_total",
                "counter",
                "Total seconds recorded under each span path.",
                span_seconds,
            ),
        ]
    )


_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"


def lint_openmetrics(text: str) -> list[str]:
    """Check OpenMetrics exposition invariants; returns problems found.

    Enforced: the document ends with ``# EOF``; every sample line names
    a valid metric; every sampled metric has exactly one prior ``# TYPE``
    declaration; values parse as floats.
    """
    import re

    problems: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("document must end with '# EOF'")
    typed: set[str] = set()
    sample_re = re.compile(
        rf"^({_METRIC_NAME})(?:\{{.*\}})? (\S+)(?: \d+(?:\.\d+)?)?$"
    )
    for i, line in enumerate(lines, start=1):
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not re.fullmatch(_METRIC_NAME, parts[2]):
                problems.append(f"line {i}: malformed TYPE line")
            elif parts[2] in typed:
                problems.append(f"line {i}: duplicate TYPE for {parts[2]}")
            else:
                typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        m = sample_re.match(line)
        if not m:
            problems.append(f"line {i}: malformed sample line")
            continue
        name = m.group(1)
        family = name
        for suffix in ("_total", "_count", "_sum", "_bucket", "_created"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        if name not in typed and family not in typed:
            problems.append(f"line {i}: sample for undeclared metric {name}")
        try:
            float(m.group(2))
        except ValueError:
            problems.append(f"line {i}: non-numeric value {m.group(2)!r}")
    return problems
