"""Standard-format exporters for the ``repro.obs`` event stream.

Four targets:

* **JSONL event log** — one header line plus one JSON object per event;
  lossless (``read_events_jsonl`` parses back the same typed events),
  the input format of the offline audit (:mod:`repro.obs.audit`).
  :class:`RotatingJsonlWriter` streams the same format across size- or
  count-bounded ``.partNNNNN`` chunk files so a large campaign never
  holds its log in memory; :func:`event_log_chunks` re-discovers the
  chunk set and :func:`iter_events_jsonl` replays any one file lazily.
* **Binary event log** — a compact length-prefixed codec
  (:func:`write_events_binary` / :func:`iter_events_binary`) whose
  decode is a lossless round-trip back to the same typed events; about
  4-6x smaller than JSONL and decodable record-by-record in bounded
  memory.  Format spec in docs/observability.md.
* **Chrome trace-event JSON** — loadable in Perfetto / ``chrome://tracing``;
  runs and rounds become duration ("X") slices on the central track,
  bids/winners/payments become instant events on per-agent tracks.
* **OpenMetrics / Prometheus textfile** — a point-in-time snapshot of a
  bench document or a tracer snapshot, suitable for the node-exporter
  textfile collector.  :func:`lint_openmetrics` checks the invariants
  the exposition format requires.

:func:`open_event_stream` sniffs a file's magic and returns the right
lazy decoder, so consumers (the windowed audit, the CLI) accept either
log format interchangeably.
"""

from __future__ import annotations

import json
import struct
from dataclasses import fields
from pathlib import Path
from typing import Any, BinaryIO, Iterable, Iterator, Optional, Sequence

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    AdversaryEvent,
    BidEvent,
    CapacityReject,
    CheckpointEvent,
    ElectionEvent,
    Event,
    FailoverEvent,
    FaultEvent,
    HealEvent,
    HedgeEvent,
    InvariantEvent,
    ManipulationEvent,
    NNUpdateEvent,
    PartitionEvent,
    PaymentEvent,
    QuarantineEvent,
    ReauctionEvent,
    ReconcileEvent,
    RecoveryEvent,
    RequestEvent,
    RequestTimeout,
    RoundEnd,
    RoundStart,
    RunEnd,
    RunStart,
    ServeEnd,
    ServeStart,
    ShedEvent,
    TimeoutEvent,
    ValidationEvent,
    WinnerEvent,
    parse_event,
)

__all__ = [
    "EVENTS_KIND",
    "BINARY_MAGIC",
    "write_events_jsonl",
    "read_events_jsonl",
    "iter_events_jsonl",
    "RotatingJsonlWriter",
    "chunk_path",
    "event_log_chunks",
    "write_events_binary",
    "read_events_binary",
    "iter_events_binary",
    "open_event_stream",
    "events_to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "openmetrics_from_bench",
    "openmetrics_from_snapshot",
    "lint_openmetrics",
]

#: ``kind`` tag of the JSONL header line.
EVENTS_KIND = "repro-events"


# -- JSONL event log ---------------------------------------------------------


def write_events_jsonl(events: Iterable[Event], path: str | Path) -> Path:
    """Write the stream as JSON Lines: a header record, then one event
    per line.  Returns the path written."""
    out = Path(path)
    header = {"kind": EVENTS_KIND, "schema_version": EVENT_SCHEMA_VERSION}
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(e.to_dict(), sort_keys=True) for e in events
    )
    out.write_text("\n".join(lines) + "\n")
    return out


def _check_jsonl_header(line: str) -> None:
    """Validate the JSONL header line; raises ``ValueError``."""
    header = json.loads(line)
    if not isinstance(header, dict) or header.get("kind") != EVENTS_KIND:
        raise ValueError(
            f"not a {EVENTS_KIND} log: header={header!r}"
        )
    version = header.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad event schema_version: {version!r}")
    if version > EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"event log schema_version {version} is newer than supported "
            f"{EVENT_SCHEMA_VERSION}; upgrade the library"
        )


def iter_events_jsonl(path: str | Path) -> Iterator[Event]:
    """Lazily parse a JSONL event log: one event per ``next()``, one
    line of the file in memory at a time.

    Raises ``ValueError`` on a missing/foreign header, a newer schema
    version than this library understands, or an unparseable record.
    """
    with open(path, encoding="utf-8") as f:
        first = f.readline()
        if not first.strip():
            raise ValueError("empty event log")
        _check_jsonl_header(first)
        for i, line in enumerate(f, start=2):
            if not line.strip():
                continue
            record = json.loads(line)
            try:
                yield parse_event(record)
            except (TypeError, ValueError) as exc:
                raise ValueError(f"line {i}: {exc}") from exc


def read_events_jsonl(path: str | Path) -> list[Event]:
    """Parse a whole JSONL event log back into typed events."""
    return list(iter_events_jsonl(path))


# -- chunked / rotating JSONL ------------------------------------------------


def chunk_path(path: str | Path, index: int) -> Path:
    """The ``index``-th rotation chunk of a logical log ``path``:
    ``events.jsonl`` -> ``events.part00000.jsonl``, ``events.part00001.jsonl``
    … (five digits, so lexicographic order is replay order up to 100k
    chunks)."""
    p = Path(path)
    return p.with_name(f"{p.stem}.part{index:05d}{p.suffix}")


def event_log_chunks(path: str | Path) -> list[Path]:
    """Resolve a logical log path to its ordered file list.

    A plain single-file log resolves to itself; a rotated log (the
    logical path does not exist but ``<stem>.partNNNNN<suffix>`` chunks
    do) resolves to the sorted chunk list.  Raises ``FileNotFoundError``
    when neither exists.
    """
    p = Path(path)
    if p.exists():
        return [p]
    chunks = sorted(p.parent.glob(f"{p.stem}.part[0-9][0-9][0-9][0-9][0-9]{p.suffix}"))
    if not chunks:
        raise FileNotFoundError(f"no event log at {p} and no {p.stem}.part* chunks")
    return chunks


class RotatingJsonlWriter:
    """Streaming JSONL writer with size/count-based rotation.

    Events are serialized as they arrive — nothing is buffered beyond
    the OS file buffer, so a multi-gigabyte campaign log never lives in
    memory.  With ``max_events``/``max_bytes`` set, the stream rotates
    into ``chunk_path(path, i)`` files, each a self-contained JSONL log
    (own header line); with neither set, everything goes to ``path``
    itself.  ``max_bytes`` is checked *before* each write, so a chunk
    may overshoot by at most one serialized event rather than ever
    splitting one.

    Use as a context manager::

        with RotatingJsonlWriter("log.jsonl", max_events=100_000) as w:
            for e in events:
                w.write(e)
        w.paths  # the chunk files written, in order
    """

    def __init__(
        self,
        path: str | Path,
        *,
        max_events: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self._logical = Path(path)
        self._rotating = max_events is not None or max_bytes is not None
        self.max_events = max_events
        self.max_bytes = max_bytes
        #: Chunk files opened so far, in write order.
        self.paths: list[Path] = []
        self.events_written = 0
        self._file: Optional[Any] = None
        self._chunk_events = 0
        self._chunk_bytes = 0

    def _open_next(self) -> None:
        if self._file is not None:
            self._file.close()
        target = (
            chunk_path(self._logical, len(self.paths))
            if self._rotating
            else self._logical
        )
        self._file = open(target, "w", encoding="utf-8")
        self.paths.append(target)
        header = json.dumps(
            {"kind": EVENTS_KIND, "schema_version": EVENT_SCHEMA_VERSION},
            sort_keys=True,
        )
        self._file.write(header + "\n")
        self._chunk_events = 0
        self._chunk_bytes = len(header) + 1

    def _should_rotate(self, incoming: int) -> bool:
        if not self._rotating or self._chunk_events == 0:
            return False
        if self.max_events is not None and self._chunk_events >= self.max_events:
            return True
        return (
            self.max_bytes is not None
            and self._chunk_bytes + incoming > self.max_bytes
        )

    def write(self, event: Event) -> None:
        line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
        if self._file is None or self._should_rotate(len(line)):
            self._open_next()
        assert self._file is not None
        self._file.write(line)
        self._chunk_events += 1
        self._chunk_bytes += len(line)
        self.events_written += 1

    def write_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.write(event)

    def close(self) -> None:
        if self._file is None:
            # Zero events still yields a valid (header-only) log.
            self._open_next()
        assert self._file is not None
        self._file.close()
        self._file = None

    def __enter__(self) -> "RotatingJsonlWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# -- binary event log --------------------------------------------------------

#: File magic of the length-prefixed binary event codec.
BINARY_MAGIC = b"REVB"
#: Binary container version (bumped only on incompatible layout change).
BINARY_VERSION = 1

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: Field codecs are keyed by the *annotation string* of the dataclass
#: field (``from __future__ import annotations`` keeps them strings).
#: Every event field is one of exactly these six shapes; adding a new
#: shape to an event class without extending this table is a hard error
#: at write time, not silent corruption.
_FIELD_ANNOTATIONS = (
    "float",
    "int",
    "bool",
    "str",
    "tuple[int, ...]",
    "tuple[tuple[int, int], ...]",
)


def _encode_field(ann: str, value: Any, out: bytearray) -> None:
    if ann == "float":
        out += _F64.pack(value)
    elif ann == "int":
        out += _I64.pack(value)
    elif ann == "bool":
        out += b"\x01" if value else b"\x00"
    elif ann == "str":
        raw = value.encode("utf-8")
        out += _U32.pack(len(raw))
        out += raw
    elif ann == "tuple[int, ...]":
        out += _U32.pack(len(value))
        out += struct.pack(f"<{len(value)}q", *value)
    elif ann == "tuple[tuple[int, int], ...]":
        out += _U32.pack(len(value))
        flat = [x for pair in value for x in pair]
        out += struct.pack(f"<{len(flat)}q", *flat)
    else:  # pragma: no cover - schema drift guard
        raise TypeError(f"no binary codec for field annotation {ann!r}")


def _decode_field(ann: str, buf: bytes, off: int) -> tuple[Any, int]:
    if ann == "float":
        return _F64.unpack_from(buf, off)[0], off + 8
    if ann == "int":
        return _I64.unpack_from(buf, off)[0], off + 8
    if ann == "bool":
        return buf[off] != 0, off + 1
    if ann == "str":
        n = _U32.unpack_from(buf, off)[0]
        off += 4
        return buf[off : off + n].decode("utf-8"), off + n
    if ann == "tuple[int, ...]":
        n = _U32.unpack_from(buf, off)[0]
        off += 4
        return tuple(struct.unpack_from(f"<{n}q", buf, off)), off + 8 * n
    if ann == "tuple[tuple[int, int], ...]":
        n = _U32.unpack_from(buf, off)[0]
        off += 4
        flat = struct.unpack_from(f"<{2 * n}q", buf, off)
        return (
            tuple((flat[2 * i], flat[2 * i + 1]) for i in range(n)),
            off + 16 * n,
        )
    raise TypeError(f"no binary codec for field annotation {ann!r}")


def _event_field_plan(cls: type[Event]) -> list[tuple[str, str]]:
    """``(name, annotation)`` per field, in dataclass declaration order."""
    plan = [(f.name, f.type) for f in fields(cls)]
    for _, ann in plan:
        if ann not in _FIELD_ANNOTATIONS:
            raise TypeError(
                f"{cls.__name__} field annotation {ann!r} has no binary codec"
            )
    return plan


def write_events_binary(events: Iterable[Event], path: str | Path) -> Path:
    """Write the stream in the length-prefixed binary format.

    Layout (all integers little-endian): magic ``REVB``, u8 container
    version, u16 kind count, then the kind table (u8 tag length + UTF-8
    ``type`` tag per kind — the table is self-describing, so a reader
    never depends on registry ordering), then one record per event:
    u8 kind index, u32 payload length, payload = the event's dataclass
    fields in declaration order under the per-annotation codecs.
    Returns the path written.
    """
    out = Path(path)
    tags = list(EVENT_TYPES)
    index = {tag: i for i, tag in enumerate(tags)}
    plans = {tag: _event_field_plan(cls) for tag, cls in EVENT_TYPES.items()}
    with open(out, "wb") as f:
        f.write(BINARY_MAGIC)
        f.write(_U8.pack(BINARY_VERSION))
        f.write(_U16.pack(len(tags)))
        for tag in tags:
            raw = tag.encode("utf-8")
            f.write(_U8.pack(len(raw)))
            f.write(raw)
        payload = bytearray()
        for event in events:
            tag = event.type
            payload.clear()
            for name, ann in plans[tag]:
                _encode_field(ann, getattr(event, name), payload)
            f.write(_U8.pack(index[tag]))
            f.write(_U32.pack(len(payload)))
            f.write(payload)
    return out


def _read_exact(f: BinaryIO, n: int, what: str) -> bytes:
    raw = f.read(n)
    if len(raw) != n:
        raise ValueError(f"truncated binary event log: short read in {what}")
    return raw


def iter_events_binary(path: str | Path) -> Iterator[Event]:
    """Lazily decode a binary event log: one record in memory at a time.

    Raises ``ValueError`` on bad magic, an unsupported container
    version, an unknown kind tag, or a truncated/overlong record.
    """
    with open(path, "rb") as f:
        if f.read(len(BINARY_MAGIC)) != BINARY_MAGIC:
            raise ValueError(f"{path}: not a {BINARY_MAGIC!r} binary event log")
        version = _U8.unpack(_read_exact(f, 1, "version"))[0]
        if version > BINARY_VERSION:
            raise ValueError(
                f"binary event log version {version} is newer than supported "
                f"{BINARY_VERSION}; upgrade the library"
            )
        n_kinds = _U16.unpack(_read_exact(f, 2, "kind table"))[0]
        classes: list[type[Event]] = []
        plans: list[list[tuple[str, str]]] = []
        for _ in range(n_kinds):
            tag_len = _U8.unpack(_read_exact(f, 1, "kind table"))[0]
            tag = _read_exact(f, tag_len, "kind table").decode("utf-8")
            cls = EVENT_TYPES.get(tag)
            if cls is None:
                raise ValueError(f"unknown event kind {tag!r} in binary log")
            classes.append(cls)
            plans.append(_event_field_plan(cls))
        while True:
            head = f.read(1)
            if not head:
                return  # clean EOF at a record boundary
            kind = head[0]
            if kind >= n_kinds:
                raise ValueError(f"record kind index {kind} out of range")
            size = _U32.unpack(_read_exact(f, 4, "record header"))[0]
            buf = _read_exact(f, size, "record payload")
            values: dict[str, Any] = {}
            off = 0
            for name, ann in plans[kind]:
                values[name], off = _decode_field(ann, buf, off)
            if off != size:
                raise ValueError(
                    f"record payload length mismatch: {off} decoded of {size}"
                )
            yield classes[kind](**values)


def read_events_binary(path: str | Path) -> list[Event]:
    """Decode a whole binary event log back into typed events."""
    return list(iter_events_binary(path))


def open_event_stream(path: str | Path) -> Iterator[Event]:
    """Lazy event iterator over either log format, sniffed by magic:
    files starting with ``REVB`` decode as binary, anything else parses
    as JSONL."""
    with open(path, "rb") as f:
        magic = f.read(len(BINARY_MAGIC))
    if magic == BINARY_MAGIC:
        return iter_events_binary(path)
    return iter_events_jsonl(path)


# -- Chrome trace-event JSON -------------------------------------------------

#: Process id used for every trace event (one mechanism process).
_TRACE_PID = 1
#: Thread id of the central body's track; agent i uses ``i + 1``.
_CENTRAL_TID = 0


def _us(t: float, t0: float) -> float:
    """Rebased microseconds (the trace-event time unit)."""
    return (t - t0) * 1e6


def events_to_chrome_trace(events: Sequence[Event]) -> dict[str, Any]:
    """Convert an event stream to a Chrome trace-event document.

    Runs and rounds become complete ("X") slices on the central track —
    nested slices render as a flame graph in Perfetto; per-agent
    decisions (bid/winner/payment/capacity_reject) become instant ("i")
    events on that agent's own track.
    """
    if not events:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = events[0].t
    trace: list[dict[str, Any]] = []
    agents_seen: set[int] = set()
    run_stack: list[RunStart] = []
    round_open: dict[int, RoundStart] = {}
    serve_open: list[ServeStart] = []

    def instant(e: Event, name: str, tid: int, args: dict[str, Any]) -> None:
        trace.append(
            {
                "name": name,
                "ph": "i",
                "ts": _us(e.t, t0),
                "pid": _TRACE_PID,
                "tid": tid,
                "s": "t",
                "args": args,
            }
        )

    def complete(start: Event, end: Event, name: str, args: dict[str, Any]) -> None:
        trace.append(
            {
                "name": name,
                "ph": "X",
                "ts": _us(start.t, t0),
                "dur": max(0.0, _us(end.t, t0) - _us(start.t, t0)),
                "pid": _TRACE_PID,
                "tid": _CENTRAL_TID,
                "args": args,
            }
        )

    for e in events:
        if isinstance(e, RunStart):
            run_stack.append(e)
        elif isinstance(e, RunEnd):
            if run_stack:
                start = run_stack.pop()
                complete(
                    start,
                    e,
                    f"run {e.algorithm}",
                    {"otc": e.otc, "rounds": e.rounds},
                )
        elif isinstance(e, RoundStart):
            round_open[e.round] = e
        elif isinstance(e, RoundEnd):
            start = round_open.pop(e.round, None)
            if start is not None:
                complete(
                    start,
                    e,
                    f"round {e.round}",
                    {"committed": e.committed, "otc": e.otc},
                )
        elif isinstance(e, BidEvent):
            agents_seen.add(e.agent)
            instant(e, "bid", e.agent + 1, {"obj": e.obj, "value": e.value})
        elif isinstance(e, WinnerEvent):
            agents_seen.add(e.agent)
            instant(
                e,
                "winner",
                e.agent + 1,
                {"obj": e.obj, "value": e.value, "round": e.round},
            )
        elif isinstance(e, PaymentEvent):
            agents_seen.add(e.agent)
            instant(
                e,
                "payment",
                e.agent + 1,
                {"amount": e.amount, "rule": e.rule, "round": e.round},
            )
        elif isinstance(e, CapacityReject):
            agents_seen.add(e.agent)
            instant(
                e,
                "capacity_reject",
                e.agent + 1,
                {"obj": e.obj, "obj_size": e.obj_size, "residual": e.residual},
            )
        elif isinstance(e, NNUpdateEvent):
            instant(
                e,
                "nn_update",
                _CENTRAL_TID,
                {"obj": e.obj, "agents": e.agents, "round": e.round},
            )
        elif isinstance(e, FaultEvent):
            tid = _CENTRAL_TID if e.agent < 0 else e.agent + 1
            if e.agent >= 0:
                agents_seen.add(e.agent)
            instant(
                e,
                f"fault:{e.kind}",
                tid,
                {"target": e.target, "detail": e.detail, "round": e.round},
            )
        elif isinstance(e, TimeoutEvent):
            instant(
                e,
                "bid_timeout",
                _CENTRAL_TID,
                {
                    "agents": list(e.agents),
                    "expected": e.expected,
                    "received": e.received,
                    "quorum_met": e.quorum_met,
                    "round": e.round,
                },
            )
        elif isinstance(e, ElectionEvent):
            instant(
                e,
                "election",
                _CENTRAL_TID,
                {"candidate": e.candidate, "voters": e.voters, "round": e.round},
            )
        elif isinstance(e, CheckpointEvent):
            instant(
                e,
                "checkpoint",
                _CENTRAL_TID,
                {"allocations": e.allocations, "round": e.round},
            )
        elif isinstance(e, RecoveryEvent):
            tid = _CENTRAL_TID if e.agent < 0 else e.agent + 1
            if e.agent >= 0:
                agents_seen.add(e.agent)
            instant(
                e,
                f"recovery:{e.kind}",
                tid,
                {
                    "checkpoint_round": e.checkpoint_round,
                    "replayed": e.replayed,
                    "acting_central": e.acting_central,
                    "round": e.round,
                },
            )
        elif isinstance(e, ValidationEvent):
            tid = _CENTRAL_TID if e.agent < 0 else e.agent + 1
            if e.agent >= 0:
                agents_seen.add(e.agent)
            instant(
                e,
                f"validation:{e.kind}",
                tid,
                {"obj": e.obj, "value": e.value, "detail": e.detail,
                 "round": e.round},
            )
        elif isinstance(e, ManipulationEvent):
            agents_seen.add(e.agent)
            instant(
                e,
                f"manipulation:{e.kind}",
                e.agent + 1,
                {"obj": e.obj, "reported": e.reported,
                 "recomputed": e.recomputed, "round": e.round},
            )
        elif isinstance(e, QuarantineEvent):
            agents_seen.add(e.agent)
            instant(
                e,
                f"quarantine:{e.action}",
                e.agent + 1,
                {"strikes": e.strikes, "until_round": e.until_round,
                 "round": e.round},
            )
        elif isinstance(e, AdversaryEvent):
            agents_seen.add(e.agent)
            instant(
                e,
                f"adversary:{e.behavior}",
                e.agent + 1,
                {"obj": e.obj, "value": e.value, "detail": e.detail,
                 "round": e.round},
            )
        elif isinstance(e, ServeStart):
            serve_open.append(e)
        elif isinstance(e, ServeEnd):
            if serve_open:
                start = serve_open.pop()
                complete(
                    start,
                    e,
                    f"serve {start.workload}",
                    {
                        "served": e.served,
                        "shed": e.shed,
                        "failed": e.failed,
                        "availability": e.availability,
                        "p99": e.p99,
                    },
                )
        elif isinstance(e, RequestEvent):
            tid = _CENTRAL_TID if e.replica < 0 else e.replica + 1
            if e.replica >= 0:
                agents_seen.add(e.replica)
            instant(
                e,
                f"request:{e.outcome}",
                tid,
                {"obj": e.obj, "kind": e.kind, "latency": e.latency,
                 "attempts": e.attempts, "tick": e.tick},
            )
        elif isinstance(e, RequestTimeout):
            tid = _CENTRAL_TID if e.replica < 0 else e.replica + 1
            if e.replica >= 0:
                agents_seen.add(e.replica)
            instant(
                e,
                "request_timeout",
                tid,
                {"obj": e.obj, "attempt": e.attempt, "tick": e.tick},
            )
        elif isinstance(e, HedgeEvent):
            tid = _CENTRAL_TID if e.backup < 0 else e.backup + 1
            if e.backup >= 0:
                agents_seen.add(e.backup)
            instant(
                e,
                "hedge",
                tid,
                {"obj": e.obj, "primary": e.primary, "winner": e.winner,
                 "tick": e.tick},
            )
        elif isinstance(e, ShedEvent):
            instant(
                e,
                "shed",
                _CENTRAL_TID,
                {"obj": e.obj, "kind": e.kind, "tokens": e.tokens,
                 "tick": e.tick},
            )
        elif isinstance(e, FailoverEvent):
            tid = _CENTRAL_TID if e.to_server < 0 else e.to_server + 1
            if e.to_server >= 0:
                agents_seen.add(e.to_server)
            instant(
                e,
                f"failover:{e.reason}",
                tid,
                {"obj": e.obj, "from": e.from_server, "tick": e.tick},
            )
        elif isinstance(e, ReauctionEvent):
            instant(
                e,
                f"reauction:{e.trigger}",
                _CENTRAL_TID,
                {"objects": list(e.objects), "added": len(e.added),
                 "removed": len(e.removed), "otc_after": e.otc_after,
                 "tick": e.tick},
            )
        elif isinstance(e, PartitionEvent):
            instant(
                e,
                "partition",
                _CENTRAL_TID,
                {"islands": list(e.islands), "round": e.round},
            )
        elif isinstance(e, HealEvent):
            instant(
                e,
                "heal",
                _CENTRAL_TID,
                {"islands": list(e.islands), "divergent": e.divergent,
                 "round": e.round},
            )
        elif isinstance(e, ReconcileEvent):
            instant(
                e,
                "reconcile",
                _CENTRAL_TID,
                {"conflicts": list(e.conflicts), "kept": len(e.kept),
                 "revoked": len(e.revoked),
                 "refunded_capacity": e.refunded_capacity,
                 "round": e.round},
            )
        elif isinstance(e, InvariantEvent):
            tid = _CENTRAL_TID if e.agent < 0 else e.agent + 1
            if e.agent >= 0:
                agents_seen.add(e.agent)
            instant(
                e,
                f"invariant:{e.invariant}",
                tid,
                {"round": e.round, "tick": e.tick, "obj": e.obj,
                 "value": e.value, "bound": e.bound, "detail": e.detail},
            )

    # Track naming metadata: process + central + one track per agent.
    meta: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0.0,
            "pid": _TRACE_PID,
            "tid": _CENTRAL_TID,
            "args": {"name": "repro mechanism"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0.0,
            "pid": _TRACE_PID,
            "tid": _CENTRAL_TID,
            "args": {"name": "central"},
        },
    ]
    for agent in sorted(agents_seen):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0.0,
                "pid": _TRACE_PID,
                "tid": agent + 1,
                "args": {"name": f"agent {agent}"},
            }
        )
    trace.sort(key=lambda d: d["ts"])
    return {"traceEvents": meta + trace, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[Event], path: str | Path) -> Path:
    """Convert, validate and write a Chrome trace file."""
    doc = events_to_chrome_trace(events)
    validate_chrome_trace(doc)
    out = Path(path)
    out.write_text(json.dumps(doc) + "\n")
    return out


def validate_chrome_trace(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed trace document.

    Checks the JSON-object form, the required per-event keys, that "X"
    events carry a non-negative ``dur``, and that non-metadata ``ts``
    values are monotonically non-decreasing (our exporter sorts them).
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("trace document must be {'traceEvents': [...]}")
    last_ts: Optional[float] = None
    for i, e in enumerate(doc["traceEvents"]):
        if not isinstance(e, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                raise ValueError(f"traceEvents[{i}] missing required key {key!r}")
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            raise ValueError(f"traceEvents[{i}].ts must be a non-negative number")
        if e["ph"] == "X":
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
                raise ValueError(
                    f"traceEvents[{i}] ('X') needs a non-negative dur"
                )
        if e["ph"] == "M":
            continue
        if last_ts is not None and e["ts"] < last_ts:
            raise ValueError(
                f"traceEvents[{i}].ts={e['ts']} decreases (prev {last_ts})"
            )
        last_ts = e["ts"]


# -- OpenMetrics / Prometheus textfile ---------------------------------------


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _sample(name: str, labels: dict[str, str], value: float) -> str:
    if labels:
        inner = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {value!r}"
    return f"{name} {value!r}"


def _render(families: list[tuple[str, str, str, list[tuple[dict, float]]]]) -> str:
    """Render ``(name, type, help, [(labels, value), ...])`` families."""
    lines: list[str] = []
    for name, mtype, help_text, samples in families:
        if not samples:
            continue
        # OpenMetrics declares the *family* name; counter samples carry
        # the `_total` suffix on top of it.
        family = (
            name[: -len("_total")]
            if mtype == "counter" and name.endswith("_total")
            else name
        )
        lines.append(f"# TYPE {family} {mtype}")
        lines.append(f"# HELP {family} {help_text}")
        for labels, value in samples:
            lines.append(_sample(name, labels, float(value)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def openmetrics_from_snapshot(
    snapshot: dict[str, Any], labels: Optional[dict[str, str]] = None
) -> str:
    """OpenMetrics text from one :meth:`Tracer.snapshot` dict."""
    base = dict(labels or {})
    span_seconds: list[tuple[dict, float]] = []
    span_count: list[tuple[dict, float]] = []
    counter_samples: list[tuple[dict, float]] = []
    for path, stat in sorted(snapshot.get("spans", {}).items()):
        span_seconds.append(({**base, "path": path}, stat["total_s"]))
        span_count.append(({**base, "path": path}, stat["count"]))
    for path, value in sorted(snapshot.get("counters", {}).items()):
        counter_samples.append(({**base, "path": path}, value))
    return _render(
        [
            (
                "repro_span_seconds_total",
                "counter",
                "Total seconds recorded under each span path.",
                span_seconds,
            ),
            (
                "repro_span_count_total",
                "counter",
                "Number of entries recorded under each span path.",
                span_count,
            ),
            (
                "repro_counter_total",
                "counter",
                "repro.obs named counters.",
                counter_samples,
            ),
        ]
    )


def openmetrics_from_bench(doc: dict[str, Any]) -> str:
    """OpenMetrics text from one ``repro-bench`` JSON document.

    One gauge per headline metric, labeled by scenario/algorithm, plus
    the span totals of every record — a point-in-time snapshot suitable
    for the Prometheus textfile collector.
    """
    wall: list[tuple[dict, float]] = []
    savings: list[tuple[dict, float]] = []
    rounds: list[tuple[dict, float]] = []
    replicas: list[tuple[dict, float]] = []
    messages: list[tuple[dict, float]] = []
    bytes_: list[tuple[dict, float]] = []
    span_seconds: list[tuple[dict, float]] = []
    for record in doc.get("results", []):
        labels = {
            "scenario": record["scenario"],
            "algorithm": record["algorithm"],
            "scale": str(doc.get("scale", "")),
        }
        wall.append((labels, record["wall_s"]))
        if "savings_percent" in record:
            savings.append((labels, record["savings_percent"]))
        if "rounds" in record:
            rounds.append((labels, record["rounds"]))
        if "replicas" in record:
            replicas.append((labels, record["replicas"]))
        if "messages" in record:
            messages.append((labels, record["messages"]))
        if "bytes" in record:
            bytes_.append((labels, record["bytes"]))
        for path, stat in sorted(record.get("spans", {}).items()):
            span_seconds.append(({**labels, "path": path}, stat["total_s"]))
    return _render(
        [
            (
                "repro_bench_wall_seconds",
                "gauge",
                "Best wall time of each bench scenario.",
                wall,
            ),
            (
                "repro_bench_savings_percent",
                "gauge",
                "OTC savings vs the primaries-only scheme.",
                savings,
            ),
            (
                "repro_bench_rounds",
                "gauge",
                "Rounds/iterations of each bench scenario.",
                rounds,
            ),
            (
                "repro_bench_replicas",
                "gauge",
                "Replicas allocated by each bench scenario.",
                replicas,
            ),
            (
                "repro_bench_messages",
                "gauge",
                "Protocol messages (simulator scenario).",
                messages,
            ),
            (
                "repro_bench_bytes",
                "gauge",
                "Protocol bytes (simulator scenario).",
                bytes_,
            ),
            (
                "repro_span_seconds_total",
                "counter",
                "Total seconds recorded under each span path.",
                span_seconds,
            ),
        ]
    )


_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"


def lint_openmetrics(text: str) -> list[str]:
    """Check OpenMetrics exposition invariants; returns problems found.

    Enforced: the document ends with ``# EOF``; every sample line names
    a valid metric; every sampled metric has exactly one prior ``# TYPE``
    declaration; values parse as floats.
    """
    import re

    problems: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("document must end with '# EOF'")
    typed: set[str] = set()
    sample_re = re.compile(
        rf"^({_METRIC_NAME})(?:\{{.*\}})? (\S+)(?: \d+(?:\.\d+)?)?$"
    )
    for i, line in enumerate(lines, start=1):
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not re.fullmatch(_METRIC_NAME, parts[2]):
                problems.append(f"line {i}: malformed TYPE line")
            elif parts[2] in typed:
                problems.append(f"line {i}: duplicate TYPE for {parts[2]}")
            else:
                typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        m = sample_re.match(line)
        if not m:
            problems.append(f"line {i}: malformed sample line")
            continue
        name = m.group(1)
        family = name
        for suffix in ("_total", "_count", "_sum", "_bucket", "_created"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        if name not in typed and family not in typed:
            problems.append(f"line {i}: sample for undeclared metric {name}")
        try:
            float(m.group(2))
        except ValueError:
            problems.append(f"line {i}: non-numeric value {m.group(2)!r}")
    return problems
