"""Emission-path equivalence and overhead measurement: the obs gate.

The columnar pipeline's contract (docs/observability.md) is twofold:

* **Byte-equivalence** — with a sink active, the buffered columnar path
  must produce, after block expansion, exactly the event stream the
  legacy per-object path produces: same kinds, same field values, same
  logical timestamps.  This is deterministic and is the hard half of
  the gate.
* **Bounded overhead** — running the vectorized engine with eventing
  *on* (columnar) must cost only a few percent over eventing *off*.
  This half is a wall-clock measurement and therefore noisy on shared
  CI hardware.

The timing protocol here is the one that survived contact with a noisy
single-vCPU VM: both paths are timed *interleaved in one process* with
``time.process_time`` (cross-process comparisons drift by double-digit
percents), and the reported overhead is the **minimum of the paired
per-iteration ratios**.  Scheduler noise is additive — it can only
inflate a run — so the minimum pair is the least-biased estimator of
the true ratio; medians of the pairs ride along for context.  The CLI
gate (``python -m repro audit --emission-gate``) re-measures on failure
like the engine-speedup gate does, and only a genuinely slow build
fails every attempt.

Scale matters when interpreting the number: per-run fixed costs (ring
allocation, ledger init, final flush) are ~hundreds of microseconds, so
at ``tiny``/``small`` they dominate the ratio; the <5% headline target
is a property of the ``large`` preset, where the per-round marginal
cost is what's measured.  ``default_overhead_budget`` encodes that
scale-dependence for the CI gate.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs import events as ev

__all__ = [
    "EmissionComparison",
    "compare_emission_paths",
    "default_overhead_budget",
    "format_emission_comparison",
]

#: Per-scale overhead budgets (percent) for the CI gate.  ``large`` is
#: the headline: per-round marginal cost over a ~90us/round baseline.
#: The small presets bound regression drift, not the headline figure —
#: fixed per-run costs inflate their plain ratio (see module docstring
#: and docs/performance.md for the measured decomposition).
OVERHEAD_BUDGET_PERCENT: dict[str, float] = {
    "tiny": 60.0,
    "small": 25.0,
    "medium": 15.0,
    "large": 8.0,
}


def default_overhead_budget(scale: str) -> float:
    """The CI overhead budget (percent) for a bench preset."""
    return OVERHEAD_BUDGET_PERCENT.get(scale, 8.0)


@dataclass
class EmissionComparison:
    """Outcome of one columnar-vs-legacy emission comparison."""

    scale: str
    rounds: int = 0
    n_events: int = 0
    #: Buffered columnar stream == legacy per-object stream, field for
    #: field under logical time.
    identical: bool = False
    #: Both streams pass the offline mechanism audit.
    audit_ok: bool = False
    #: First few human-readable stream differences (empty when identical).
    mismatches: list[str] = field(default_factory=list)
    #: Median eventing-off process time per run (seconds).
    disabled_wall_s: float = 0.0
    #: Median eventing-on (columnar) process time per run (seconds).
    enabled_wall_s: float = 0.0
    #: min over paired iterations of (on/off - 1) * 100.
    overhead_percent: float = 0.0
    #: Median of the paired ratios, for context on measurement spread.
    overhead_percent_median: float = 0.0

    @property
    def ok(self) -> bool:
        return self.identical and self.audit_ok

    @property
    def marginal_us_per_round(self) -> float:
        """Per-round marginal cost implied by the minimum pair."""
        if not self.rounds:
            return 0.0
        return (
            self.disabled_wall_s * self.overhead_percent / 100.0
        ) / self.rounds * 1e6


def _event_dicts(events: Any) -> list[dict]:
    return [e.to_dict() for e in events]


def _diff_streams(legacy: list[dict], columnar: list[dict]) -> list[str]:
    out: list[str] = []
    if len(legacy) != len(columnar):
        out.append(f"event count {len(legacy)} (legacy) vs {len(columnar)} (columnar)")
    for i, (a, b) in enumerate(zip(legacy, columnar)):
        if a != b:
            out.append(f"event {i}: legacy {a} != columnar {b}")
            if len(out) >= 5:
                out.append("... (further mismatches suppressed)")
                break
    return out


def compare_emission_paths(
    scale: str = "tiny", *, repeats: int = 5, seed: int = 0
) -> EmissionComparison:
    """Prove byte-equivalence and measure eventing overhead on a preset.

    Identity pass: AGT-RAM (vectorized engine) runs once per emission
    path under :func:`~repro.obs.events.logical_time`; the expanded
    columnar stream must equal the per-object stream field for field,
    and both must pass the offline audit.  Timing pass: ``repeats``
    interleaved (eventing-off, eventing-on) pairs timed with
    ``process_time``; overhead is the minimum paired ratio (see module
    docstring).  ``seed`` is reserved for preset parameterization.
    """
    from repro.core.agt_ram import AGTRam
    from repro.experiments.instances import paper_instance
    from repro.obs.audit import audit_events
    from repro.obs.events import ColumnarSink, RecordingSink
    from repro.obs.report import bench_config

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    instance = paper_instance(bench_config(scale))
    cmp = EmissionComparison(scale=scale)

    # -- identity pass (deterministic) ----------------------------------
    with ev.logical_time():
        with ev.capture(RecordingSink()) as legacy_sink:
            legacy_result = AGTRam(engine="vectorized", emission="object").run(
                instance
            )
    with ev.logical_time():
        with ev.capture(ColumnarSink()) as columnar_sink:
            columnar_result = AGTRam(
                engine="vectorized", emission="columnar"
            ).run(instance)
    legacy = _event_dicts(legacy_sink.events)
    columnar = _event_dicts(columnar_sink.iter_events())
    cmp.rounds = legacy_result.rounds
    cmp.n_events = len(legacy)
    cmp.mismatches = _diff_streams(legacy, columnar)
    if legacy_result.otc != columnar_result.otc:
        cmp.mismatches.append(
            f"result otc {legacy_result.otc!r} (legacy) vs "
            f"{columnar_result.otc!r} (columnar)"
        )
    cmp.identical = not cmp.mismatches
    cmp.audit_ok = (
        audit_events(legacy_sink.events).ok
        and audit_events(columnar_sink.iter_events()).ok
    )

    # -- timing pass (paired, in-process) -------------------------------
    def run_disabled() -> None:
        AGTRam(engine="vectorized").run(instance)

    def run_enabled() -> None:
        with ev.capture(ColumnarSink()):
            AGTRam(engine="vectorized", emission="columnar").run(instance)

    run_disabled()
    run_enabled()  # warm caches and allocators on both paths
    offs: list[float] = []
    ons: list[float] = []
    for _ in range(repeats):
        t0 = time.process_time()
        run_disabled()
        offs.append(time.process_time() - t0)
        t0 = time.process_time()
        run_enabled()
        ons.append(time.process_time() - t0)
    ratios = [on / off for on, off in zip(ons, offs) if off > 0]
    cmp.disabled_wall_s = statistics.median(offs)
    cmp.enabled_wall_s = statistics.median(ons)
    if ratios:
        cmp.overhead_percent = (min(ratios) - 1.0) * 100.0
        cmp.overhead_percent_median = (statistics.median(ratios) - 1.0) * 100.0
    return cmp


def format_emission_comparison(cmp: EmissionComparison) -> str:
    lines = [
        f"emission gate @ {cmp.scale}: {cmp.rounds} rounds, "
        f"{cmp.n_events} events",
        f"  byte-equivalence  {'PASS' if cmp.identical else 'FAIL'}",
        f"  audit             {'PASS' if cmp.audit_ok else 'FAIL'}",
        f"  eventing off      {cmp.disabled_wall_s * 1e3:8.2f} ms (median)",
        f"  eventing on       {cmp.enabled_wall_s * 1e3:8.2f} ms (median)",
        f"  overhead          {cmp.overhead_percent:8.2f} % (min pair; "
        f"median {cmp.overhead_percent_median:.2f} %, "
        f"~{cmp.marginal_us_per_round:.1f} us/round)",
    ]
    lines.extend(f"  mismatch: {m}" for m in cmp.mismatches)
    return "\n".join(lines)
