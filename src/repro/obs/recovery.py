"""Recovery accounting: per-incident MTTR and degradation budgets.

Derives, from an event log alone, how long every failure lasted and how
much of the run was spent degraded — the "repair" half of the
resilience story the fault/adversary/partition planes inject.  An
**incident** is an interval on the protocol-round clock opened by a
failure event and closed by its matching recovery event:

===================  ============================  =========================
kind                 opened by                     closed by
===================  ============================  =========================
``central_crash``    FaultEvent(central_crash)     RecoveryEvent(central)
``agent_crash``      FaultEvent(agent_crash)       RecoveryEvent(agent), same
                                                   agent
``partition``        PartitionEvent                HealEvent
``quarantine``       QuarantineEvent(quarantine)   QuarantineEvent(release),
                                                   same agent
``expulsion``        QuarantineEvent(expel)        never (permanent)
===================  ============================  =========================

**TTR** (time to repair) of a closed incident is
``close_round - open_round + 1`` rounds — an incident opened and closed
inside one round still degraded that round.  **MTTR** is the mean TTR
over closed incidents; incidents still open at run end are reported
separately (``unrecovered``) and their TTR extends to the final round.
A **degraded round** is any round covered by at least one
*infrastructure* incident — crashes and partitions.  Quarantines and
expulsions are excluded from the degradation budget (they are the
defence working as intended, not an outage being repaired; an expelled
agent is a permanent capacity loss) though both still appear as
incidents with their own MTTR.  The **degraded fraction** divides by
the run's total protocol rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.obs.events import (
    Event,
    FaultEvent,
    HealEvent,
    PartitionEvent,
    QuarantineEvent,
    RecoveryEvent,
    RunEnd,
)

__all__ = ["Incident", "RecoveryReport", "recovery_accounting"]


@dataclass(frozen=True)
class Incident:
    """One failure interval on the protocol-round clock."""

    kind: str
    #: Affected agent (or -1 for the central body / whole-system kinds).
    agent: int
    open_round: int
    #: Closing round, or -1 while the incident is still open.
    close_round: int = -1

    @property
    def closed(self) -> bool:
        return self.close_round >= 0

    def ttr(self, last_round: int) -> int:
        """Rounds to repair; open incidents run to ``last_round``."""
        end = self.close_round if self.closed else last_round
        return max(1, end - self.open_round + 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "agent": self.agent,
            "open_round": self.open_round,
            "close_round": self.close_round,
        }


@dataclass
class RecoveryReport:
    """The event log's repair story, for the resilience gates."""

    incidents: list[Incident] = field(default_factory=list)
    #: Agents permanently expelled by the quarantine policy.
    expelled: list[int] = field(default_factory=list)
    total_rounds: int = 0
    degraded_rounds: int = 0

    @property
    def closed(self) -> list[Incident]:
        return [i for i in self.incidents if i.closed]

    @property
    def unrecovered(self) -> list[Incident]:
        return [i for i in self.incidents if not i.closed]

    @property
    def mttr(self) -> float:
        """Mean rounds-to-repair over closed incidents (0.0 if none)."""
        closed = self.closed
        if not closed:
            return 0.0
        last = max(1, self.total_rounds) - 1
        return sum(i.ttr(last) for i in closed) / len(closed)

    @property
    def degraded_fraction(self) -> float:
        if self.total_rounds <= 0:
            return 0.0
        return self.degraded_rounds / self.total_rounds

    def mttr_by_kind(self) -> dict[str, float]:
        last = max(1, self.total_rounds) - 1
        by_kind: dict[str, list[int]] = {}
        for i in self.closed:
            by_kind.setdefault(i.kind, []).append(i.ttr(last))
        return {
            kind: sum(ttrs) / len(ttrs)
            for kind, ttrs in sorted(by_kind.items())
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "incidents": [i.to_dict() for i in self.incidents],
            "n_incidents": len(self.incidents),
            "n_unrecovered": len(self.unrecovered),
            "expelled": list(self.expelled),
            "total_rounds": self.total_rounds,
            "degraded_rounds": self.degraded_rounds,
            "degraded_fraction": self.degraded_fraction,
            "mttr": self.mttr,
            "mttr_by_kind": self.mttr_by_kind(),
        }


def recovery_accounting(
    events: Iterable[Event], *, total_rounds: Optional[int] = None
) -> RecoveryReport:
    """Fold an event log into its :class:`RecoveryReport`.

    ``total_rounds`` overrides the round horizon (defaults to the last
    mechanism :class:`~repro.obs.events.RunEnd`'s round count, falling
    back to the highest round any incident touches).  Regional central
    crashes (the sharded runtime tags them with ``detail="region r"``)
    are matched to the next central recovery; agent crashes match on
    the agent id.
    """
    report = RecoveryReport()
    open_central: list[int] = []  # FIFO of open central-crash rounds
    open_agents: dict[int, int] = {}
    open_partition: Optional[int] = None
    open_quarantine: dict[int, int] = {}
    run_end_rounds = 0

    def close(kind: str, agent: int, opened: int, closed_at: int) -> None:
        report.incidents.append(
            Incident(kind=kind, agent=agent, open_round=opened,
                     close_round=closed_at)
        )

    for e in events:
        if isinstance(e, FaultEvent):
            if e.kind == "central_crash":
                open_central.append(e.round)
            elif e.kind == "agent_crash" and e.agent not in open_agents:
                open_agents[e.agent] = e.round
        elif isinstance(e, RecoveryEvent):
            if e.kind == "central" and open_central:
                close("central_crash", -1, open_central.pop(0), e.round)
            elif e.kind == "agent" and e.agent in open_agents:
                close("agent_crash", e.agent,
                      open_agents.pop(e.agent), e.round)
        elif isinstance(e, PartitionEvent):
            if open_partition is None:
                open_partition = e.round
        elif isinstance(e, HealEvent):
            if open_partition is not None:
                close("partition", -1, open_partition, e.round)
                open_partition = None
        elif isinstance(e, QuarantineEvent):
            if e.action == "quarantine":
                open_quarantine.setdefault(e.agent, e.round)
            elif e.action == "release" and e.agent in open_quarantine:
                close("quarantine", e.agent,
                      open_quarantine.pop(e.agent), e.round)
            elif e.action == "expel":
                opened = open_quarantine.pop(e.agent, e.round)
                report.incidents.append(
                    Incident(kind="expulsion", agent=e.agent,
                             open_round=opened)
                )
                report.expelled.append(e.agent)
        elif isinstance(e, RunEnd):
            run_end_rounds = max(run_end_rounds, e.rounds)

    # Still-open intervals become unrecovered incidents.
    for opened in open_central:
        report.incidents.append(
            Incident(kind="central_crash", agent=-1, open_round=opened)
        )
    for agent, opened in sorted(open_agents.items()):
        report.incidents.append(
            Incident(kind="agent_crash", agent=agent, open_round=opened)
        )
    if open_partition is not None:
        report.incidents.append(
            Incident(kind="partition", agent=-1, open_round=open_partition)
        )
    for agent, opened in sorted(open_quarantine.items()):
        report.incidents.append(
            Incident(kind="quarantine", agent=agent, open_round=opened)
        )

    span = max(
        (i.close_round + 1 for i in report.incidents if i.closed),
        default=0,
    )
    span = max(
        span, max((i.open_round + 1 for i in report.incidents), default=0)
    )
    report.total_rounds = (
        int(total_rounds) if total_rounds is not None
        else max(run_end_rounds, span)
    )
    last = report.total_rounds - 1
    degraded: set[int] = set()
    for i in report.incidents:
        if i.kind in ("expulsion", "quarantine"):
            continue
        end = i.close_round if i.closed else max(i.open_round, last)
        degraded.update(range(i.open_round, end + 1))
    report.degraded_rounds = len(
        {r for r in degraded if 0 <= r < max(1, report.total_rounds)}
    )
    return report
