"""Machine-readable performance harness: ``python -m repro bench``.

Runs the repository's benchmark scenarios (the same instance presets the
``benchmarks/`` suite uses) with tracing enabled and emits a
schema-versioned JSON document — the repo's performance trajectory.
Every future perf PR appends a ``BENCH_<date>.json`` produced here and
compares it against the previous one with :func:`compare_documents`.

Document layout (``SCHEMA_VERSION`` = 3)::

    {
      "schema_version": 3,
      "kind": "repro-bench",
      "scale": "tiny",                  # tiny | small | medium | large
      "seed": 2007,
      "repeats": 3,
      "env": {"python": ..., "numpy": ..., "platform": ...},
      "config": {"n_servers": ..., "n_objects": ..., "total_requests": ...,
                 "engine": "auto"},
      "results": [
        {
          "scenario": "placement",      # or "protocol" / "engine_compare"
          "algorithm": "AGT-RAM",
          "wall_s": 0.0123,             # best of `repeats` runs
          "otc": ..., "savings_percent": ..., "replicas": ..., "rounds": ...,
          "spans": {path: {count, total_s, mean_s, min_s, max_s}},
          "counters": {path: value},
          # observability accounting (v3)
          "peak_rss_mb": ...,           # process high-water mark so far
          "events_emitted": ...,        # events this scenario emitted
          "events_bytes": ...,          # their captured columnar bytes
          # mechanism scenarios (v2): per-round trajectories
          "series": {"otc": [...], "best_bid": [...], "payment": [...],
                     "n_bids": [...],
                     # protocol scenario only:
                     "messages": [...], "bytes": [...],
                     "parallel_round_work": [...],
                     "serial_round_work": [...]},
          # protocol scenario only:
          "messages": ..., "bytes": ..., "parallel_speedup": ...
        }, ...
      ]
    }

Schema history: v3 added the per-record observability accounting
(``peak_rss_mb`` — the ``getrusage`` high-water mark, monotone across
the document's records — plus ``events_emitted`` / ``events_bytes``
from the capturing sink) and made the default capture sink the
block-aware :class:`~repro.obs.events.ColumnarSink`; v2 added the
per-round ``series`` trajectories (taken from the best run); v1
documents remain loadable.  The ``engine_compare`` record
(naive-vs-vectorized identity verdict and uninstrumented speedup, see
:mod:`repro.obs.equivalence`) is additive — documents without it still
compare cleanly.

Span paths are hierarchical (see :mod:`repro.obs.tracer`); the AGT-RAM
per-round phases land under ``mechanism/AGT-RAM/...`` and the baseline
phases under ``baseline/<name>/...``.  Bench runs execute with both the
tracer *and* the event stream enabled (the series come from the
events), so the measured walls include that instrumentation — identical
across the documents being compared.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.obs import events as ev
from repro.obs.tracer import capture

SCHEMA_VERSION = 3
DOCUMENT_KIND = "repro-bench"

#: Default time-regression tolerance: new wall time beyond
#: ``old * (1 + TIME_TOLERANCE)`` is flagged.
TIME_TOLERANCE = 0.15

#: Default quality tolerance in absolute OTC-savings percentage points.
QUALITY_TOLERANCE = 1.0

#: Benchmark instance presets — single source of truth shared with
#: ``benchmarks/_config.py`` (which imports :func:`bench_config`).
#:
#: ``tiny`` is the CI smoke preset (committed baseline, second-resolution
#: runs).  ``small`` upward are sized so the mechanism loop — not numpy
#: per-call dispatch — dominates the wall clock; they are what the
#: engine-speedup gates measure (see docs/performance.md).  ``large`` is
#: the nightly scaling preset.
BENCH_SCALE_CONFIGS: dict[str, ExperimentConfig] = {
    "tiny": ExperimentConfig(
        n_servers=16, n_objects=64, total_requests=8_000, seed=2007, name="bench"
    ),
    "small": ExperimentConfig(
        n_servers=240,
        n_objects=1200,
        total_requests=1_350_000,
        seed=2007,
        name="bench",
    ),
    "medium": ExperimentConfig(
        n_servers=320,
        n_objects=1600,
        total_requests=2_400_000,
        seed=2007,
        name="bench",
    ),
    "large": ExperimentConfig(
        n_servers=640,
        n_objects=3200,
        total_requests=9_600_000,
        seed=2007,
        name="bench",
    ),
}

#: Algorithms the bench document records, in the paper's reporting order.
BENCH_ALGORITHMS: tuple[str, ...] = ("Greedy", "GRA", "Ae-Star", "AGT-RAM", "DA", "EA")


def bench_scale(default: str = "small") -> str:
    """The active scale: ``REPRO_BENCH_SCALE`` env var, else ``default``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", default)
    if scale not in BENCH_SCALE_CONFIGS:
        raise ValueError(
            f"unknown REPRO_BENCH_SCALE {scale!r}; "
            f"expected one of {sorted(BENCH_SCALE_CONFIGS)}"
        )
    return scale


def bench_config(scale: str) -> ExperimentConfig:
    """The benchmark instance preset for ``scale`` (tiny … large)."""
    try:
        return BENCH_SCALE_CONFIGS[scale]
    except KeyError:
        raise ValueError(
            f"unknown bench scale {scale!r}; expected one of "
            f"{sorted(BENCH_SCALE_CONFIGS)}"
        ) from None


# -- document production ----------------------------------------------------


def _environment() -> dict[str, str]:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (0.0 where ``getrusage`` is unavailable).

    ``ru_maxrss`` is a high-water mark, so per-record values are
    monotone non-decreasing across a document — each scenario's figure
    bounds, rather than isolates, its own footprint.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-unix
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    divisor = 1024 * 1024 if sys.platform == "darwin" else 1024
    return peak / divisor


def _sink_len(sink: ev.EventSink) -> int:
    try:
        return len(sink)  # type: ignore[arg-type]
    except TypeError:
        return 0


def _obs_fields(
    sink: ev.EventSink, events_before: int, bytes_before: int
) -> dict[str, Any]:
    """The v3 observability accounting for one scenario record."""
    return {
        "peak_rss_mb": _peak_rss_mb(),
        "events_emitted": _sink_len(sink) - events_before,
        "events_bytes": getattr(sink, "nbytes", 0) - bytes_before,
    }


def _placement_record(
    algorithm: str,
    instance: Any,
    repeats: int,
    seed: int,
    sink: ev.EventSink,
    engine: str = "auto",
) -> dict[str, Any]:
    from repro.experiments.runner import run_algorithms

    placer_kwargs = {"AGT-RAM": {"engine": engine}} if algorithm == "AGT-RAM" else None
    best = None
    events_before = _sink_len(sink)
    bytes_before = getattr(sink, "nbytes", 0)
    with capture() as tracer, ev.capture(sink):
        for _ in range(repeats):
            result = run_algorithms(
                instance, [algorithm], seed=seed, placer_kwargs=placer_kwargs
            )[algorithm]
            if best is None or result.runtime_s < best.runtime_s:
                best = result
    assert best is not None
    snap = tracer.snapshot()
    record = {
        "scenario": "placement",
        "algorithm": algorithm,
        "wall_s": best.runtime_s,
        "otc": best.otc,
        "savings_percent": best.savings_percent,
        "replicas": best.replicas_allocated,
        "rounds": best.rounds,
        "spans": snap["spans"],
        "counters": snap["counters"],
        **_obs_fields(sink, events_before, bytes_before),
    }
    series = best.extra.get("round_series")
    if series is not None:
        record["series"] = series.to_dict()
    return record


def _protocol_record(
    instance: Any, repeats: int, sink: ev.EventSink
) -> dict[str, Any]:
    from repro.runtime.simulator import SemiDistributedSimulator

    best = None
    events_before = _sink_len(sink)
    bytes_before = getattr(sink, "nbytes", 0)
    with capture() as tracer, ev.capture(sink):
        for _ in range(repeats):
            result = SemiDistributedSimulator().run(instance)
            if best is None or result.runtime_s < best.runtime_s:
                best = result
    assert best is not None
    snap = tracer.snapshot()
    metrics = best.extra["metrics"]
    summary = metrics.summary()
    record = {
        "scenario": "protocol",
        "algorithm": best.algorithm,
        "wall_s": best.runtime_s,
        "otc": best.otc,
        "savings_percent": best.savings_percent,
        "replicas": best.replicas_allocated,
        "rounds": best.rounds,
        "messages": summary["messages"],
        "bytes": summary["bytes"],
        "parallel_speedup": summary["parallel_speedup"],
        "spans": snap["spans"],
        "counters": snap["counters"],
        **_obs_fields(sink, events_before, bytes_before),
    }
    series = best.extra.get("round_series")
    series_dict = series.to_dict() if series is not None else {}
    series_dict["parallel_round_work"] = summary["parallel_round_work"]
    series_dict["serial_round_work"] = summary["serial_round_work"]
    record["series"] = series_dict
    return record


def _engine_compare_record(instance: Any, repeats: int) -> dict[str, Any]:
    """Extra ``engine_compare`` scenario record for the bench document.

    ``wall_s`` is the *vectorized* uninstrumented wall so document
    comparisons track the engine the repo actually ships; the naive
    wall, speedup, and bit-for-bit identity verdict ride along.
    Scenarios present in only one document are never flagged by
    :func:`compare_documents`, so older baselines stay comparable.
    """
    from repro.obs.equivalence import compare_engines

    cmp = compare_engines(instance, repeats=repeats)
    return {
        "scenario": "engine_compare",
        "algorithm": "AGT-RAM",
        "wall_s": cmp.vectorized_wall_s,
        "naive_wall_s": cmp.naive_wall_s,
        "speedup": cmp.speedup,
        "identical": cmp.identical,
        "audit_ok": cmp.audit_ok,
        "mismatches": list(cmp.mismatches),
        "rounds": cmp.rounds,
        "spans": {},
        "counters": {},
    }


def run_bench(
    *,
    scale: Optional[str] = None,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
    repeats: int = 3,
    include_protocol: bool = True,
    event_sink: Optional[ev.EventSink] = None,
    engine: str = "auto",
    include_engine_compare: bool = True,
) -> dict[str, Any]:
    """Execute the benchmark scenarios and return the JSON document.

    Parameters
    ----------
    scale:
        Instance preset; defaults to ``REPRO_BENCH_SCALE`` (or "small").
    algorithms:
        Placement algorithms to record (default: the paper's six).
    seed:
        Root seed forwarded to the algorithm runner.
    repeats:
        Runs per scenario; ``wall_s`` is the best of them (span stats
        aggregate across all repeats).
    include_protocol:
        Also run the message-granular simulator scenario, which is the
        only source of message/byte counts.
    event_sink:
        Sink receiving the full event stream of every scenario run
        (e.g. a :class:`~repro.obs.events.ColumnarSink` to export a
        JSONL log / Chrome trace afterwards).  A fresh columnar sink is
        used when omitted — blocks stay columnar until export, and the
        v3 ``events_emitted`` / ``events_bytes`` accounting reads its
        counters; the per-round ``series`` in the document are derived
        from the event machinery either way.
    engine:
        AGT-RAM benefit engine (``auto`` / ``naive`` / ``vectorized``);
        recorded in the document config.  Other algorithms are
        unaffected.
    include_engine_compare:
        Also emit an ``engine_compare`` record proving the two engines
        are bit-for-bit identical on this preset and measuring the
        uninstrumented speedup (requires AGT-RAM among the algorithms
        and vectorized support; silently skipped otherwise).
    """
    from repro.drp.delta import HAVE_NUMPY
    from repro.experiments.instances import paper_instance

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    scale = scale if scale is not None else bench_scale()
    cfg = bench_config(scale)
    algorithms = tuple(algorithms) if algorithms else BENCH_ALGORITHMS
    instance = paper_instance(cfg)
    sink = event_sink if event_sink is not None else ev.ColumnarSink()

    results = [
        _placement_record(alg, instance, repeats, seed, sink, engine=engine)
        for alg in algorithms
    ]
    if include_protocol:
        results.append(_protocol_record(instance, repeats, sink))
    if include_engine_compare and HAVE_NUMPY and "AGT-RAM" in algorithms:
        results.append(_engine_compare_record(instance, repeats))

    return {
        "schema_version": SCHEMA_VERSION,
        "kind": DOCUMENT_KIND,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "env": _environment(),
        "config": {
            "n_servers": cfg.n_servers,
            "n_objects": cfg.n_objects,
            "total_requests": cfg.total_requests,
            "rw_ratio": cfg.rw_ratio,
            "capacity_fraction": cfg.capacity_fraction,
            "seed": cfg.seed,
            "engine": engine,
        },
        "results": results,
    }


# -- document I/O -----------------------------------------------------------


def validate_document(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed bench document."""
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    if doc.get("kind") != DOCUMENT_KIND:
        raise ValueError(f"not a {DOCUMENT_KIND} document: kind={doc.get('kind')!r}")
    version = doc.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad schema_version: {version!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"document schema_version {version} is newer than supported "
            f"{SCHEMA_VERSION}; upgrade the library"
        )
    results = doc.get("results")
    if not isinstance(results, list):
        raise ValueError("bench document has no results list")
    for i, record in enumerate(results):
        if not isinstance(record, dict):
            raise ValueError(f"results[{i}] is not an object")
        for key in ("scenario", "algorithm", "wall_s"):
            if key not in record:
                raise ValueError(f"results[{i}] missing required key {key!r}")
        if not isinstance(record["wall_s"], (int, float)) or record["wall_s"] < 0:
            raise ValueError(f"results[{i}].wall_s must be a non-negative number")
        spans = record.get("spans", {})
        if not isinstance(spans, dict):
            raise ValueError(f"results[{i}].spans must be an object")
        series = record.get("series")
        if series is not None:
            if not isinstance(series, dict) or not all(
                isinstance(v, list) for v in series.values()
            ):
                raise ValueError(
                    f"results[{i}].series must map series names to lists"
                )


def write_document(doc: dict[str, Any], path: str | Path) -> Path:
    """Validate and write a bench document; returns the path written."""
    validate_document(doc)
    out = Path(path)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return out


def load_document(path: str | Path) -> dict[str, Any]:
    """Load and validate a bench document from disk."""
    doc = json.loads(Path(path).read_text())
    validate_document(doc)
    return doc


# -- comparison -------------------------------------------------------------


def _index(doc: dict[str, Any]) -> dict[tuple[str, str], dict[str, Any]]:
    return {(r["scenario"], r["algorithm"]): r for r in doc["results"]}


def compare_documents(
    old: dict[str, Any],
    new: dict[str, Any],
    *,
    time_tolerance: float = TIME_TOLERANCE,
    quality_tolerance: float = QUALITY_TOLERANCE,
) -> dict[str, Any]:
    """Diff two bench documents; returns regressions and improvements.

    A *time regression* is ``new.wall_s > old.wall_s * (1 + time_tolerance)``;
    a *quality regression* is an OTC-savings drop of more than
    ``quality_tolerance`` absolute percentage points.  Scenarios present
    in only one document are reported but never flagged.
    """
    if time_tolerance < 0 or quality_tolerance < 0:
        raise ValueError("tolerances must be >= 0")
    validate_document(old)
    validate_document(new)
    old_index, new_index = _index(old), _index(new)

    regressions: list[dict[str, Any]] = []
    improvements: list[dict[str, Any]] = []
    unchanged: list[str] = []
    for key in sorted(set(old_index) & set(new_index)):
        label = f"{key[0]}/{key[1]}"
        o, n = old_index[key], new_index[key]
        flagged = False

        old_t, new_t = float(o["wall_s"]), float(n["wall_s"])
        ratio = new_t / old_t if old_t > 0 else float("inf") if new_t > 0 else 1.0
        entry = {
            "key": label,
            "metric": "wall_s",
            "old": old_t,
            "new": new_t,
            "ratio": ratio,
        }
        if old_t > 0 and new_t > old_t * (1.0 + time_tolerance):
            regressions.append(entry)
            flagged = True
        elif old_t > 0 and new_t < old_t / (1.0 + time_tolerance):
            improvements.append(entry)
            flagged = True

        if "savings_percent" in o and "savings_percent" in n:
            old_q, new_q = float(o["savings_percent"]), float(n["savings_percent"])
            q_entry = {
                "key": label,
                "metric": "savings_percent",
                "old": old_q,
                "new": new_q,
                "delta": new_q - old_q,
            }
            if new_q < old_q - quality_tolerance:
                regressions.append(q_entry)
                flagged = True
            elif new_q > old_q + quality_tolerance:
                improvements.append(q_entry)
                flagged = True

        if not flagged:
            unchanged.append(label)

    only_old = sorted(f"{s}/{a}" for s, a in set(old_index) - set(new_index))
    only_new = sorted(f"{s}/{a}" for s, a in set(new_index) - set(old_index))
    return {
        "time_tolerance": time_tolerance,
        "quality_tolerance": quality_tolerance,
        "regressions": regressions,
        "improvements": improvements,
        "unchanged": unchanged,
        "only_in_old": only_old,
        "only_in_new": only_new,
    }


def format_comparison(cmp: dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`compare_documents` result."""
    lines: list[str] = []
    for entry in cmp["regressions"]:
        if entry["metric"] == "wall_s":
            lines.append(
                f"REGRESSION  {entry['key']}: wall {entry['old'] * 1e3:.2f} ms "
                f"-> {entry['new'] * 1e3:.2f} ms ({entry['ratio']:.2f}x)"
            )
        else:
            lines.append(
                f"REGRESSION  {entry['key']}: savings {entry['old']:.2f}% "
                f"-> {entry['new']:.2f}% ({entry['delta']:+.2f} pts)"
            )
    for entry in cmp["improvements"]:
        if entry["metric"] == "wall_s":
            lines.append(
                f"improved    {entry['key']}: wall {entry['old'] * 1e3:.2f} ms "
                f"-> {entry['new'] * 1e3:.2f} ms ({entry['ratio']:.2f}x)"
            )
        else:
            lines.append(
                f"improved    {entry['key']}: savings {entry['old']:.2f}% "
                f"-> {entry['new']:.2f}% ({entry['delta']:+.2f} pts)"
            )
    for label in cmp["only_in_old"]:
        lines.append(f"missing     {label} (present only in old document)")
    for label in cmp["only_in_new"]:
        lines.append(f"new         {label} (present only in new document)")
    n_ok = len(cmp["unchanged"])
    lines.append(
        f"{len(cmp['regressions'])} regression(s), "
        f"{len(cmp['improvements'])} improvement(s), {n_ok} within tolerance "
        f"(time tol {cmp['time_tolerance']:.0%}, "
        f"quality tol {cmp['quality_tolerance']:.1f} pts)"
    )
    return "\n".join(lines)


def default_output_name(date: Optional[str] = None) -> str:
    """The conventional trajectory filename, ``BENCH_<YYYY-MM-DD>.json``."""
    if date is None:
        import datetime

        date = datetime.date.today().isoformat()
    return f"BENCH_{date}.json"


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    """Allow ``python -m repro.obs.report`` as a direct entry point."""
    from repro.cli import main as cli_main

    return cli_main(["bench", *(argv if argv is not None else sys.argv[1:])])
