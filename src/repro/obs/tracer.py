"""Hierarchical timer spans and counters — the tracing core of ``repro.obs``.

Design goals, in order:

1. **Near-zero overhead when disabled.**  Tracing is off by default; the
   entire library stays instrumented at all times, so the disabled path
   must be cheap enough to sit inside AGT-RAM's per-round loop.  Two
   disciplines follow:

   * coarse regions use ``with tracer.span(name)``, which returns a
     shared no-op singleton when the tracer is disabled (one method call,
     no allocation);
   * the innermost hot phases use the *explicit* pattern::

         enabled = tracer.enabled
         t0 = perf_counter() if enabled else 0.0
         ...work...
         if enabled:
             tracer.add("phase", perf_counter() - t0)

     whose disabled cost is a single attribute read per phase.

2. **Hierarchy without bookkeeping.**  Span names nest: entering
   ``span("run")`` then ``span("sweep")`` records the inner time under
   ``"run/sweep"``.  ``add()`` and ``count()`` prefix the current span
   path the same way, so phase timings recorded with the explicit
   pattern land under the enclosing span.

3. **Machine-readable output.**  :meth:`Tracer.snapshot` returns plain
   dicts (JSON-safe) that the bench harness embeds verbatim in
   ``BENCH_*.json`` files.

The module-level registry (:func:`current`, :func:`install`,
:func:`capture`) lets deeply-buried code find the active tracer without
threading it through every signature.  It is :mod:`contextvars`-based,
so concurrent captures — thread-pool workers under
:class:`~repro.runtime.parallel.ParallelBidEvaluator`, future async
code — each see their own tracer instead of clobbering a process-wide
global.  Worker threads spawned *outside* any capture see the disabled
default; code that fans out work should propagate its context (see
``ParallelBidEvaluator.evaluate``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "SpanStat",
    "Tracer",
    "NULL_TRACER",
    "current",
    "install",
    "capture",
]

_perf_counter = time.perf_counter

#: Separator used to build hierarchical span paths.
SEP = "/"


@dataclass
class SpanStat:
    """Aggregate statistics of one span path (all entries combined)."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = field(default=float("inf"))
    max_s: float = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.total_s / self.count if self.count else 0.0,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: pushes its path on enter, records elapsed on exit."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._push(self._name)
        self._start = _perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = _perf_counter() - self._start
        self._tracer._pop(elapsed)
        return None


class Tracer:
    """Collects hierarchical span timings and named counters.

    Parameters
    ----------
    enabled:
        When ``False`` every public method is a cheap no-op; the
        module-level :data:`NULL_TRACER` is the canonical disabled
        instance.
    """

    __slots__ = ("enabled", "spans", "counters", "_stack")

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self.spans: dict[str, SpanStat] = {}
        self.counters: dict[str, float] = {}
        self._stack: list[str] = []

    # -- span plumbing -----------------------------------------------------

    def _path(self, name: str) -> str:
        if self._stack:
            return self._stack[-1] + SEP + name
        return name

    def _push(self, name: str) -> None:
        self._stack.append(self._path(name))

    def _pop(self, elapsed: float) -> None:
        path = self._stack.pop()
        stat = self.spans.get(path)
        if stat is None:
            stat = self.spans[path] = SpanStat()
        stat.record(elapsed)

    # -- public API --------------------------------------------------------

    def span(self, name: str) -> object:
        """Context manager timing one region under the current path.

        Disabled tracers return a shared no-op singleton, so the call is
        safe (and cheap) in any code path.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Record one explicit timing under the current span path.

        Used by hot loops that time with ``perf_counter`` directly; see
        the module docstring for the gating pattern.
        """
        if not self.enabled:
            return
        path = self._path(name)
        stat = self.spans.get(path)
        if stat is None:
            stat = self.spans[path] = SpanStat()
        stat.record(seconds)

    def count(self, name: str, n: float = 1) -> None:
        """Increment a named counter (prefixed by the current span path)."""
        if not self.enabled:
            return
        path = self._path(name)
        self.counters[path] = self.counters.get(path, 0) + n

    def reset(self) -> None:
        """Drop all collected data (the span stack must be empty)."""
        if self._stack:
            raise RuntimeError("cannot reset a tracer with open spans")
        self.spans.clear()
        self.counters.clear()

    def snapshot(self) -> dict:
        """JSON-safe dump: ``{"spans": {path: stats}, "counters": {...}}``."""
        return {
            "spans": {path: stat.to_dict() for path, stat in self.spans.items()},
            "counters": dict(self.counters),
        }

    def total(self, path: str) -> float:
        """Total seconds recorded under an exact span path (0.0 if absent)."""
        stat = self.spans.get(path)
        return stat.total_s if stat is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Tracer({state}, {len(self.spans)} spans, "
            f"{len(self.counters)} counters)"
        )


#: The canonical disabled tracer — the default "current" tracer.
NULL_TRACER = Tracer(enabled=False)

_current: ContextVar[Tracer] = ContextVar("repro_obs_tracer", default=NULL_TRACER)


def current() -> Tracer:
    """The active tracer; :data:`NULL_TRACER` (disabled) by default."""
    return _current.get()


def install(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the active tracer; returns the previous one.

    ``None`` restores the disabled default.  Prefer :func:`capture` for
    scoped use — ``install`` exists for long-lived embeddings (e.g. a
    service exporting metrics for its whole lifetime).  The registry is
    a :class:`contextvars.ContextVar`, so installation is scoped to the
    current execution context: concurrent threads/tasks with their own
    captures do not interfere.
    """
    previous = _current.get()
    _current.set(tracer if tracer is not None else NULL_TRACER)
    return previous


@contextmanager
def capture(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scoped tracing: install a fresh (or given) tracer, restore on exit.

    >>> from repro.obs import capture
    >>> with capture() as tr:            # doctest: +SKIP
    ...     mechanism.run(instance)
    >>> tr.snapshot()["spans"]           # doctest: +SKIP
    """
    active = tracer if tracer is not None else Tracer()
    previous = install(active)
    try:
        yield active
    finally:
        install(previous)
