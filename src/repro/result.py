"""The common result record every replica-placement algorithm returns.

Keeping one shape lets the experiment harness treat AGT-RAM and all five
baselines uniformly when producing the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.drp.savings import otc_savings_percent
from repro.drp.state import ReplicationState


@dataclass
class PlacementResult:
    """Outcome of one replica-placement run.

    Attributes
    ----------
    algorithm:
        Canonical algorithm label ("AGT-RAM", "Greedy", "GRA", ...).
    state:
        The final replication scheme.
    otc:
        Final cumulative Object Transfer Cost.
    runtime_s:
        Wall-clock seconds spent inside the algorithm.
    rounds:
        Algorithm-specific iteration count (mechanism rounds, greedy
        steps, GA generations, auction rounds, search-node expansions).
    extra:
        Algorithm-specific payload (payments, message counts, audit log).
    """

    algorithm: str
    state: ReplicationState
    otc: float
    runtime_s: float
    rounds: int
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def savings_percent(self) -> float:
        """OTC savings vs the primaries-only scheme (the paper's metric)."""
        return otc_savings_percent(self.state)

    @property
    def replicas_allocated(self) -> int:
        return self.state.total_replicas()

    def __repr__(self) -> str:
        return (
            f"PlacementResult({self.algorithm}, otc={self.otc:.1f}, "
            f"savings={self.savings_percent:.1f}%, replicas="
            f"{self.replicas_allocated}, {self.runtime_s:.3f}s)"
        )
