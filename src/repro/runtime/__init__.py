"""Semi-distributed execution model.

The paper's deployment (Ada/GLADE over a distributed system) exchanges
messages between server agents and a lightweight central body.  This
package simulates that protocol at message granularity:

* :mod:`repro.runtime.messages` — the wire protocol (BID, ALLOCATE,
  PAYMENT, NN_UPDATE) with byte accounting,
* :mod:`repro.runtime.central` — the central decision body, whose only
  output per round is the binary replicate / don't-replicate decision,
* :mod:`repro.runtime.simulator` — a round-based simulation driving
  :class:`~repro.core.agents.ReplicaAgent` objects through Figure 2,
* :mod:`repro.runtime.parallel` — thread-pool evaluation of the PARFOR
  loops (agents genuinely compute bids concurrently),
* :mod:`repro.runtime.metrics` — rounds / messages / bytes accounting,
* :mod:`repro.runtime.faults` — fault injection: crash/recover
  schedules, lossy channels, bid deadlines with quorum degradation, and
  central checkpoint/recovery,
* :mod:`repro.runtime.adversary` — Byzantine injection (scripted bid
  corruption, equivocation, collusion) and the hardened trust boundary
  (message validation, online manipulation detection, quarantine).
"""

from repro.runtime.messages import (
    Message,
    BidMessage,
    AllocateMessage,
    PaymentMessage,
    NNUpdateMessage,
    NNResyncMessage,
    StateSyncMessage,
    ElectionMessage,
    MessageLog,
)
from repro.runtime.faults import (
    ChannelConfig,
    Checkpoint,
    CheckpointStore,
    Delivery,
    FaultInjector,
    FaultPlan,
    FaultSchedule,
    FaultyChannel,
    QuorumPolicy,
)
from repro.runtime.adversary import (
    AdversaryInjector,
    AdversaryPlan,
    AdversarySpec,
    ManipulationDetector,
    MessageValidator,
    QuarantineManager,
    QuarantinePolicy,
    TrustBoundary,
)
from repro.runtime.central import CentralBody, Decision
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.simulator import SemiDistributedSimulator
from repro.runtime.parallel import ParallelBidEvaluator
from repro.runtime.replay import RealizedCost, replay_requests, replay_trace

__all__ = [
    "Message",
    "BidMessage",
    "AllocateMessage",
    "PaymentMessage",
    "NNUpdateMessage",
    "NNResyncMessage",
    "StateSyncMessage",
    "ElectionMessage",
    "MessageLog",
    "ChannelConfig",
    "Checkpoint",
    "CheckpointStore",
    "Delivery",
    "FaultInjector",
    "FaultPlan",
    "FaultSchedule",
    "FaultyChannel",
    "QuorumPolicy",
    "AdversaryInjector",
    "AdversaryPlan",
    "AdversarySpec",
    "ManipulationDetector",
    "MessageValidator",
    "QuarantineManager",
    "QuarantinePolicy",
    "TrustBoundary",
    "CentralBody",
    "Decision",
    "RuntimeMetrics",
    "SemiDistributedSimulator",
    "ParallelBidEvaluator",
    "RealizedCost",
    "replay_requests",
    "replay_trace",
]
