"""Byzantine-agent injection and the hardened trust boundary.

PR 4's :mod:`repro.runtime.faults` models *crash/omission* faults —
agents that stop, links that lose.  This module models the other half
of the threat matrix: agents that **lie**.  Second-price payments make
truth-telling a dominant strategy for *rational* agents (PAPER.md
§4–5), but the protocol machinery itself must survive irrational,
malformed, and colluding traffic for that incentive property to mean
anything in deployment (Tanaka et al.'s faithfulness argument).  Two
halves, both seeded and deterministic:

**Attack** — :class:`AdversaryPlan` scripts per-agent Byzantine
behaviour (composable with a :class:`~repro.runtime.faults.FaultPlan`;
the adversary corrupts bids *before* the lossy channel touches them):

* ``inflate`` / ``deflate`` — mis-scaled CoR reports (the per-bid
  application of :class:`~repro.core.strategies.TopInflation` /
  :class:`~repro.core.strategies.UnderProjection`);
* ``infeasible`` — bids for objects the sender already hosts;
* ``overclaim`` — bids for objects exceeding the sender's residual
  capacity;
* ``garbage`` — malformed wire fields (NaN/inf values, out-of-range
  object ids, absurd sequence numbers);
* ``equivocate`` — conflicting payloads presented as retransmissions
  of one bid;
* ``collude`` — a seeded ring that props up the second price: the
  ring member with the best true valuation bids honestly while its
  ring-mates report just below it, inflating the payment the winner
  extracts from the mechanism.

:class:`AdversaryInjector` executes a plan, emitting a ground-truth
:class:`~repro.obs.events.AdversaryEvent` for every bid it actually
alters — which is what lets a campaign score detection
precision/recall.

**Defence** — :class:`TrustBoundary` bundles the three hardening
layers the simulator puts in front of
:meth:`~repro.runtime.central.CentralBody.decide`:

* :class:`MessageValidator` — schema / range / feasibility /
  sequence-sanity checks over every delivered bid; rejects with a
  typed :class:`~repro.obs.events.ValidationEvent` instead of
  crashing;
* :class:`ManipulationDetector` — in-loop recomputation of each
  delivered bid against the central body's own benefit oracle
  (extending :mod:`repro.obs.audit` from offline to online), flagging
  deviations as :class:`~repro.obs.events.ManipulationEvent`;
* :class:`QuarantineManager` (configured by :class:`QuarantinePolicy`)
  — strike-based exclusion with rejoin probation and eventual
  expulsion, so the mechanism degrades gracefully: a quarantined
  agent's traffic keeps being served (its primaries and existing
  replicas stay), it just stops acquiring replicas.

Determinism contract: a null plan leaves the run byte-identical to the
honest path (validator and detector see exact truthful values and emit
nothing), and the same seed reproduces the same campaign log
byte-for-byte under the logical event clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.core.agents import Bid
from repro.core.strategies import TopInflation, UnderProjection
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.obs import events as ev
from repro.runtime.messages import BidMessage
from repro.utils.rng import as_generator

__all__ = [
    "BEHAVIORS",
    "AdversarySpec",
    "AdversaryPlan",
    "AdversaryInjector",
    "MessageValidator",
    "ManipulationDetector",
    "QuarantinePolicy",
    "QuarantineManager",
    "TrustBoundary",
]

#: The scripted Byzantine behaviours, in canonical order.
BEHAVIORS = (
    "inflate",
    "deflate",
    "infeasible",
    "overclaim",
    "garbage",
    "equivocate",
    "collude",
)

#: Booster bids sit this fraction below the ring leader's bid — close
#: enough to set (and inflate) the second price, never enough to win.
_COLLUSION_MARGIN = 1e-6


# -- the attack plan ---------------------------------------------------------


@dataclass(frozen=True)
class AdversarySpec:
    """One agent's scripted misbehaviour.

    Attributes
    ----------
    behavior:
        One of :data:`BEHAVIORS`.
    factor:
        Scale for ``inflate`` (> 1; deflation uses its reciprocal).
    activity:
        Per-round probability the agent misbehaves (1.0 = every round;
        on inactive rounds it bids honestly).
    ring:
        Collusion ring id (``collude`` only; members with the same id
        coordinate).
    """

    behavior: str
    factor: float = 2.0
    activity: float = 1.0
    ring: int = -1

    def __post_init__(self) -> None:
        if self.behavior not in BEHAVIORS:
            raise ConfigurationError(
                f"unknown adversary behavior {self.behavior!r}; expected "
                f"one of {BEHAVIORS}"
            )
        if self.factor <= 1.0:
            raise ConfigurationError(
                f"adversary factor must be > 1, got {self.factor}"
            )
        if not (0.0 < self.activity <= 1.0):
            raise ConfigurationError(
                f"adversary activity must be in (0, 1], got {self.activity}"
            )
        if self.behavior == "collude" and self.ring < 0:
            raise ConfigurationError("collude behavior requires a ring id >= 0")

    def to_dict(self) -> dict[str, Any]:
        return {
            "behavior": self.behavior,
            "factor": self.factor,
            "activity": self.activity,
            "ring": self.ring,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "AdversarySpec":
        return cls(
            behavior=str(d["behavior"]),
            factor=float(d.get("factor", 2.0)),
            activity=float(d.get("activity", 1.0)),
            ring=int(d.get("ring", -1)),
        )


@dataclass(frozen=True)
class AdversaryPlan:
    """Who misbehaves and how — pure data, reproducible from its seed.

    ``agents`` maps agent id to its :class:`AdversarySpec`; agents not
    listed are honest.  ``seed`` drives the injector's per-round
    activity draws and garbage-variant choices.  ``window`` optionally
    bounds the attack to the half-open round interval ``[start, end)``:
    outside it every scripted agent bids honestly (and consumes no
    injector randomness), so runtimes may treat the adversary as
    dormant — re-enabling optimizations like regional quiescence — once
    the window has passed.  ``None`` means the attack never ends.
    """

    agents: Mapping[int, AdversarySpec] = field(default_factory=dict)
    seed: int = 0
    window: Optional[tuple[int, int]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "agents",
            {int(a): spec for a, spec in dict(self.agents).items()},
        )
        for a in self.agents:
            if a < 0:
                raise ConfigurationError(f"adversary agent id {a} is negative")
        if self.window is not None:
            start, end = self.window
            if start < 0 or end < start:
                raise ConfigurationError(
                    f"adversary window must satisfy 0 <= start <= end, "
                    f"got {self.window}"
                )
            object.__setattr__(self, "window", (int(start), int(end)))

    def active_at(self, rnd: int) -> bool:
        """Is the attack armed during protocol round ``rnd``?"""
        if self.window is None:
            return True
        return self.window[0] <= rnd < self.window[1]

    def over_by(self, rnd: int) -> bool:
        """Has the attack window permanently ended at round ``rnd``?"""
        return self.window is not None and rnd >= self.window[1]

    @classmethod
    def null(cls) -> "AdversaryPlan":
        """The empty plan: every agent is honest."""
        return cls()

    @property
    def is_null(self) -> bool:
        return not self.agents

    @classmethod
    def random(
        cls,
        *,
        n_agents: int,
        fraction: float,
        behaviors: Sequence[str] = BEHAVIORS,
        factor: float = 2.0,
        activity: float = 1.0,
        seed: int = 0,
        window: Optional[tuple[int, int]] = None,
    ) -> "AdversaryPlan":
        """Sample a plan: ``round(fraction * n_agents)`` adversaries,
        behaviours drawn round-robin-uniformly from ``behaviors``.

        Colluders are grouped into one ring per plan.  Sampling order
        is fixed, so the plan is a pure function of the arguments.
        """
        if n_agents < 1:
            raise ConfigurationError("need n_agents >= 1")
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError(
                f"adversary fraction must be in [0, 1], got {fraction}"
            )
        behaviors = tuple(behaviors)
        for b in behaviors:
            if b not in BEHAVIORS:
                raise ConfigurationError(f"unknown adversary behavior {b!r}")
        if not behaviors:
            raise ConfigurationError("need at least one behavior")
        k = int(round(fraction * n_agents))
        rng = as_generator(seed)
        chosen = sorted(rng.choice(n_agents, size=min(k, n_agents),
                                   replace=False).tolist())
        agents: dict[int, AdversarySpec] = {}
        for idx, agent in enumerate(chosen):
            behavior = behaviors[idx % len(behaviors)]
            agents[int(agent)] = AdversarySpec(
                behavior=behavior,
                factor=factor,
                activity=activity,
                ring=0 if behavior == "collude" else -1,
            )
        # A ring of one cannot collude; fold singletons into inflation.
        ring_members = [a for a, s in agents.items() if s.behavior == "collude"]
        if len(ring_members) == 1:
            a = ring_members[0]
            agents[a] = AdversarySpec(
                behavior="inflate", factor=factor, activity=activity
            )
        return cls(agents=agents, seed=int(seed), window=window)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (the artifact the adversary CLI writes)."""
        out: dict[str, Any] = {
            "agents": {
                str(a): spec.to_dict() for a, spec in sorted(self.agents.items())
            },
            "seed": self.seed,
        }
        if self.window is not None:
            out["window"] = list(self.window)
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "AdversaryPlan":
        window = d.get("window")
        return cls(
            agents={
                int(a): AdversarySpec.from_dict(spec)
                for a, spec in dict(d.get("agents", {})).items()
            },
            seed=int(d.get("seed", 0)),
            window=None if window is None else (int(window[0]), int(window[1])),
        )


# -- the attack engine -------------------------------------------------------


class AdversaryInjector:
    """Executes one :class:`AdversaryPlan` against a simulator run.

    :meth:`corrupt_round` maps the round's honest bids to the payloads
    actually transmitted, emitting a ground-truth
    :class:`~repro.obs.events.AdversaryEvent` per altered bid and
    tallying the campaign summary.  Identity transforms (an inactive
    round, a zero-valued bid that scaling cannot change) are *not*
    recorded — ground truth counts observable manipulations only.
    """

    def __init__(self, plan: AdversaryPlan, n_agents: int):
        for a in plan.agents:
            if a >= n_agents:
                raise ConfigurationError(
                    f"adversary agent {a} out of range for {n_agents} agents"
                )
        self.plan = plan
        self._rng = as_generator(plan.seed)
        self.summary: dict[str, int] = {b: 0 for b in BEHAVIORS}
        self.summary["injected_bids"] = 0

    def dormant(self, rnd: int, expelled: "set[int] | frozenset[int]" = frozenset()) -> bool:
        """Can the run treat the adversary as permanently inert at
        ``rnd``?  True once the plan's activity window has ended, or
        once every scripted agent has been permanently expelled —
        either way no future round can carry a corrupted bid, so
        honest-path optimizations (regional quiescence) are safe again.
        """
        if self.plan.over_by(rnd):
            return True
        agents = self.plan.agents
        return bool(agents) and set(agents) <= set(expelled)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _emit(event: ev.Event) -> None:
        sink = ev.current()
        if sink.enabled:
            sink.emit(event)

    def _record(
        self, rnd: int, agent: int, behavior: str, obj: int, value: float,
        detail: str = "",
    ) -> None:
        self.summary[behavior] += 1
        self.summary["injected_bids"] += 1
        self._emit(
            ev.AdversaryEvent(
                t=ev.now(), round=rnd, agent=agent, behavior=behavior,
                obj=obj, value=value, detail=detail,
            )
        )

    def _scaled(self, spec: AdversarySpec, value: float, up: bool) -> float:
        strategy = (
            TopInflation(spec.factor) if up else UnderProjection(1.0 / spec.factor)
        )
        return float(strategy.report(np.array([value]))[0])

    # -- the per-round transform -------------------------------------------

    def corrupt_round(
        self,
        rnd: int,
        bids: Mapping[int, Bid],
        state: ReplicationState,
        instance: DRPInstance,
    ) -> dict[int, list[tuple[int, float]]]:
        """Transform one round's honest bids into wire payloads.

        Returns ``{agent: [(obj, value), ...]}`` for every bidding
        agent — a single honest entry for well-behaved agents, altered
        or multiplied entries for scripted ones.  Draw order is fixed
        (sorted agents), so the realization is a pure function of the
        plan seed and the (deterministic) bid sequence.
        """
        out: dict[int, list[tuple[int, float]]] = {
            a: [(b.obj, b.value)] for a, b in bids.items()
        }
        if not self.plan.active_at(rnd):
            # Outside the activity window every scripted agent bids
            # honestly and no injector randomness is consumed, so the
            # realization inside the window is independent of how much
            # honest play surrounds it.
            return out
        specs = {
            a: s for a, s in self.plan.agents.items()
            if a in bids
            and (s.activity >= 1.0 or self._rng.random() < s.activity)
        }
        rings: dict[int, list[int]] = {}
        for agent in sorted(specs):
            spec = specs[agent]
            if spec.behavior == "collude":
                rings.setdefault(spec.ring, []).append(agent)
                continue
            honest = bids[agent]
            obj, value = honest.obj, honest.value
            if spec.behavior in ("inflate", "deflate"):
                sent = self._scaled(spec, value, up=spec.behavior == "inflate")
                # A shift inside the detector tolerance is economically
                # null and undetectable by construction — skip it rather
                # than count an unfindable "injection" against recall.
                if not math.isclose(
                    sent, value,
                    rel_tol=DETECTOR_REL_TOL, abs_tol=DETECTOR_REL_TOL,
                ):
                    out[agent] = [(obj, sent)]
                    self._record(rnd, agent, spec.behavior, obj, sent)
            elif spec.behavior == "infeasible":
                hosted = np.nonzero(state.x[agent])[0]
                if len(hosted):
                    bad = int(hosted[0])
                    sent = abs(value) * spec.factor + 1.0
                    out[agent] = [(bad, sent)]
                    self._record(rnd, agent, "infeasible", bad, sent,
                                 detail="already hosted")
            elif spec.behavior == "overclaim":
                too_big = np.nonzero(
                    instance.sizes > state.residual[agent]
                )[0]
                if len(too_big):
                    bad = int(too_big[np.argmax(instance.sizes[too_big])])
                    sent = abs(value) * spec.factor + 1.0
                    out[agent] = [(bad, sent)]
                    self._record(rnd, agent, "overclaim", bad, sent,
                                 detail="exceeds residual")
            elif spec.behavior == "garbage":
                variant = int(self._rng.integers(0, 3))
                if variant == 0:
                    bad_obj, sent = obj, float("nan")
                elif variant == 1:
                    bad_obj, sent = obj, float("inf")
                else:
                    bad_obj, sent = instance.n_objects + 7, abs(value) + 1.0
                out[agent] = [(bad_obj, sent)]
                self._record(rnd, agent, "garbage", bad_obj, sent,
                             detail=f"variant {variant}")
            elif spec.behavior == "equivocate":
                if math.isfinite(value) and value != 0.0:
                    hi = self._scaled(spec, value, up=True)
                    lo = self._scaled(spec, value, up=False)
                    out[agent] = [(obj, hi), (obj, lo)]
                    self._record(rnd, agent, "equivocate", obj, hi,
                                 detail=f"second payload {lo}")
        # Collusion rings: the member with the best true valuation bids
        # honestly; the others report just below it, propping up the
        # second price the leader is paid.
        for members in rings.values():
            if len(members) < 2:
                continue
            leader = max(members, key=lambda a: (bids[a].value, -a))
            target = bids[leader].value
            if not math.isfinite(target) or target <= 0.0:
                continue
            for booster in members:
                if booster == leader:
                    continue  # the leader's bid is honest this round
                boost = target * (1.0 - _COLLUSION_MARGIN)
                if not math.isclose(
                    boost, bids[booster].value,
                    rel_tol=DETECTOR_REL_TOL, abs_tol=DETECTOR_REL_TOL,
                ):
                    out[booster] = [(bids[booster].obj, boost)]
                    self._record(rnd, booster, "collude", bids[booster].obj,
                                 boost, detail=f"boosting agent {leader}")
        return out

    def summary_dict(self) -> dict[str, Any]:
        return {"plan": self.plan.to_dict(), "injected": dict(self.summary)}


# -- the defence: validator --------------------------------------------------


class MessageValidator:
    """Schema / range / feasibility screening in front of the central.

    Everything the validator checks is public knowledge under Axiom 2
    — object sizes, capacities, and the replica map the OMAX broadcasts
    rebuild — so the central body can run it without learning any
    agent's private read/write data.  Rejections are typed
    :class:`~repro.obs.events.ValidationEvent` records, never crashes;
    a rejected bid simply does not participate in the round.
    """

    def __init__(self, instance: DRPInstance, *, max_seq: int = 64):
        self.instance = instance
        self.max_seq = max_seq
        self.rejections = 0

    def screen(
        self,
        bids: list[BidMessage],
        state: ReplicationState,
        rnd: int,
    ) -> tuple[list[BidMessage], list[ev.ValidationEvent]]:
        """Split a round's delivered bids into (accepted, rejections).

        Equivocation (conflicting payloads from one sender) voids *all*
        of that sender's copies: the central cannot know which payload
        the agent meant, and honoring either would reward the lie.
        Exact duplicates (retransmissions) pass through untouched — the
        central body's idempotent dedup handles them.
        """
        n, n_objects = self.instance.n_servers, self.instance.n_objects
        events: list[ev.ValidationEvent] = []
        rejected: set[int] = set()
        seen: dict[int, tuple[int, float]] = {}

        def reject(bid: BidMessage, kind: str, detail: str) -> None:
            self.rejections += 1
            events.append(
                ev.ValidationEvent(
                    t=ev.now(), round=rnd, agent=bid.sender, kind=kind,
                    obj=bid.obj, value=bid.value, detail=detail,
                )
            )

        for bid in bids:
            if not (0 <= bid.sender < n):
                reject(bid, "unknown_sender",
                       f"sender {bid.sender} out of range")
                continue
            if bid.sender in rejected:
                continue
            if not (0 <= bid.obj < n_objects):
                reject(bid, "schema", f"object id {bid.obj} out of range")
                rejected.add(bid.sender)
                continue
            if not math.isfinite(bid.value):
                reject(bid, "schema", f"non-finite value {bid.value}")
                rejected.add(bid.sender)
                continue
            if not (0 <= bid.seq <= self.max_seq):
                reject(bid, "schema", f"sequence number {bid.seq} out of range")
                rejected.add(bid.sender)
                continue
            content = (bid.obj, bid.value)
            prior = seen.get(bid.sender)
            if prior is not None and prior != content:
                reject(bid, "equivocation",
                       f"conflicts with earlier payload {prior}")
                rejected.add(bid.sender)
                continue
            if prior is None:
                if state.x[bid.sender, bid.obj]:
                    reject(bid, "feasibility",
                           f"sender already hosts object {bid.obj}")
                    rejected.add(bid.sender)
                    continue
                if self.instance.sizes[bid.obj] > state.residual[bid.sender]:
                    reject(
                        bid, "overclaim",
                        f"object {bid.obj} (size "
                        f"{int(self.instance.sizes[bid.obj])}) exceeds "
                        f"residual {int(state.residual[bid.sender])}",
                    )
                    rejected.add(bid.sender)
                    continue
            seen[bid.sender] = content

        accepted = [
            b for b in bids
            if 0 <= b.sender < n and b.sender not in rejected
        ]
        return accepted, events


# -- the defence: online detector --------------------------------------------

#: Relative tolerance of the misreport check; honest reports match the
#: oracle exactly, so anything beyond float noise is a lie.
DETECTOR_REL_TOL = 1e-6


class ManipulationDetector:
    """Online cross-check of delivered bids against the benefit oracle.

    The offline audit (:mod:`repro.obs.audit`) re-verifies winner and
    payment *after* the run; this detector closes the loop *during*
    it: every delivered, validator-accepted bid is recomputed from the
    central body's own copy of the valuation oracle and flagged when
    the report deviates beyond :data:`DETECTOR_REL_TOL`.  (In the
    reproduction the oracle is the shared
    :class:`~repro.drp.benefit.BenefitEngine` matrix — exactly the
    view the agents bid from, so honest bids match to the bit and
    false positives are structurally impossible.)
    """

    def __init__(self, rel_tol: float = DETECTOR_REL_TOL):
        if rel_tol <= 0:
            raise ConfigurationError("detector rel_tol must be > 0")
        self.rel_tol = rel_tol
        self.flags = 0

    def inspect(
        self,
        bids: list[BidMessage],
        oracle: "np.ndarray | Any",
        rnd: int,
    ) -> list[ev.ManipulationEvent]:
        """Flag accepted bids whose value mismatches the recomputation.

        ``oracle`` is the valuation view at bid time (before this
        round's commit mutates it): either a raw (M, N) matrix or a
        benefit engine exposing ``value_at`` — the delta engine never
        materializes the full matrix, so the detector asks for single
        cells.
        """
        cell = (
            (lambda i, k: float(oracle[i, k]))
            if isinstance(oracle, np.ndarray)
            else oracle.value_at
        )
        events: list[ev.ManipulationEvent] = []
        checked: set[int] = set()
        for bid in bids:
            if bid.sender in checked:
                continue  # retransmitted copies carry the same payload
            checked.add(bid.sender)
            true_value = float(cell(bid.sender, bid.obj))
            if not math.isfinite(true_value):
                # The validator's feasibility screen should have caught
                # this; flag defensively rather than crash.
                kind, mismatch = "infeasible_value", True
            else:
                mismatch = not math.isclose(
                    bid.value, true_value, rel_tol=self.rel_tol,
                    abs_tol=self.rel_tol,
                )
                kind = "misreport"
            if mismatch:
                self.flags += 1
                events.append(
                    ev.ManipulationEvent(
                        t=ev.now(), round=rnd, agent=bid.sender, kind=kind,
                        obj=bid.obj, reported=bid.value,
                        recomputed=true_value,
                    )
                )
        return events


# -- the defence: quarantine -------------------------------------------------


@dataclass(frozen=True)
class QuarantinePolicy:
    """Strike-based exclusion with rejoin probation.

    Attributes
    ----------
    strikes:
        Flagged rounds before an agent is quarantined.
    probation:
        Rounds a quarantined agent sits out before rejoining.
    max_quarantines:
        Quarantines tolerated before the agent is expelled for the
        rest of the run (its replicas and primaries keep serving).
    """

    strikes: int = 3
    probation: int = 20
    max_quarantines: int = 3

    def __post_init__(self) -> None:
        if self.strikes < 1:
            raise ConfigurationError("quarantine strikes must be >= 1")
        if self.probation < 1:
            raise ConfigurationError("quarantine probation must be >= 1 round")
        if self.max_quarantines < 1:
            raise ConfigurationError("max_quarantines must be >= 1")

    def to_dict(self) -> dict[str, int]:
        return {
            "strikes": self.strikes,
            "probation": self.probation,
            "max_quarantines": self.max_quarantines,
        }


class QuarantineManager:
    """Tracks strikes and standing; emits quarantine lifecycle events."""

    def __init__(self, policy: QuarantinePolicy):
        self.policy = policy
        self.strikes: dict[int, int] = {}
        self.quarantined_until: dict[int, int] = {}
        self.times_quarantined: dict[int, int] = {}
        self.expelled: set[int] = set()
        self.ever_quarantined: set[int] = set()

    @staticmethod
    def _emit(event: ev.Event) -> None:
        sink = ev.current()
        if sink.enabled:
            sink.emit(event)

    @property
    def quarantined(self) -> set[int]:
        return set(self.quarantined_until)

    def releases_due(self, rnd: int) -> list[int]:
        """Release agents whose probation ends at ``rnd``; returns them."""
        due = sorted(
            a for a, until in self.quarantined_until.items() if rnd >= until
        )
        for agent in due:
            del self.quarantined_until[agent]
            self.strikes[agent] = 0
            self._emit(
                ev.QuarantineEvent(
                    t=ev.now(), round=rnd, agent=agent, action="release",
                    strikes=0, until_round=-1,
                )
            )
        return due

    def strike(self, agent: int, rnd: int) -> None:
        """One strike; quarantines or expels when thresholds trip."""
        if agent in self.expelled or agent in self.quarantined_until:
            return
        self.strikes[agent] = self.strikes.get(agent, 0) + 1
        if self.strikes[agent] < self.policy.strikes:
            return
        times = self.times_quarantined.get(agent, 0) + 1
        self.times_quarantined[agent] = times
        self.ever_quarantined.add(agent)
        if times >= self.policy.max_quarantines:
            self.expelled.add(agent)
            self._emit(
                ev.QuarantineEvent(
                    t=ev.now(), round=rnd, agent=agent, action="expel",
                    strikes=self.strikes[agent], until_round=-1,
                )
            )
            return
        until = rnd + 1 + self.policy.probation
        self.quarantined_until[agent] = until
        self._emit(
            ev.QuarantineEvent(
                t=ev.now(), round=rnd, agent=agent, action="quarantine",
                strikes=self.strikes[agent], until_round=until,
            )
        )


# -- the bundle the simulator consumes ---------------------------------------


class TrustBoundary:
    """Validator + detector + quarantine, wired for one simulator run.

    The simulator calls, per round:

    1. :meth:`filter_bidders` — drop quarantined/expelled agents from
       the bid sweep (their traffic is served without new replicas)
       and process due releases;
    2. :meth:`screen` — validate delivered bids, emit the rejection
       events, and run the online detector over the survivors;
    3. strikes accrue per offending agent per round; quarantine and
       expulsion transitions are emitted as they trip.
    """

    def __init__(
        self,
        instance: DRPInstance,
        policy: Optional[QuarantinePolicy] = None,
    ):
        self.validator = MessageValidator(instance)
        self.detector = ManipulationDetector()
        self.quarantine = QuarantineManager(policy or QuarantinePolicy())
        #: Consecutive no-commit rounds attributable to rejections; a
        #: safety valve against a validator/adversary livelock.
        self.rejected_stalls = 0

    @staticmethod
    def _emit_all(events: Sequence[ev.Event]) -> None:
        sink = ev.current()
        if sink.enabled:
            for event in events:
                sink.emit(event)

    @property
    def excluded(self) -> set[int]:
        """Agents currently barred from bidding."""
        return self.quarantine.quarantined | self.quarantine.expelled

    def filter_bidders(self, ordered: list[int], rnd: int) -> list[int]:
        """Process due releases, then drop excluded agents."""
        self.quarantine.releases_due(rnd)
        excluded = self.excluded
        if not excluded:
            return ordered
        return [a for a in ordered if a not in excluded]

    def screen(
        self, bids: list[BidMessage], state: ReplicationState,
        oracle: "np.ndarray | Any", rnd: int,
    ) -> tuple[list[BidMessage], bool]:
        """Validate + detect over one round's delivered bids.

        ``oracle`` is forwarded to the detector: a raw valuation matrix
        or a benefit engine exposing ``value_at``.  Returns
        ``(accepted, offended)`` where ``offended`` says at least one
        bid was rejected or flagged this round (the simulator must not
        treat a quiet view as game termination then).
        """
        accepted, vevents = self.validator.screen(bids, state, rnd)
        self._emit_all(vevents)
        mevents = self.detector.inspect(accepted, oracle, rnd)
        self._emit_all(mevents)
        offenders = sorted(
            {e.agent for e in vevents if e.agent >= 0}
            | {e.agent for e in mevents}
        )
        for agent in offenders:
            self.quarantine.strike(agent, rnd)
        return accepted, bool(offenders)

    def summary_dict(self) -> dict[str, Any]:
        q = self.quarantine
        return {
            "policy": q.policy.to_dict(),
            "validations_rejected": self.validator.rejections,
            "manipulations_flagged": self.detector.flags,
            "agents_quarantined": sorted(q.ever_quarantined),
            "agents_expelled": sorted(q.expelled),
            "strikes": {str(a): s for a, s in sorted(q.strikes.items()) if s},
        }
