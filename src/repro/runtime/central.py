"""The central decision body.

The paper's scalability argument rests on how little this component
does: it receives one bid per active agent, takes the maximum, computes
the second-best payment, and answers with a single binary decision —
``(0) not to replicate or (1) to replicate``.  It holds no cost matrix,
no workload, no replica map beyond what the protocol itself carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.core.payments import PAYMENT_RULES
from repro.errors import ConfigurationError
from repro.obs import events as ev
from repro.runtime.messages import BidMessage


class Decision(IntEnum):
    """The central body's only vocabulary."""

    DO_NOT_REPLICATE = 0
    REPLICATE = 1


@dataclass(frozen=True)
class RoundOutcome:
    """What the central body announces after one round of bids.

    ``rejected`` lists agents whose bids were discarded as protocol
    violations (unknown sender id, equivocation) — the Byzantine layer
    and the simulator use it to distinguish "quiet round, game over"
    from "every bid this round was rejected, keep playing".
    """

    decision: Decision
    winner: int = -1
    obj: int = -1
    payment: float = 0.0
    rejected: tuple[int, ...] = ()


class CentralBody:
    """Stateless round arbiter."""

    def __init__(self, payment_rule: str = "second_price"):
        if payment_rule not in PAYMENT_RULES:
            raise ConfigurationError(
                f"unknown payment rule {payment_rule!r}; expected one of "
                f"{sorted(PAYMENT_RULES)}"
            )
        self._pay = PAYMENT_RULES[payment_rule]
        self.payment_rule = payment_rule

    def decide(
        self, bids: list[BidMessage], n_agents: int, *, rnd: int = -1
    ) -> RoundOutcome:
        """Pick the globally dominant bid and price it.

        **Tie-breaking is deterministic: on equal top bids the lowest
        agent id wins** (``np.argmax`` returns the first maximum).  The
        rule matters under quorum degradation, where lost bids make ties
        between the survivors more likely; a fixed rule keeps every
        replay of the same bid set bit-identical.

        **Duplicate tolerance**: lossy links retransmit, so the same bid
        may arrive more than once.  A copy that repeats an already-seen
        ``(sender, seq)`` pair — or carries identical content under a
        different sequence number — is discarded idempotently.

        **Protocol violations reject, never crash.**  A bid from an
        out-of-range agent id is dropped; two bids from one agent with
        *conflicting* content void **all** of that agent's copies for
        the round (the central cannot know which payload was meant, and
        honoring either would reward equivocation).  Each rejection is
        logged as a typed :class:`~repro.obs.events.ValidationEvent`
        (when a sink is active) and listed in
        :attr:`RoundOutcome.rejected`; the round proceeds over the
        surviving bids.  ``rnd`` tags those events with the round index.
        """
        sink = ev.current()

        def reject(bid: BidMessage, kind: str, detail: str) -> None:
            if sink.enabled:
                sink.emit(
                    ev.ValidationEvent(
                        t=ev.now(), round=rnd, agent=bid.sender, kind=kind,
                        obj=bid.obj, value=bid.value, detail=detail,
                    )
                )

        seen: dict[int, tuple[int, float]] = {}
        rejected: list[int] = []
        equivocators: set[int] = set()
        values = np.full(n_agents, -np.inf)
        objs = np.full(n_agents, -1, dtype=np.int64)
        for bid in bids:
            if not (0 <= bid.sender < n_agents):
                reject(bid, "unknown_sender",
                       f"bid from unknown agent {bid.sender}")
                rejected.append(bid.sender)
                continue
            if bid.sender in equivocators:
                continue
            content = (bid.obj, bid.value)
            if bid.sender in seen:
                if seen[bid.sender] == content:
                    continue  # retransmit / network duplicate
                reject(
                    bid, "equivocation",
                    f"agent {bid.sender} sent two bids with conflicting "
                    f"content in one round; all its copies discarded",
                )
                rejected.append(bid.sender)
                equivocators.add(bid.sender)
                del seen[bid.sender]
                values[bid.sender] = -np.inf
                objs[bid.sender] = -1
                continue
            seen[bid.sender] = content
            values[bid.sender] = bid.value
            objs[bid.sender] = bid.obj

        rejected_t = tuple(rejected)
        if not seen:
            return RoundOutcome(
                decision=Decision.DO_NOT_REPLICATE, rejected=rejected_t
            )
        winner = int(np.argmax(values))
        best = float(values[winner])
        if not np.isfinite(best) or best <= 0.0:
            return RoundOutcome(
                decision=Decision.DO_NOT_REPLICATE, rejected=rejected_t
            )
        payment = self._pay(values, winner)
        return RoundOutcome(
            decision=Decision.REPLICATE,
            winner=winner,
            obj=int(objs[winner]),
            payment=payment,
            rejected=rejected_t,
        )
