"""Fault injection for the semi-distributed runtime.

The paper claims AGT-RAM survives the failure modes of "large
distributed computing systems"; this module makes that claim testable.
It provides the fault model the simulator consumes:

* :class:`FaultSchedule` — a seeded, fully materialized plan of agent
  crash/recover intervals, central-body crash rounds, and straggler
  rounds.  Scripted (pass the intervals) or stochastic
  (:meth:`FaultSchedule.random`); either way the schedule is pure data,
  so the same seed reproduces the same faults byte-for-byte.
* :class:`ChannelConfig` / :class:`FaultyChannel` — a lossy message
  channel that drops, delays past the round deadline, or duplicates
  traffic with configurable per-transmission probabilities.  The
  channel draws a fixed number of uniforms per transmission, so the
  loss pattern is a deterministic function of the seed alone.
* :class:`QuorumPolicy` — the bid deadline semantics: how many
  retransmissions an agent attempts per round, what fraction of
  expected bids the central body requires before proceeding, and how
  many consecutive stalled rounds are tolerated before the run is
  declared non-convergent.
* :class:`Checkpoint` / :class:`CheckpointStore` — the central body's
  crash-recovery state: a snapshot of the replica map (as the ordered
  allocation list) and round counter, taken every ``period`` commits.
* :class:`FaultPlan` — the user-facing bundle of all of the above, the
  single ``faults=`` argument of
  :class:`~repro.runtime.simulator.SemiDistributedSimulator`.
* :class:`FaultInjector` — the runtime engine built from a plan: it
  owns the channel RNG, performs the retry/backoff transmission loops,
  records every injected fault through :mod:`repro.obs.events`, and
  keeps the campaign summary counters.

Failure semantics (documented in ``docs/robustness.md``):

* **Bids are deadline-bound.**  A bid dropped or delayed past the
  deadline on its final retransmission is *lost for the round*; the
  central body proceeds with the quorum that arrived (graceful
  degradation) and the loser simply re-bids next round.
* **NN-update traffic is gossiped reliably.**  Drops cost retransmitted
  messages and bytes, never consistency — so every agent's view stays
  exact and the mechanism's equilibrium reasoning survives.
* **Data survives agent failure.**  A crashed agent stops bidding; the
  replicas (and primaries) it already hosts keep serving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs import events as ev
from repro.runtime.messages import BidMessage, Message, MessageLog
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "Delivery",
    "ChannelConfig",
    "FaultyChannel",
    "FaultSchedule",
    "QuorumPolicy",
    "Checkpoint",
    "CheckpointStore",
    "FaultPlan",
    "FaultInjector",
]


# -- lossy channel -----------------------------------------------------------


class Delivery(Enum):
    """Outcome of one transmission attempt through a faulty link."""

    DELIVERED = "delivered"
    DROPPED = "dropped"
    #: Delivered, but after the round deadline — lost for this round.
    DELAYED = "delayed"
    #: Delivered twice (network-level duplication).
    DUPLICATED = "duplicated"


@dataclass(frozen=True)
class ChannelConfig:
    """Per-transmission fault probabilities of the message channel."""

    drop: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate"):
            p = getattr(self, name)
            if not (0.0 <= p < 1.0):
                raise ConfigurationError(
                    f"channel {name} probability must be in [0, 1); got {p}"
                )

    @property
    def lossless(self) -> bool:
        return self.drop == 0.0 and self.delay == 0.0 and self.duplicate == 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "drop": self.drop,
            "delay": self.delay,
            "duplicate": self.duplicate,
        }


class FaultyChannel:
    """Seeded lossy link: decides the fate of each transmission.

    Exactly three uniform draws per :meth:`transmit` call regardless of
    outcome, so the realized loss pattern depends only on the seed and
    the (deterministic) transmission order — never on which branch an
    earlier transmission took.
    """

    def __init__(self, config: ChannelConfig, seed: SeedLike = 0):
        self.config = config
        self._rng = as_generator(seed)
        self.stats: dict[str, int] = {
            "delivered": 0,
            "dropped": 0,
            "delayed": 0,
            "duplicated": 0,
        }

    def transmit(self) -> Delivery:
        u = self._rng.random(3)
        if u[0] < self.config.drop:
            outcome = Delivery.DROPPED
        elif u[1] < self.config.delay:
            outcome = Delivery.DELAYED
        elif u[2] < self.config.duplicate:
            outcome = Delivery.DUPLICATED
        else:
            outcome = Delivery.DELIVERED
        self.stats[outcome.value] += 1
        return outcome


# -- fault schedule ----------------------------------------------------------


def _normalize_intervals(
    intervals: Sequence[tuple[int, int]]
) -> tuple[tuple[int, int], ...]:
    out = []
    for start, end in intervals:
        start, end = int(start), int(end)
        if start < 0 or end <= start:
            raise ConfigurationError(
                f"crash interval [{start}, {end}) is malformed"
            )
        out.append((start, end))
    return tuple(sorted(out))


@dataclass(frozen=True)
class FaultSchedule:
    """A fully materialized plan of when what fails.

    Attributes
    ----------
    agent_crashes:
        Per-agent half-open ``[start, end)`` protocol-round intervals
        during which the agent's process is down: it computes no bids
        and receives no traffic, but its hosted replicas keep serving.
    central_crashes:
        Protocol rounds at whose start the acting central body crashes,
        triggering the §7 election plus checkpoint recovery.
    stragglers:
        ``(round, agent)`` pairs whose bid computation overruns the
        round deadline — the bid is sent but arrives too late to count.
    """

    agent_crashes: Mapping[int, tuple[tuple[int, int], ...]] = field(
        default_factory=dict
    )
    central_crashes: frozenset[int] = frozenset()
    stragglers: frozenset[tuple[int, int]] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "agent_crashes",
            {
                int(a): _normalize_intervals(ivals)
                for a, ivals in dict(self.agent_crashes).items()
            },
        )
        object.__setattr__(
            self, "central_crashes", frozenset(int(r) for r in self.central_crashes)
        )
        object.__setattr__(
            self,
            "stragglers",
            frozenset((int(r), int(a)) for r, a in self.stragglers),
        )

    @classmethod
    def null(cls) -> "FaultSchedule":
        """The empty schedule: nothing ever fails."""
        return cls()

    @property
    def is_null(self) -> bool:
        return (
            not self.agent_crashes
            and not self.central_crashes
            and not self.stragglers
        )

    def agent_down(self, agent: int, rnd: int) -> bool:
        """Is ``agent`` crashed during protocol round ``rnd``?"""
        for start, end in self.agent_crashes.get(agent, ()):
            if start <= rnd < end:
                return True
        return False

    def is_straggler(self, rnd: int, agent: int) -> bool:
        return (rnd, agent) in self.stragglers

    def central_crashes_at(self, rnd: int) -> bool:
        return rnd in self.central_crashes

    @classmethod
    def random(
        cls,
        *,
        n_agents: int,
        horizon: int,
        seed: SeedLike = 0,
        crash_rate: float = 0.0,
        mean_outage: float = 3.0,
        straggler_rate: float = 0.0,
        central_crash_rate: float = 0.0,
        central_crashes: Sequence[int] = (),
    ) -> "FaultSchedule":
        """Sample a stochastic schedule, reproducible from ``seed``.

        Each agent independently starts an outage with probability
        ``crash_rate`` per up-round; outage lengths are geometric with
        mean ``mean_outage`` rounds.  Stragglers are Bernoulli per
        (round, agent).  Central crashes combine the explicit
        ``central_crashes`` rounds with a Bernoulli ``central_crash_rate``
        per round.  Sampling order is fixed (agents then rounds), so the
        schedule is a pure function of the arguments.
        """
        if n_agents < 1 or horizon < 0:
            raise ConfigurationError("need n_agents >= 1 and horizon >= 0")
        for name, p in (
            ("crash_rate", crash_rate),
            ("straggler_rate", straggler_rate),
            ("central_crash_rate", central_crash_rate),
        ):
            if not (0.0 <= p < 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1); got {p}")
        if mean_outage < 1.0:
            raise ConfigurationError("mean_outage must be >= 1 round")
        rng = as_generator(seed)
        crashes: dict[int, list[tuple[int, int]]] = {}
        for agent in range(n_agents):
            rnd = 0
            while rnd < horizon:
                if rng.random() < crash_rate:
                    length = 1 + int(rng.geometric(1.0 / mean_outage))
                    crashes.setdefault(agent, []).append((rnd, rnd + length))
                    rnd += length
                rnd += 1
        stragglers = {
            (rnd, agent)
            for agent in range(n_agents)
            for rnd in range(horizon)
            if rng.random() < straggler_rate
        }
        central = set(int(r) for r in central_crashes)
        central.update(
            rnd for rnd in range(horizon) if rng.random() < central_crash_rate
        )
        return cls(
            agent_crashes={a: tuple(iv) for a, iv in crashes.items()},
            central_crashes=frozenset(central),
            stragglers=frozenset(stragglers),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (the artifact the chaos CLI writes)."""
        return {
            "agent_crashes": {
                str(a): [list(iv) for iv in ivals]
                for a, ivals in sorted(self.agent_crashes.items())
            },
            "central_crashes": sorted(self.central_crashes),
            "stragglers": sorted([r, a] for r, a in self.stragglers),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultSchedule":
        return cls(
            agent_crashes={
                int(a): tuple(tuple(iv) for iv in ivals)
                for a, ivals in dict(d.get("agent_crashes", {})).items()
            },
            central_crashes=frozenset(d.get("central_crashes", ())),
            stragglers=frozenset(
                (int(r), int(a)) for r, a in d.get("stragglers", ())
            ),
        )


# -- quorum / deadline policy ------------------------------------------------


@dataclass(frozen=True)
class QuorumPolicy:
    """Bid-deadline semantics of a round under faults.

    Attributes
    ----------
    quorum:
        Minimum fraction of the round's *expected* bids (one per live,
        bidding agent) that must arrive before the deadline for the
        central body to arbitrate.  Below quorum the round stalls and is
        retried — nobody wins on a nearly-blind view.
    max_retries:
        Retransmissions (with backoff) each agent attempts within the
        round deadline after a drop or delay; ``0`` means a single send.
    max_stalled_rounds:
        Consecutive stalled rounds (quorum misses / total blackouts /
        full-crash rounds) tolerated before the run raises
        :class:`~repro.errors.ConvergenceError`.
    """

    quorum: float = 0.5
    max_retries: int = 2
    max_stalled_rounds: int = 200

    def __post_init__(self) -> None:
        if not (0.0 < self.quorum <= 1.0):
            raise ConfigurationError(
                f"quorum must be in (0, 1]; got {self.quorum}"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.max_stalled_rounds < 1:
            raise ConfigurationError("max_stalled_rounds must be >= 1")

    def required(self, expected: int) -> int:
        """Bids needed for quorum out of ``expected`` (at least 1)."""
        if expected <= 0:
            return 0
        return max(1, math.ceil(expected * self.quorum - 1e-9))


# -- checkpointing -----------------------------------------------------------


@dataclass(frozen=True)
class Checkpoint:
    """The central body's durable state at one commit boundary.

    ``round`` is the protocol round of the snapshot; ``allocations`` the
    ordered ``(server, object)`` commit list — the replica map modulo
    primaries, which are static public knowledge.
    """

    round: int = -1
    allocations: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "allocations",
            tuple((int(s), int(o)) for s, o in self.allocations),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "round": self.round,
            "allocations": [list(a) for a in self.allocations],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Checkpoint":
        return cls(
            round=int(d.get("round", -1)),
            allocations=tuple(
                (int(s), int(o)) for s, o in d.get("allocations", ())
            ),
        )


class CheckpointStore:
    """Periodic snapshots of the central body's allocation history.

    ``period`` counts *commits* between snapshots; ``0`` disables
    checkpointing entirely (recovery then replays the full history from
    the agents' state-sync reports).
    """

    def __init__(self, period: int = 8):
        if period < 0:
            raise ConfigurationError("checkpoint period must be >= 0")
        self.period = period
        self.allocations: list[tuple[int, int]] = []
        self.latest: Optional[Checkpoint] = None
        self.taken = 0

    def commit(self, server: int, obj: int, rnd: int) -> bool:
        """Record one allocation; returns True when it triggered a
        checkpoint snapshot."""
        self.allocations.append((int(server), int(obj)))
        if self.period and len(self.allocations) % self.period == 0:
            self.latest = Checkpoint(
                round=rnd, allocations=tuple(self.allocations)
            )
            self.taken += 1
            return True
        return False

    def restore(self) -> Checkpoint:
        """The newest snapshot (empty when none was ever taken)."""
        return self.latest if self.latest is not None else Checkpoint()

    @property
    def lost_since_checkpoint(self) -> int:
        """Commits that a crash right now would have to re-learn."""
        return len(self.allocations) - len(self.restore().allocations)


# -- the user-facing bundle --------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """Everything the simulator needs to run one chaos scenario."""

    schedule: FaultSchedule = field(default_factory=FaultSchedule.null)
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    quorum: QuorumPolicy = field(default_factory=QuorumPolicy)
    #: Commits between central checkpoints (0 disables).
    checkpoint_period: int = 8
    #: Seeds the channel RNG; the schedule carries its own realization.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.checkpoint_period < 0:
            raise ConfigurationError("checkpoint_period must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        return {
            "schedule": self.schedule.to_dict(),
            "channel": self.channel.to_dict(),
            "quorum": {
                "quorum": self.quorum.quorum,
                "max_retries": self.quorum.max_retries,
                "max_stalled_rounds": self.quorum.max_stalled_rounds,
            },
            "checkpoint_period": self.checkpoint_period,
            "seed": self.seed,
        }


# -- runtime engine ----------------------------------------------------------

#: Safety cap on reliable-gossip retransmissions (NN traffic); far above
#: anything a valid ``drop < 1`` configuration needs.
_RELIABLE_CAP = 64


class FaultInjector:
    """Executes one :class:`FaultPlan` against a simulator run.

    Owns the lossy channel, the checkpoint store, and the campaign
    summary counters; every injected fault is emitted through the active
    event sink (:mod:`repro.obs.events`) so the audit and the exporters
    can see it.
    """

    def __init__(self, plan: FaultPlan, n_agents: int):
        self.plan = plan
        self.schedule = plan.schedule
        self.quorum = plan.quorum
        self.channel = FaultyChannel(plan.channel, seed=plan.seed)
        self.checkpoints = CheckpointStore(plan.checkpoint_period)
        self.summary: dict[str, int] = {
            "bid_attempts": 0,
            "bids_lost": 0,
            "drops": 0,
            "delays": 0,
            "duplicates": 0,
            "stragglers": 0,
            "timeouts": 0,
            "stalled_rounds": 0,
            "agent_crashes": 0,
            "agent_recoveries": 0,
            "central_crashes": 0,
            "checkpoints": 0,
            "recoveries": 0,
        }

    # -- event helpers -----------------------------------------------------

    @staticmethod
    def _emit(event: ev.Event) -> None:
        sink = ev.current()
        if sink.enabled:
            sink.emit(event)

    def _fault(self, *, rnd: int, kind: str, agent: int, target: str = "",
               detail: str = "") -> None:
        self._emit(
            ev.FaultEvent(
                t=ev.now(), round=rnd, kind=kind, agent=agent,
                target=target, detail=detail,
            )
        )

    # -- transmission ------------------------------------------------------

    def send_bid(
        self,
        *,
        rnd: int,
        sender: int,
        receiver: int,
        obj: int,
        value: float,
        log: MessageLog,
    ) -> list[BidMessage]:
        """Transmit one bid under the deadline/retry policy.

        Returns the copies that arrived at the central body before the
        deadline: ``[]`` (lost for the round), one message, or two (a
        network duplicate — the central's dedup path).  Every attempt is
        recorded in ``log`` and every fault in the event stream.
        """
        if self.schedule.is_straggler(rnd, sender):
            log.record(
                BidMessage(sender=sender, receiver=receiver, obj=obj,
                           value=value, seq=0)
            )
            self.summary["bid_attempts"] += 1
            self.summary["stragglers"] += 1
            self.summary["bids_lost"] += 1
            self._fault(rnd=rnd, kind="straggler", agent=sender, target="bid")
            return []
        for attempt in range(self.quorum.max_retries + 1):
            msg = BidMessage(sender=sender, receiver=receiver, obj=obj,
                             value=value, seq=attempt)
            log.record(msg)
            self.summary["bid_attempts"] += 1
            outcome = self.channel.transmit()
            if outcome is Delivery.DELIVERED:
                return [msg]
            if outcome is Delivery.DUPLICATED:
                log.record(msg)  # the wire carried it twice
                self.summary["duplicates"] += 1
                self._fault(rnd=rnd, kind="duplicate", agent=sender,
                            target="bid", detail=f"attempt {attempt}")
                return [msg, msg]
            kind = "drop" if outcome is Delivery.DROPPED else "delay"
            self.summary["drops" if kind == "drop" else "delays"] += 1
            self._fault(rnd=rnd, kind=kind, agent=sender, target="bid",
                        detail=f"attempt {attempt}")
        self.summary["bids_lost"] += 1
        return []

    def send_reliable(
        self,
        make_msg: Callable[[], Message],
        *,
        rnd: int,
        agent: int,
        target: str,
        log: MessageLog,
    ) -> int:
        """Gossip one NN-update/resync message until it gets through.

        Returns the number of transmissions it took.  Reliability is the
        point: views never diverge, faults only cost traffic.
        """
        attempts = 0
        while True:
            msg = make_msg()
            log.record(msg)
            attempts += 1
            outcome = self.channel.transmit()
            if outcome is Delivery.DELIVERED:
                return attempts
            if outcome is Delivery.DUPLICATED:
                log.record(msg)
                self.summary["duplicates"] += 1
                self._fault(rnd=rnd, kind="duplicate", agent=agent,
                            target=target)
                return attempts + 1
            kind = "drop" if outcome is Delivery.DROPPED else "delay"
            self.summary["drops" if kind == "drop" else "delays"] += 1
            self._fault(rnd=rnd, kind=kind, agent=agent, target=target)
            if attempts > _RELIABLE_CAP:  # pragma: no cover - safety net
                return attempts

    def summary_dict(self) -> dict[str, Any]:
        """JSON-safe campaign summary (plan + realized fault counts)."""
        return {
            "plan": self.plan.to_dict(),
            "injected": dict(self.summary),
            "channel": dict(self.channel.stats),
            "checkpoints_taken": self.checkpoints.taken,
        }
