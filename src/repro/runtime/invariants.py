"""Online safety-invariant monitors over the live event stream.

The offline audits (:mod:`repro.obs.audit`) re-verify a run *after* it
finishes; this module closes the loop *during* it.
:class:`InvariantMonitor` is an :class:`~repro.obs.events.EventSink`
wrapper: it forwards every event (and every columnar block, unexpanded)
to the inner sink while streaming the expanded sequence through a set
of incremental safety checks.  A failed check emits a typed
:class:`~repro.obs.events.InvariantEvent` into the inner sink — so the
violation is part of the very log being audited — and, under
``strict=True``, raises
:class:`~repro.errors.InvariantViolationError` on the spot.

The invariant catalog (see docs/robustness.md, "Composed failure
planes"):

``capacity``
    No commit exceeds the winner's residual capacity, and each server's
    residual chain is consistent across its commits — declared
    reconcile-time revocations credit capacity back.
``double_allocation``
    No (server, object) pair is committed while already live anywhere
    in the system; a pair only frees up through a declared revocation.
``payment_bound``
    A round's payment never exceeds its winning bid (second price
    <= first price, Axiom 5).
``availability_floor``
    The served fraction of admitted requests over a sliding window
    never drops below the configured floor.
``undeclared_revocation``
    A :class:`~repro.obs.events.ReconcileEvent` only revokes pairs that
    were actually committed.

All checks are scoped per mechanism run: a
:class:`~repro.obs.events.RunStart` resets the placement model, so the
nested re-auction runs the serving loop spawns are verified
independently, exactly like the offline audit does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigurationError, InvariantViolationError
from repro.obs import events as ev

__all__ = ["InvariantConfig", "InvariantMonitor"]

#: Float slack for the payment <= bid comparison (both sides are exact
#: in the reproduction, so anything beyond noise is a real violation).
_PAYMENT_TOL = 1e-9


@dataclass(frozen=True)
class InvariantConfig:
    """Knobs of the online monitor.

    ``availability_floor`` is checked over the trailing
    ``availability_window`` admitted requests; the window must fill
    before the floor is enforced (a cold start is not an outage).
    ``0.0`` disables the availability check entirely.
    """

    availability_floor: float = 0.0
    availability_window: int = 200
    strict: bool = False

    def __post_init__(self) -> None:
        if not (0.0 <= self.availability_floor <= 1.0):
            raise ConfigurationError(
                f"availability_floor must be in [0, 1], got "
                f"{self.availability_floor}"
            )
        if self.availability_window < 1:
            raise ConfigurationError("availability_window must be >= 1")


@dataclass
class _RunModel:
    """Per-run placement model the mechanism checks run against."""

    #: Live (server, obj) -> committed size, for residual refunds.
    live: dict[tuple[int, int], int] = field(default_factory=dict)
    #: Reconstructed residual chain per server (from WinnerEvents).
    residuals: dict[int, int] = field(default_factory=dict)
    #: The open round's winner, keyed by region (-1 = flat).
    pending: dict[int, ev.WinnerEvent] = field(default_factory=dict)


class InvariantMonitor(ev.EventSink):
    """Event-sink wrapper running the online safety checks.

    Wraps an inner sink (usually a
    :class:`~repro.obs.events.ColumnarSink`): every emission is
    forwarded unchanged, then inspected.  Violations are emitted as
    :class:`~repro.obs.events.InvariantEvent` records *after* the
    triggering event, so the log stays a faithful transcript with the
    verdicts inline.  The wrapper is transparent to exporters — it
    proxies ``iter_events`` / ``events`` / ``__len__`` / ``nbytes`` to
    the inner sink.
    """

    enabled = True

    def __init__(
        self,
        inner: Optional[ev.EventSink] = None,
        *,
        config: Optional[InvariantConfig] = None,
    ) -> None:
        self.inner = inner if inner is not None else ev.ColumnarSink()
        self.config = config or InvariantConfig()
        self.violations: list[ev.InvariantEvent] = []
        self._run = _RunModel()
        # Sliding availability window: 1 = served, 0 = failed.
        self._window: list[int] = []
        self._window_served = 0
        self._below_floor = False

    # -- sink protocol -------------------------------------------------------

    def emit(self, event: ev.Event) -> None:
        self.inner.emit(event)
        self._check(event)

    def emit_block(self, block: ev.RoundBlock) -> None:
        # Keep the columnar form for the inner sink; check the expanded
        # stream (violations, if any, land after the whole block —
        # acceptable skew for a bulk emission path).
        self.inner.emit_block(block)
        for event in ev.iter_block_events(block):
            self._check(event)

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def nbytes(self) -> int:
        return getattr(self.inner, "nbytes", 0)

    def iter_events(self):
        if hasattr(self.inner, "iter_events"):
            return self.inner.iter_events()
        return iter(self.inner.events)

    @property
    def events(self) -> list[ev.Event]:
        return list(self.iter_events())

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary_dict(self) -> dict[str, Any]:
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.invariant] = counts.get(v.invariant, 0) + 1
        return {
            "ok": self.ok,
            "violations": len(self.violations),
            "by_invariant": dict(sorted(counts.items())),
            "config": {
                "availability_floor": self.config.availability_floor,
                "availability_window": self.config.availability_window,
                "strict": self.config.strict,
            },
        }

    # -- violation plumbing --------------------------------------------------

    def _flag(
        self,
        invariant: str,
        detail: str,
        *,
        round: int = -1,
        tick: int = -1,
        agent: int = -1,
        obj: int = -1,
        value: float = 0.0,
        bound: float = 0.0,
    ) -> None:
        violation = ev.InvariantEvent(
            t=ev.now(), invariant=invariant, round=round, tick=tick,
            agent=agent, obj=obj, value=value, bound=bound, detail=detail,
        )
        self.violations.append(violation)
        self.inner.emit(violation)
        if self.config.strict:
            raise InvariantViolationError(f"{invariant}: {detail}")

    # -- the checks ----------------------------------------------------------

    def _check(self, e: ev.Event) -> None:
        if isinstance(e, ev.RunStart):
            self._run = _RunModel()
        elif isinstance(e, ev.WinnerEvent):
            self._on_winner(e)
        elif isinstance(e, ev.PaymentEvent):
            self._on_payment(e)
        elif isinstance(e, ev.ReconcileEvent):
            self._on_reconcile(e)
        elif isinstance(e, ev.RequestEvent):
            self._on_request(e)

    def _on_winner(self, e: ev.WinnerEvent) -> None:
        run = self._run
        if e.obj_size > e.residual_before:
            self._flag(
                "capacity",
                f"object {e.obj} (size {e.obj_size}) exceeds agent "
                f"{e.agent}'s residual {e.residual_before}",
                round=e.round, agent=e.agent, obj=e.obj,
                value=float(e.obj_size), bound=float(e.residual_before),
            )
        tracked = run.residuals.get(e.agent)
        if tracked is not None and e.residual_before != tracked:
            self._flag(
                "capacity",
                f"agent {e.agent} declares residual {e.residual_before} "
                f"but the commit chain implies {tracked}",
                round=e.round, agent=e.agent, obj=e.obj,
                value=float(e.residual_before), bound=float(tracked),
            )
        run.residuals[e.agent] = e.residual_before - e.obj_size
        pair = (e.agent, e.obj)
        if pair in run.live:
            self._flag(
                "double_allocation",
                f"(server {e.agent}, object {e.obj}) committed while "
                f"already live and never revoked",
                round=e.round, agent=e.agent, obj=e.obj,
            )
        else:
            run.live[pair] = e.obj_size
        run.pending[e.region] = e

    def _on_payment(self, e: ev.PaymentEvent) -> None:
        winner = self._run.pending.get(e.region)
        if winner is None or winner.agent != e.agent:
            return  # a payment outside a tracked round is the audit's job
        if e.amount > winner.value + _PAYMENT_TOL or not math.isfinite(
            e.amount
        ):
            self._flag(
                "payment_bound",
                f"payment {e.amount} exceeds agent {e.agent}'s winning "
                f"bid {winner.value}",
                round=e.round, agent=e.agent, obj=winner.obj,
                value=float(e.amount), bound=float(winner.value),
            )
        del self._run.pending[e.region]

    def _on_reconcile(self, e: ev.ReconcileEvent) -> None:
        run = self._run
        for server, obj in e.revoked:
            size = run.live.pop((server, obj), None)
            if size is None:
                self._flag(
                    "undeclared_revocation",
                    f"reconcile revokes (server {server}, object {obj}) "
                    f"which was never committed",
                    round=e.round, agent=server, obj=obj,
                )
                continue
            if server in run.residuals:
                run.residuals[server] += size

    def _on_request(self, e: ev.RequestEvent) -> None:
        cfg = self.config
        if cfg.availability_floor <= 0.0:
            return
        ok = 1 if e.outcome == "ok" else 0
        self._window.append(ok)
        self._window_served += ok
        if len(self._window) > cfg.availability_window:
            self._window_served -= self._window.pop(0)
        if len(self._window) < cfg.availability_window:
            return
        frac = self._window_served / len(self._window)
        if frac < cfg.availability_floor:
            if not self._below_floor:
                self._below_floor = True
                self._flag(
                    "availability_floor",
                    f"windowed availability {frac:.4f} fell below the "
                    f"floor {cfg.availability_floor:.4f}",
                    tick=e.tick, value=float(frac),
                    bound=float(cfg.availability_floor),
                )
        else:
            self._below_floor = False
