"""The mechanism's wire protocol with byte accounting.

Message sizes follow a compact binary encoding (8-byte float values,
4-byte integer ids, 1-byte tags) so the simulator can report protocol
overhead in bytes — the quantity a deployment engineer would budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Message:
    """Base message: sender/receiver use -1 for the central body."""

    sender: int
    receiver: int

    #: wire size in bytes, excluding transport framing
    WIRE_BYTES = 1 + 4 + 4  # tag + sender + receiver

    def wire_bytes(self) -> int:
        return self.WIRE_BYTES


@dataclass(frozen=True)
class BidMessage(Message):
    """Agent → central: dominant valuation for a desired object
    (Figure 2 line 08).

    ``seq`` is the per-round transmission sequence number: 0 for the
    first send, incremented on every deadline-driven retransmission.
    The central body uses it (together with the bid content) to discard
    network-duplicated or retransmitted copies idempotently instead of
    treating them as protocol violations.
    """

    obj: int = -1
    value: float = 0.0
    seq: int = 0

    def wire_bytes(self) -> int:
        return Message.WIRE_BYTES + 4 + 8 + 4


@dataclass(frozen=True)
class AllocateMessage(Message):
    """Central → all agents: the OMAX broadcast (line 13) carrying the
    winning (server, object) pair so NN tables can be updated."""

    winner: int = -1
    obj: int = -1

    def wire_bytes(self) -> int:
        return Message.WIRE_BYTES + 4 + 4


@dataclass(frozen=True)
class PaymentMessage(Message):
    """Central → winner: the second-best payment (line 14)."""

    amount: float = 0.0

    def wire_bytes(self) -> int:
        return Message.WIRE_BYTES + 8


@dataclass(frozen=True)
class NNUpdateMessage(Message):
    """Agent-internal NN table refresh acknowledgement (lines 19–21).

    Modeled as a message so the accounting covers the full broadcast
    fan-out of a round.
    """

    obj: int = -1

    def wire_bytes(self) -> int:
        return Message.WIRE_BYTES + 4


@dataclass(frozen=True)
class NNResyncMessage(Message):
    """Periodic NN-table resync under the lazy update protocol.

    Where the eager protocol acknowledges one object per round
    (:class:`NNUpdateMessage`), the lazy protocol batches: every
    ``nn_update_period`` rounds each agent refreshes *all* objects
    allocated since the last broadcast.  ``objs`` is that stale set, and
    the wire size scales with it — the honest cost of the batched
    refresh (4 bytes per object id plus a 4-byte count).
    """

    objs: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "objs", tuple(self.objs))

    def wire_bytes(self) -> int:
        return Message.WIRE_BYTES + 4 + 4 * len(self.objs)


@dataclass(frozen=True)
class StateSyncMessage(Message):
    """Agent → recovering central: the agent's current replica holdings.

    Sent during checkpoint recovery so the restored central body can
    rebuild the replica map for the rounds lost since its last
    checkpoint.  Carries one 4-byte object id per held replica plus a
    4-byte count.
    """

    objs: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "objs", tuple(self.objs))

    def wire_bytes(self) -> int:
        return Message.WIRE_BYTES + 4 + 4 * len(self.objs)


@dataclass(frozen=True)
class ElectionMessage(Message):
    """Agent → agent: leader-election vote after a central-body failure
    (the §7 "self-repairing" behaviour).  Carries the proposed id."""

    candidate: int = -1

    def wire_bytes(self) -> int:
        return Message.WIRE_BYTES + 4


@dataclass
class MessageLog:
    """Counts and sizes per message type; optionally keeps the stream."""

    keep_messages: bool = False
    counts: dict[str, int] = field(default_factory=dict)
    bytes_total: int = 0
    messages: list[Message] = field(default_factory=list)

    def record(self, message: Message) -> None:
        name = type(message).__name__
        self.counts[name] = self.counts.get(name, 0) + 1
        self.bytes_total += message.wire_bytes()
        if self.keep_messages:
            self.messages.append(message)

    def total_messages(self) -> int:
        return sum(self.counts.values())
