"""Runtime accounting for the semi-distributed simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.messages import MessageLog


@dataclass
class RuntimeMetrics:
    """Protocol-level costs of one mechanism execution.

    Attributes
    ----------
    rounds:
        Mechanism rounds played (each allocates at most one replica).
    log:
        Per-message-type counts and byte totals.
    parallel_round_work:
        Per-round maximum single-agent bid-computation cost (object
        evaluations) — the critical-path work when agents truly run in
        parallel, the paper's PARFOR.
    serial_round_work:
        Per-round *total* bid-computation cost — what a centralized
        implementation would pay.
    """

    rounds: int = 0
    log: MessageLog = field(default_factory=MessageLog)
    parallel_round_work: list[int] = field(default_factory=list)
    serial_round_work: list[int] = field(default_factory=list)

    def record_round_work(self, per_agent_evaluations: list[int]) -> None:
        if per_agent_evaluations:
            self.parallel_round_work.append(max(per_agent_evaluations))
            self.serial_round_work.append(sum(per_agent_evaluations))
        else:
            self.parallel_round_work.append(0)
            self.serial_round_work.append(0)

    @property
    def critical_path_work(self) -> int:
        """Total work along the parallel critical path."""
        return sum(self.parallel_round_work)

    @property
    def total_work(self) -> int:
        return sum(self.serial_round_work)

    @property
    def parallel_speedup(self) -> float:
        """Ideal speedup of the PARFOR over a serial evaluation."""
        cp = self.critical_path_work
        return self.total_work / cp if cp else 1.0

    def summary(self) -> dict:
        """JSON-safe summary: the aggregate costs plus the per-round work
        series (the trajectories, not just their sums)."""
        return {
            "rounds": self.rounds,
            "messages": self.log.total_messages(),
            "bytes": self.log.bytes_total,
            "total_work": self.total_work,
            "critical_path_work": self.critical_path_work,
            "parallel_speedup": self.parallel_speedup,
            "parallel_round_work": list(self.parallel_round_work),
            "serial_round_work": list(self.serial_round_work),
        }
