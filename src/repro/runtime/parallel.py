"""Concurrent evaluation of the PARFOR loops of Figure 2.

The mechanism's per-round agent work ("compute the valuation
corresponding to the desired object" for every object in L_i) is
embarrassingly parallel across agents.  :class:`ParallelBidEvaluator`
runs it on a thread pool: the bid computation is numpy-bound, so the GIL
is released inside the array kernels and threads provide genuine overlap
without the serialization cost of process pools.

This is the fidelity knob, not the speed knob — the vectorized
:class:`~repro.core.agt_ram.AGTRam` engine evaluates all agents in one
array operation and is faster than any per-agent executor; the simulator
exists to model the distributed protocol faithfully (per-agent work,
message counts, critical-path depth).
"""

from __future__ import annotations

import contextvars
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from repro.core.agents import Bid, ReplicaAgent
from repro.drp.benefit import BenefitEngine
from repro.obs import tracer as obs


class ParallelBidEvaluator:
    """Evaluates all agents' bids for one round, optionally in parallel.

    Parameters
    ----------
    max_workers:
        Thread count; ``None`` disables the pool (serial evaluation),
        mirroring a single-machine deployment.
    """

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool = (
            ThreadPoolExecutor(max_workers=max_workers) if max_workers else None
        )
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` (or the context manager exit) has run."""
        return self._closed

    def evaluate(
        self, agents: Sequence[ReplicaAgent], engine: BenefitEngine
    ) -> list[Bid | None]:
        """One PARFOR sweep: each agent's dominant bid (None = abstains)."""
        if self._closed:
            raise RuntimeError("ParallelBidEvaluator is closed")
        tracer = obs.current()
        if tracer.enabled:
            tracer.count("parallel/sweeps")
            tracer.count("parallel/bids_evaluated", len(agents))
        if self._pool is None:
            return [agent.make_bid(engine) for agent in agents]
        # Propagate the caller's context (active tracer/event sink) into
        # the worker threads: the obs registries are contextvars-based,
        # so without this the workers would see the disabled defaults.
        # Each task needs its own Context copy — a Context cannot be
        # entered concurrently.
        tasks = [
            (contextvars.copy_context(), agent) for agent in agents
        ]
        return list(
            self._pool.map(lambda ca: ca[0].run(ca[1].make_bid, engine), tasks)
        )

    def close(self) -> None:
        """Shut the pool down; idempotent.  Evaluation afterwards raises."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True

    def __enter__(self) -> "ParallelBidEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
