"""Discrete request replay — an independent check of the OTC model.

The closed-form OTC (Eqs. 1–4) aggregates request counts; this module
re-derives the cost by walking a trace *one request at a time* against
a replication scheme, exactly as a deployed system would serve it:

* a read is shipped from the client's server's nearest replicator,
* a write travels to the primary, which broadcasts the new version to
  every other replicator.

Because the two computations share nothing but the instance data, their
agreement (a tested property) validates the whole pipeline: trace →
aggregation → instance → cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.workload.trace import Trace


@dataclass(frozen=True)
class RealizedCost:
    """Event-by-event accounting of a replayed trace."""

    read_cost: float
    write_cost: float
    n_reads: int
    n_writes: int
    n_transfers: int  # individual object shipments, broadcasts included

    @property
    def total(self) -> float:
        return self.read_cost + self.write_cost


def replay_requests(
    instance: DRPInstance,
    state: ReplicationState,
    servers: np.ndarray,
    objects: np.ndarray,
    is_read: np.ndarray,
) -> RealizedCost:
    """Replay per-request arrays (server, object, kind) against ``state``.

    Unlike the closed form, this walks requests individually; use
    :func:`replay_trace` for client-level traces.
    """
    servers = np.asarray(servers, dtype=np.int64)
    objects = np.asarray(objects, dtype=np.int64)
    is_read = np.asarray(is_read, dtype=bool)
    if not (len(servers) == len(objects) == len(is_read)):
        raise ConfigurationError("replay arrays must have equal length")
    if len(servers) and (
        servers.min() < 0
        or servers.max() >= instance.n_servers
        or objects.min() < 0
        or objects.max() >= instance.n_objects
    ):
        raise ConfigurationError("replay request out of range")

    c = instance.cost
    sizes = instance.sizes
    primaries = instance.primaries
    read_cost = 0.0
    write_cost = 0.0
    transfers = 0

    for i, k, rd in zip(servers, objects, is_read):
        o_k = float(sizes[k])
        if rd:
            nn = int(state.nn_server[i, k])
            read_cost += o_k * float(c[i, nn])
            transfers += 1
        else:
            p = int(primaries[k])
            write_cost += o_k * float(c[i, p])  # ship update to primary
            transfers += 1
            for j in np.flatnonzero(state.x[:, k]):
                if j == i or j == p:
                    # The writer's own copy needs no return leg; the
                    # primary already holds the version it broadcasts.
                    continue
                write_cost += o_k * float(c[p, j])
                transfers += 1
    return RealizedCost(
        read_cost=read_cost,
        write_cost=write_cost,
        n_reads=int(is_read.sum()),
        n_writes=int(len(is_read) - is_read.sum()),
        n_transfers=transfers,
    )


def replay_trace(
    instance: DRPInstance,
    state: ReplicationState,
    trace: Trace,
    client_to_server: np.ndarray,
) -> RealizedCost:
    """Replay a client-level trace through the 1-M mapping."""
    client_to_server = np.asarray(client_to_server, dtype=np.int64)
    if client_to_server.shape != (trace.n_clients,):
        raise ConfigurationError(
            f"mapping has shape {client_to_server.shape}, "
            f"expected ({trace.n_clients},)"
        )
    servers = np.fromiter(
        (client_to_server[r.client] for r in trace), dtype=np.int64, count=len(trace)
    )
    objects = np.fromiter((r.obj for r in trace), dtype=np.int64, count=len(trace))
    is_read = np.fromiter(
        (r.kind == "read" for r in trace), dtype=bool, count=len(trace)
    )
    return replay_requests(instance, state, servers, objects, is_read)
