"""Composed failure-plane scenarios: declare, run, gate, shrink.

A :class:`Scenario` is one declarative, JSON-round-trippable object
composing every failure plane the runtime knows about — a fault plane
(crashes / stragglers / central outages), an adversary plane (Byzantine
bids plus the quarantine defence), a partition plane (regional
split-brain with regional central crashes) — with a serving workload
regime (``worldcup`` / ``drift`` / ``flashcrowd``).  :func:`run_scenario`
executes it end to end over the sharded serving stack: the regional
mechanism (:class:`~repro.runtime.shard.ShardedAGTRam`) auctions a
placement for the workload's measured demand, then the serving loop
(:func:`~repro.serving.loop.serve`) streams the workload against it.

**RNG discipline.**  Every plane draws its realization from an
independent :func:`~repro.utils.rng.substream` of the scenario seed
(``scenario/faults``, ``scenario/adversary``, ``scenario/partition``,
``scenario/workload``, …), so planes compose without perturbing each
other: adding a plane never changes another plane's realization, and a
plane that materializes to nothing (zero rates, empty draw) is passed
to the runtime as ``None`` — making the run byte-identical to the same
scenario with the plane absent.

**Online verification.**  The whole run is captured through an
:class:`~repro.runtime.invariants.InvariantMonitor` under the logical
event clock, so safety violations are caught *while* they happen (and
abort the run under ``strict``).  Afterwards the log is split at the
mechanism/serving boundary and replayed through the offline audits
(:func:`~repro.obs.audit.audit_sharded_events` for the regional
mechanism, :func:`~repro.obs.audit.audit_serving_events` plus the flat
mechanism audit for the serving tail and its nested re-auctions), the
recovery accountant (:func:`~repro.obs.recovery.recovery_accounting`)
and the detection-recall join.  Everything runs on the logical clock,
so a scenario's report is byte-for-byte reproducible from its JSON.

**Shrinking.**  When a scenario fails its gates,
:func:`shrink_scenario` greedily minimizes it — dropping whole planes,
halving the workload and the horizon — while re-running the predicate,
returning the smallest still-failing scenario for the repro artifact.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.obs import events as ev
from repro.obs.recovery import RecoveryReport, recovery_accounting
from repro.runtime.adversary import (
    BEHAVIORS,
    AdversaryPlan,
    QuarantinePolicy,
)
from repro.runtime.faults import FaultPlan, FaultSchedule
from repro.runtime.invariants import InvariantConfig, InvariantMonitor
from repro.runtime.shard import (
    PartitionSchedule,
    PartitionWindow,
    ShardedAGTRam,
)
from repro.serving import SERVE_WORKLOADS, ServeConfig, make_traffic, serve, with_demand
from repro.utils.rng import substream

__all__ = [
    "FaultPlane",
    "AdversaryPlane",
    "PartitionPlane",
    "Scenario",
    "ScenarioOutcome",
    "CATALOG",
    "run_scenario",
    "shrink_scenario",
]


def _plane_seed(seed: int, name: str) -> int:
    """The independent integer seed plane ``name`` materializes from.

    One draw from a spawn-keyed substream of the scenario seed: planes
    never share randomness, and a plane's realization is a pure
    function of ``(seed, name)`` — unchanged by which other planes the
    scenario carries.
    """
    return int(substream(seed, f"scenario/{name}").integers(2**31 - 1))


# -- the planes --------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlane:
    """Crash/straggler knobs, for the mechanism and the serving phase.

    The mechanism schedule (agent crashes, stragglers, whole-central
    crashes) is sampled over the scenario ``horizon`` protocol rounds;
    the serving schedule (``serving_*`` knobs) over the serving-round
    horizon.  Both draw from their own substreams.  All rates zero
    materializes to nothing — byte-identical to no fault plane at all.
    """

    crash_rate: float = 0.0
    mean_outage: float = 3.0
    straggler_rate: float = 0.0
    central_crash_rate: float = 0.0
    checkpoint_period: int = 8
    serving_crash_rate: float = 0.0
    serving_straggler_rate: float = 0.0
    serving_mean_outage: float = 3.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "straggler_rate", "central_crash_rate",
                     "serving_crash_rate", "serving_straggler_rate"):
            p = getattr(self, name)
            if not (0.0 <= p < 1.0):
                raise ConfigurationError(
                    f"fault plane {name} must be in [0, 1); got {p}"
                )

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultPlane":
        return cls(**{f.name: d[f.name] for f in dataclasses.fields(cls)
                      if f.name in d})


@dataclass(frozen=True)
class AdversaryPlane:
    """Byzantine-bid knobs plus the quarantine defence policy."""

    fraction: float = 0.25
    behaviors: tuple[str, ...] = BEHAVIORS
    factor: float = 2.0
    activity: float = 1.0
    #: Optional attack window ``[start, end)`` in protocol rounds;
    #: outside it the scripted agents bid honestly and the runtime may
    #: treat the adversary as dormant.
    window: Optional[tuple[int, int]] = None
    strikes: int = 3
    probation: int = 20
    max_quarantines: int = 3

    def __post_init__(self) -> None:
        if not (0.0 <= self.fraction <= 1.0):
            raise ConfigurationError(
                f"adversary fraction must be in [0, 1], got {self.fraction}"
            )
        object.__setattr__(self, "behaviors", tuple(self.behaviors))
        if self.window is not None:
            object.__setattr__(
                self, "window", (int(self.window[0]), int(self.window[1]))
            )

    def to_dict(self) -> dict[str, Any]:
        d = dataclasses.asdict(self)
        d["behaviors"] = list(self.behaviors)
        d["window"] = None if self.window is None else list(self.window)
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "AdversaryPlane":
        kwargs = {f.name: d[f.name] for f in dataclasses.fields(cls)
                  if f.name in d}
        if kwargs.get("window") is not None:
            kwargs["window"] = tuple(kwargs["window"])
        if "behaviors" in kwargs:
            kwargs["behaviors"] = tuple(kwargs["behaviors"])
        return cls(**kwargs)


@dataclass(frozen=True)
class PartitionPlane:
    """Regional split-brain knobs, random or scripted.

    With explicit ``windows`` / ``central_crashes`` the schedule is
    exactly what is written (curated scenarios stay deterministic under
    any seed); otherwise a random schedule is sampled from the knobs
    over the scenario horizon.  ``windows`` entries are
    ``{"start", "end", "islands"}`` dicts; ``central_crashes`` are
    ``(round, region)`` pairs.
    """

    fraction: float = 0.3
    mean_width: float = 6.0
    islands: int = 2
    crash_rate: float = 0.0
    windows: tuple[Mapping[str, Any], ...] = ()
    central_crashes: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "windows", tuple(dict(w) for w in self.windows)
        )
        object.__setattr__(
            self,
            "central_crashes",
            tuple((int(r), int(g)) for r, g in self.central_crashes),
        )

    @property
    def explicit(self) -> bool:
        return bool(self.windows) or bool(self.central_crashes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "fraction": self.fraction,
            "mean_width": self.mean_width,
            "islands": self.islands,
            "crash_rate": self.crash_rate,
            "windows": [dict(w) for w in self.windows],
            "central_crashes": [list(c) for c in self.central_crashes],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PartitionPlane":
        return cls(
            fraction=float(d.get("fraction", 0.3)),
            mean_width=float(d.get("mean_width", 6.0)),
            islands=int(d.get("islands", 2)),
            crash_rate=float(d.get("crash_rate", 0.0)),
            windows=tuple(d.get("windows", ())),
            central_crashes=tuple(
                (int(r), int(g)) for r, g in d.get("central_crashes", ())
            ),
        )


# -- the scenario ------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One composed resilience experiment, reproducible from its JSON.

    Instance shape (``servers`` … ``topology``), sharding (``regions``),
    the plane-materialization ``horizon`` (protocol rounds the random
    fault/partition schedules cover), the serving regime (``workload``,
    ``n_requests``) and the three optional failure planes.  The gate
    thresholds ride along so a catalog entry carries its own pass/fail
    contract; ``None`` disables that gate.
    """

    name: str = "scenario"
    seed: int = 0
    servers: int = 10
    objects: int = 30
    requests: int = 4000
    rw_ratio: float = 0.75
    capacity: float = 0.5
    topology: str = "random"
    regions: int = 4
    horizon: int = 32
    workload: str = "worldcup"
    n_requests: int = 4000
    faults: Optional[FaultPlane] = None
    adversary: Optional[AdversaryPlane] = None
    partition: Optional[PartitionPlane] = None
    #: Online availability floor over a sliding window (0 disables).
    availability_floor: float = 0.0
    availability_window: int = 200
    #: Gates (None disables): end-of-run availability, degraded-round
    #: budget, detection recall over injected manipulations.
    min_availability: Optional[float] = None
    max_degraded_fraction: Optional[float] = None
    min_recall: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workload not in SERVE_WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; pick from "
                f"{SERVE_WORKLOADS}"
            )
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if self.regions < 1:
            raise ConfigurationError("regions must be >= 1")
        if self.n_requests < 1:
            raise ConfigurationError("n_requests must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "servers": self.servers,
            "objects": self.objects,
            "requests": self.requests,
            "rw_ratio": self.rw_ratio,
            "capacity": self.capacity,
            "topology": self.topology,
            "regions": self.regions,
            "horizon": self.horizon,
            "workload": self.workload,
            "n_requests": self.n_requests,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "adversary": (
                None if self.adversary is None else self.adversary.to_dict()
            ),
            "partition": (
                None if self.partition is None else self.partition.to_dict()
            ),
            "availability_floor": self.availability_floor,
            "availability_window": self.availability_window,
            "min_availability": self.min_availability,
            "max_degraded_fraction": self.max_degraded_fraction,
            "min_recall": self.min_recall,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Scenario":
        kwargs = dict(d)
        for key, plane in (
            ("faults", FaultPlane),
            ("adversary", AdversaryPlane),
            ("partition", PartitionPlane),
        ):
            raw = kwargs.get(key)
            kwargs[key] = None if raw is None else plane.from_dict(raw)
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in kwargs.items() if k in names})

    @classmethod
    def random(cls, seed: int, *, name: Optional[str] = None) -> "Scenario":
        """One lottery draw: a random plane composition at smoke scale.

        Everything is derived from ``substream(seed,
        "scenario/lottery")``, so draw ``i`` of the campaign lottery is
        a pure function of its ticket seed.
        """
        rng = substream(seed, "scenario/lottery")
        faults = adversary = partition = None
        if rng.random() < 0.7:
            faults = FaultPlane(
                crash_rate=float(rng.uniform(0.01, 0.06)),
                mean_outage=float(rng.uniform(2.0, 5.0)),
                straggler_rate=float(rng.uniform(0.0, 0.08)),
                central_crash_rate=float(rng.uniform(0.0, 0.03)),
                serving_crash_rate=float(rng.uniform(0.0, 0.04)),
                serving_straggler_rate=float(rng.uniform(0.0, 0.05)),
            )
        if rng.random() < 0.6:
            adversary = AdversaryPlane(
                fraction=float(rng.uniform(0.1, 0.3)),
                factor=float(rng.uniform(1.5, 3.0)),
                activity=float(rng.uniform(0.5, 1.0)),
            )
        if rng.random() < 0.6:
            partition = PartitionPlane(
                fraction=float(rng.uniform(0.1, 0.4)),
                mean_width=float(rng.uniform(3.0, 8.0)),
                islands=2,
                crash_rate=float(rng.uniform(0.0, 0.02)),
            )
        return cls(
            name=name or f"lottery-{seed}",
            seed=int(rng.integers(2**31 - 1)),
            workload=str(rng.choice(SERVE_WORKLOADS)),
            n_requests=2000,
            faults=faults,
            adversary=adversary,
            partition=partition,
            min_availability=0.5,
            max_degraded_fraction=0.9,
        )


# -- materialization ---------------------------------------------------------


@dataclass
class MaterializedScenario:
    """A scenario's realized plans, ready for the runtime.

    A plane that realized to nothing is ``None`` here — the runtime
    never learns it was declared, which is exactly what keeps the null
    plane byte-identical to its absence.
    """

    instance: Any
    traffic: Any
    fault_plan: Optional[FaultPlan]
    serving_faults: Optional[FaultSchedule]
    adversary: Optional[AdversaryPlan]
    quarantine: Optional[QuarantinePolicy]
    partition: Optional[PartitionSchedule]
    shard_seed: int
    serve_seed: int
    serve_config: ServeConfig


def materialize(scenario: Scenario) -> MaterializedScenario:
    """Realize every plane from its own substream of the scenario seed."""
    cfg = ExperimentConfig(
        n_servers=scenario.servers,
        n_objects=scenario.objects,
        total_requests=scenario.requests,
        rw_ratio=scenario.rw_ratio,
        capacity_fraction=scenario.capacity,
        topology=scenario.topology,
        topology_params=(
            {"p": 0.4} if scenario.topology == "random" else {}
        ),
        seed=_plane_seed(scenario.seed, "instance"),
        name=scenario.name,
    )
    from repro.experiments.instances import paper_instance

    base = paper_instance(cfg)
    traffic = make_traffic(
        scenario.workload,
        base,
        scenario.n_requests,
        seed=_plane_seed(scenario.seed, "workload"),
    )
    instance = with_demand(base, traffic)

    serve_config = ServeConfig()
    serve_horizon = max(
        1, math.ceil(scenario.n_requests / serve_config.requests_per_round)
    )

    fault_plan = None
    serving_faults = None
    if scenario.faults is not None:
        fp = scenario.faults
        schedule = FaultSchedule.random(
            n_agents=scenario.servers,
            horizon=scenario.horizon,
            seed=_plane_seed(scenario.seed, "faults"),
            crash_rate=fp.crash_rate,
            mean_outage=fp.mean_outage,
            straggler_rate=fp.straggler_rate,
            central_crash_rate=fp.central_crash_rate,
        )
        if not schedule.is_null:
            fault_plan = FaultPlan(
                schedule=schedule,
                checkpoint_period=fp.checkpoint_period,
                seed=_plane_seed(scenario.seed, "faults/channel"),
            )
        serving_schedule = FaultSchedule.random(
            n_agents=scenario.servers,
            horizon=serve_horizon,
            seed=_plane_seed(scenario.seed, "serving-faults"),
            crash_rate=fp.serving_crash_rate,
            mean_outage=fp.serving_mean_outage,
            straggler_rate=fp.serving_straggler_rate,
        )
        if not serving_schedule.is_null:
            serving_faults = serving_schedule

    adversary = None
    quarantine = None
    if scenario.adversary is not None and scenario.adversary.fraction > 0:
        ap = scenario.adversary
        plan = AdversaryPlan.random(
            n_agents=scenario.servers,
            fraction=ap.fraction,
            behaviors=ap.behaviors,
            factor=ap.factor,
            activity=ap.activity,
            seed=_plane_seed(scenario.seed, "adversary"),
            window=ap.window,
        )
        if not plan.is_null:
            adversary = plan
            quarantine = QuarantinePolicy(
                strikes=ap.strikes,
                probation=ap.probation,
                max_quarantines=ap.max_quarantines,
            )

    partition = None
    if scenario.partition is not None:
        pp = scenario.partition
        if pp.explicit:
            schedule = PartitionSchedule(
                n_regions=scenario.regions,
                windows=tuple(
                    PartitionWindow.from_dict(w) for w in pp.windows
                ),
                central_crashes=pp.central_crashes,
            )
        else:
            schedule = PartitionSchedule.random(
                n_regions=scenario.regions,
                horizon=scenario.horizon,
                seed=_plane_seed(scenario.seed, "partition"),
                partition_fraction=pp.fraction,
                mean_width=pp.mean_width,
                n_islands=pp.islands,
                crash_rate=pp.crash_rate,
            )
        if not schedule.is_null:
            partition = schedule

    return MaterializedScenario(
        instance=instance,
        traffic=traffic,
        fault_plan=fault_plan,
        serving_faults=serving_faults,
        adversary=adversary,
        quarantine=quarantine,
        partition=partition,
        shard_seed=_plane_seed(scenario.seed, "shard"),
        serve_seed=_plane_seed(scenario.seed, "serving"),
        serve_config=serve_config,
    )


# -- execution ---------------------------------------------------------------


@dataclass
class ScenarioOutcome:
    """What one scenario run produced: the JSON report plus live objects."""

    scenario: Scenario
    report: dict[str, Any]
    failures: list[str]
    monitor: InvariantMonitor
    recovery: RecoveryReport
    #: Event-list index of the mechanism/serving boundary.
    split: int

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def events(self) -> list[ev.Event]:
        return self.monitor.events


def run_scenario(scenario: Scenario, *, strict: bool = False) -> ScenarioOutcome:
    """Execute ``scenario`` end to end and gate the outcome.

    Mechanism phase (sharded regional auction under the partition /
    fault / adversary planes), then serving phase (the workload stream
    under the serving fault schedule), all captured through the online
    :class:`~repro.runtime.invariants.InvariantMonitor` on the logical
    clock.  Under ``strict`` the first invariant violation raises
    :class:`~repro.errors.InvariantViolationError` mid-run.
    """
    from repro.obs.audit import (
        audit_events,
        audit_serving_events,
        audit_sharded_events,
    )

    mat = materialize(scenario)
    monitor = InvariantMonitor(
        ev.ColumnarSink(),
        config=InvariantConfig(
            availability_floor=scenario.availability_floor,
            availability_window=scenario.availability_window,
            strict=strict,
        ),
    )
    with ev.logical_time(), ev.capture(monitor):
        placement = ShardedAGTRam(
            n_regions=scenario.regions,
            plan=mat.partition,
            faults=mat.fault_plan,
            adversary=mat.adversary,
            quarantine=mat.quarantine,
            seed=mat.shard_seed,
        ).run(mat.instance)
        split = len(monitor)
        serving = serve(
            mat.instance,
            placement.state,
            mat.traffic.stream,
            config=mat.serve_config,
            faults=mat.serving_faults,
            seed=mat.serve_seed,
            workload=scenario.workload,
            n_requests=scenario.n_requests,
        )

    events = monitor.events
    mech_events = events[:split]
    serving_events = events[split:]

    sharded_audit = audit_sharded_events(mech_events)
    serving_audit = audit_serving_events(serving_events)
    # The serving tail's nested drift re-auctions are flat mechanism
    # runs; the flat audit covers them (and nothing else down here).
    reauction_audit = audit_events(serving_events)

    recovery = recovery_accounting(events)

    # Detection quality: injector ground truth vs. online defences,
    # joined on (round, agent), exactly like the adversary campaign.
    truth: set[tuple[int, int]] = set()
    flagged: set[tuple[int, int]] = set()
    for e in mech_events:
        if isinstance(e, ev.AdversaryEvent):
            truth.add((e.round, e.agent))
        elif isinstance(e, (ev.ValidationEvent, ev.ManipulationEvent)):
            if e.agent >= 0:
                flagged.add((e.round, e.agent))
    caught = truth & flagged
    recall = len(caught) / len(truth) if truth else 1.0
    precision = len(caught) / len(flagged) if flagged else 1.0

    failures: list[str] = []
    if not monitor.ok:
        failures.append(
            f"{len(monitor.violations)} invariant violation(s): "
            + ", ".join(sorted({v.invariant for v in monitor.violations}))
        )
    if not sharded_audit.ok:
        failures.append(
            f"sharded audit FAIL ({len(sharded_audit.violations)} violations)"
        )
    if not serving_audit.ok:
        failures.append(
            f"serving audit FAIL ({len(serving_audit.violations)} violations)"
        )
    if not reauction_audit.ok:
        failures.append(
            f"re-auction audit FAIL "
            f"({len(reauction_audit.violations)} violations)"
        )
    if (
        scenario.min_availability is not None
        and serving.availability < scenario.min_availability
    ):
        failures.append(
            f"availability {serving.availability:.4f} below bound "
            f"{scenario.min_availability:.4f}"
        )
    if (
        scenario.max_degraded_fraction is not None
        and recovery.degraded_fraction > scenario.max_degraded_fraction
    ):
        failures.append(
            f"degraded fraction {recovery.degraded_fraction:.4f} exceeds "
            f"budget {scenario.max_degraded_fraction:.4f}"
        )
    if (
        scenario.min_recall is not None
        and mat.adversary is not None
        and recall < scenario.min_recall
    ):
        failures.append(
            f"detection recall {recall:.3f} below bound "
            f"{scenario.min_recall:.3f}"
        )

    extra = placement.extra
    report = {
        "kind": "repro-scenario",
        "scenario": scenario.to_dict(),
        "planes": {
            "faults": mat.fault_plan is not None,
            "serving_faults": mat.serving_faults is not None,
            "adversary": mat.adversary is not None,
            "partition": mat.partition is not None,
        },
        "placement": {
            "otc": placement.otc,
            "rounds": placement.rounds,
            "messages": extra.get("messages"),
            "windows": extra.get("windows"),
            "heals": extra.get("heals"),
            "conflicts": extra.get("conflicts"),
            "revocations": extra.get("revocations"),
            "elections": extra.get("elections"),
        },
        "serving": serving.to_dict(),
        "invariants": monitor.summary_dict(),
        "recovery": recovery.to_dict(),
        "detection": {
            "injected": len(truth),
            "flagged": len(flagged),
            "recall": recall,
            "precision": precision,
        },
        "audits": {
            "sharded_ok": sharded_audit.ok,
            "sharded_violations": [str(v) for v in sharded_audit.violations],
            "serving_ok": serving_audit.ok,
            "serving_violations": [str(v) for v in serving_audit.violations],
            "reauction_ok": reauction_audit.ok,
            "reauction_violations": [
                str(v) for v in reauction_audit.violations
            ],
        },
        "events": len(events),
        "failures": list(failures),
        "ok": not failures,
    }
    return ScenarioOutcome(
        scenario=scenario,
        report=report,
        failures=failures,
        monitor=monitor,
        recovery=recovery,
        split=split,
    )


# -- shrinking ---------------------------------------------------------------


def _shrink_candidates(sc: Scenario) -> list[Scenario]:
    """Strictly-smaller variants of ``sc``, most aggressive first."""
    out: list[Scenario] = []
    if sc.faults is not None:
        out.append(dataclasses.replace(sc, faults=None))
    if sc.adversary is not None:
        out.append(dataclasses.replace(sc, adversary=None))
    if sc.partition is not None:
        out.append(dataclasses.replace(sc, partition=None))
    if sc.n_requests >= 400:
        out.append(dataclasses.replace(sc, n_requests=sc.n_requests // 2))
    if sc.horizon >= 8:
        out.append(dataclasses.replace(sc, horizon=sc.horizon // 2))
    if sc.availability_window >= 50:
        out.append(
            dataclasses.replace(
                sc, availability_window=sc.availability_window // 2
            )
        )
    if sc.requests >= 1000:
        out.append(dataclasses.replace(sc, requests=sc.requests // 2))
    if (
        sc.adversary is not None
        and sc.adversary.window is not None
        and sc.adversary.window[1] - sc.adversary.window[0] >= 2
    ):
        start, end = sc.adversary.window
        out.append(
            dataclasses.replace(
                sc,
                adversary=dataclasses.replace(
                    sc.adversary, window=(start, start + (end - start) // 2)
                ),
            )
        )
    return out


def shrink_scenario(
    scenario: Scenario,
    fails: Callable[[Scenario], bool],
    *,
    max_steps: int = 64,
) -> tuple[Scenario, int]:
    """Greedily minimize a failing scenario, preserving the failure.

    ``fails(candidate)`` must return True while the defect reproduces
    (a candidate that raises counts as failing — a crash is a repro
    too).  Each accepted candidate restarts the pass; the loop ends
    when no candidate still fails or after ``max_steps`` probes.
    Returns the minimal failing scenario and the number of probes run.
    """
    current = scenario
    probes = 0
    shrunk = True
    while shrunk and probes < max_steps:
        shrunk = False
        for candidate in _shrink_candidates(current):
            if probes >= max_steps:
                break
            probes += 1
            try:
                still_failing = fails(candidate)
            except Exception:
                still_failing = True
            if still_failing:
                current = dataclasses.replace(
                    candidate, name=f"{scenario.name}-shrunk"
                )
                shrunk = True
                break
    return current, probes


def scenario_fails(scenario: Scenario) -> bool:
    """The default shrink predicate: does the scenario fail its gates?"""
    try:
        return not run_scenario(scenario).ok
    except Exception:
        return True


# -- catalog -----------------------------------------------------------------


#: Curated scenarios, smallest first.  ``smoke`` is the CI gate;
#: ``showcase`` is the headline composition — flash-crowd traffic,
#: >=10% Byzantine agents, a scripted regional partition with a
#: regional central crash — expected to survive every gate.
CATALOG: dict[str, Scenario] = {
    "smoke": Scenario(
        name="smoke",
        seed=7,
        servers=8,
        objects=24,
        requests=2000,
        regions=2,
        horizon=16,
        workload="worldcup",
        n_requests=1500,
        faults=FaultPlane(crash_rate=0.03, serving_crash_rate=0.02),
        min_availability=0.9,
        max_degraded_fraction=0.9,
    ),
    "faultstorm": Scenario(
        name="faultstorm",
        seed=11,
        workload="drift",
        faults=FaultPlane(
            crash_rate=0.05,
            straggler_rate=0.08,
            central_crash_rate=0.03,
            serving_crash_rate=0.03,
            serving_straggler_rate=0.05,
        ),
        min_availability=0.8,
        max_degraded_fraction=0.95,
    ),
    "byzantine": Scenario(
        name="byzantine",
        seed=13,
        adversary=AdversaryPlane(fraction=0.25),
        min_availability=0.9,
        min_recall=0.3,
    ),
    "splitbrain": Scenario(
        name="splitbrain",
        seed=17,
        workload="drift",
        partition=PartitionPlane(fraction=0.3, crash_rate=0.01),
        min_availability=0.85,
        max_degraded_fraction=0.95,
    ),
    "showcase": Scenario(
        name="showcase",
        seed=23,
        servers=12,
        objects=36,
        requests=5000,
        regions=4,
        horizon=32,
        workload="flashcrowd",
        n_requests=4000,
        faults=FaultPlane(crash_rate=0.02, serving_crash_rate=0.01),
        adversary=AdversaryPlane(fraction=0.125),
        partition=PartitionPlane(
            windows=({"start": 4, "end": 9, "islands": [0, 0, 1, 1]},),
            central_crashes=((12, 1),),
        ),
        availability_floor=0.5,
        availability_window=400,
        min_availability=0.95,
        max_degraded_fraction=0.9,
        min_recall=0.2,
    ),
}
