"""Partition-tolerant sharded central: the fault-tolerant §7 mechanism.

:mod:`repro.core.hierarchical` shards the central body into regional
sub-centrals; this module makes that sharding survive the failures the
single central already tolerates (crash/election/checkpoint from
:mod:`repro.runtime.faults`, Byzantine bids from
:mod:`repro.runtime.adversary`) **plus** the failure only a sharded
deployment can have: a network partition between the regional centrals.

Model
-----

* Regions clear **concurrently** (one sealed-bid regional round per
  region per global round) on a shared replication state, exactly like
  ``HierarchicalAGTRam(mode="concurrent")``, using the PR 7 benefit
  engine selected by ``engine=``.
* A seeded :class:`PartitionSchedule` declares half-open round windows
  ``[start, end)`` during which the regional centrals are split into
  *islands*.  At a window start every island forks the replication
  state; while split, each island keeps clearing locally on its fork
  (regional autonomy — the paper's motivation for sharding in the
  first place).
* Regional-central **crashes** (scheduled per ``(round, region)``)
  stall that region for the round: the region's live agents elect a
  stand-in (lowest live id, mirroring the flat simulator), the
  stand-in restores the region's :class:`CheckpointStore` snapshot and
  re-learns newer commits from agent state-sync reports.
* At the window end the islands **heal**.  Divergence is resolved by a
  deterministic reconciliation protocol (:func:`reconcile_divergence`):
  an object committed by two or more islands during the window is
  *contested*; per contested object the single best commit survives
  (highest reported benefit, ties to the lowest server id) and every
  other commit is revoked — its capacity refunded, its payment clawed
  back, the object re-auctioned by the healed market.  The merged
  placement is therefore capacity-feasible with zero double-allocated
  ``(object, server)`` pairs, and every divergence is declared in a
  typed :class:`~repro.obs.events.ReconcileEvent` so
  :func:`repro.obs.audit.audit_sharded_events` can re-verify the merge
  from the log alone.

Message accounting
------------------

Regional centrals are addressed as ``-(region + 1)`` (the flat central
body is ``-1`` == region 0's central, keeping the convention).  Per
committing regional round: one :class:`BidMessage` per delivered bid,
one :class:`AllocateMessage` per agent *of that region* (the regional
OMAX broadcast), one :class:`PaymentMessage` to the winner.  Commits
gossip between an island's centrals as :class:`StateSyncMessage`\\ s,
and each island batches one :class:`NNResyncMessage` per agent per
committing round.

The traffic saving over the flat protocol (≈ ``3M + 1`` messages per
commit, ``M`` agents) comes from **regional quiescence**: a region
whose best marginal benefit is non-positive stands down — its agents
send no bids and its central defers per-agent NN digests until the
region re-enters the game.  This is sound because replica *additions*
only lower marginal benefits (a new replica elsewhere can only shorten
nearest-neighbour distances), so a quiescent region stays quiescent
until a heal *revokes* replicas — and the heal-time resync reaches
every agent of every region, waking them with a current digest.
Central-to-central gossip keeps flowing regardless, so regional
centrals always know the island placement.  A round's per-agent cost
is therefore ``≈ 3·m_active`` (the awake regions' sizes), not ``3M``;
``python -m repro shard`` measures the realized reduction against the
flat simulator.  With an active :class:`AdversaryPlan` quiescence is
disabled — Byzantine agents bid regardless of honest valuations, so
every region must hold its round.

Composition notes: the :class:`FaultPlan` channel/quorum knobs model a
WAN between agents and the *single* central and are not consulted here
(regional links are intra-domain); its schedule's ``central_crashes``
target the flat central — sharded central crashes come from the
:class:`PartitionSchedule` instead.  Agent crashes, stragglers and the
checkpoint period compose unchanged, as does the full
:class:`AdversaryPlan` pipeline (corruption at the lying agent, a
validator + detector + quarantine boundary in front of every regional
central).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.agents import Bid
from repro.core.hierarchical import RegionStats, partition_by_proximity
from repro.drp.cost import total_otc
from repro.drp.delta import ENGINE_NAMES, make_local_engine, resolve_engine
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.obs import events as ev
from repro.result import PlacementResult
from repro.runtime.adversary import (
    AdversaryInjector,
    AdversaryPlan,
    QuarantinePolicy,
    TrustBoundary,
)
from repro.runtime.central import CentralBody, Decision
from repro.runtime.faults import CheckpointStore, FaultPlan, FaultSchedule
from repro.runtime.messages import (
    AllocateMessage,
    BidMessage,
    ElectionMessage,
    MessageLog,
    NNResyncMessage,
    PaymentMessage,
    StateSyncMessage,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer

__all__ = [
    "PartitionWindow",
    "PartitionSchedule",
    "ShardAllocation",
    "ReconcileOutcome",
    "reconcile_divergence",
    "ShardedAGTRam",
    "central_id",
]


def central_id(region: int) -> int:
    """Wire address of region ``r``'s central body: ``-(r + 1)``."""
    return -(int(region) + 1)


def _dense_islands(labels: Iterable[int]) -> tuple[int, ...]:
    """Renumber island labels to dense first-occurrence order."""
    remap: dict[int, int] = {}
    out: list[int] = []
    for v in labels:
        out.append(remap.setdefault(int(v), len(remap)))
    return tuple(out)


@dataclass(frozen=True)
class PartitionWindow:
    """One network partition: rounds ``[start, end)`` split the regions
    into islands; ``islands[r]`` is region ``r``'s island index (dense
    from 0, at least two distinct islands)."""

    start: int
    end: int
    islands: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", int(self.start))
        object.__setattr__(self, "end", int(self.end))
        object.__setattr__(
            self, "islands", tuple(int(i) for i in self.islands)
        )
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"window [{self.start}, {self.end}) must satisfy "
                "0 <= start < end"
            )
        if not self.islands:
            raise ConfigurationError("window needs an islands assignment")
        distinct = sorted(set(self.islands))
        if distinct != list(range(len(distinct))):
            raise ConfigurationError(
                f"island ids must be dense from 0, got {self.islands}"
            )
        if len(distinct) < 2:
            raise ConfigurationError(
                "a partition window must split the regions into at least "
                "two islands"
            )

    @property
    def n_islands(self) -> int:
        return len(set(self.islands))

    def to_dict(self) -> dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "islands": list(self.islands),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PartitionWindow":
        return cls(
            start=int(d["start"]),
            end=int(d["end"]),
            islands=tuple(int(i) for i in d.get("islands", ())),
        )


@dataclass(frozen=True)
class PartitionSchedule:
    """A fully materialized plan of when the sharded central splits.

    ``windows`` are non-overlapping, sorted partition windows whose
    ``islands`` assignments cover exactly ``n_regions`` regions.
    ``central_crashes`` lists ``(round, region)`` pairs at whose start
    that *regional* central crashes (election + checkpoint recovery
    within the region).  Pure data: JSON round-trips via
    :meth:`to_dict` / :meth:`from_dict` and composes with
    :class:`~repro.runtime.faults.FaultPlan` and
    :class:`~repro.runtime.adversary.AdversaryPlan` in
    :class:`ShardedAGTRam`.
    """

    n_regions: int = 4
    windows: tuple[PartitionWindow, ...] = ()
    central_crashes: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.n_regions < 1:
            raise ConfigurationError("n_regions must be >= 1")
        windows = tuple(
            sorted(self.windows, key=lambda w: (w.start, w.end))
        )
        object.__setattr__(self, "windows", windows)
        object.__setattr__(
            self,
            "central_crashes",
            tuple(sorted((int(r), int(g)) for r, g in self.central_crashes)),
        )
        prev_end = -1
        for w in windows:
            if len(w.islands) != self.n_regions:
                raise ConfigurationError(
                    f"window [{w.start}, {w.end}) assigns {len(w.islands)} "
                    f"regions, schedule has {self.n_regions}"
                )
            if w.start < prev_end:
                raise ConfigurationError(
                    f"window [{w.start}, {w.end}) overlaps the previous one"
                )
            prev_end = w.end
        for rnd, region in self.central_crashes:
            if rnd < 0 or not (0 <= region < self.n_regions):
                raise ConfigurationError(
                    f"central crash ({rnd}, {region}) is out of range"
                )

    @classmethod
    def null(cls, n_regions: int = 4) -> "PartitionSchedule":
        """The empty schedule: the shards never split, nothing crashes."""
        return cls(n_regions=n_regions)

    @property
    def is_null(self) -> bool:
        return not self.windows and not self.central_crashes

    @classmethod
    def random(
        cls,
        *,
        n_regions: int,
        horizon: int,
        seed: SeedLike = 0,
        partition_fraction: float = 0.3,
        mean_width: float = 6.0,
        n_islands: int = 2,
        crash_rate: float = 0.0,
    ) -> "PartitionSchedule":
        """Sample a stochastic schedule, reproducible from ``seed``.

        Windows are placed left to right until ``partition_fraction``
        of the ``horizon`` rounds is partitioned: a geometric healthy
        gap, then a geometric window of mean ``mean_width`` rounds
        whose island assignment draws each region into one of
        ``n_islands`` groups (re-labelled dense; degenerate all-in-one
        draws are repaired by moving the last region).  Regional
        central crashes are Bernoulli ``crash_rate`` per (round,
        region).  Sampling order is fixed, so the schedule is a pure
        function of the arguments.
        """
        if n_regions < 2 and partition_fraction > 0:
            raise ConfigurationError(
                "partitioning needs at least 2 regions"
            )
        if not (0.0 <= partition_fraction <= 1.0):
            raise ConfigurationError(
                "partition_fraction must be in [0, 1], got "
                f"{partition_fraction}"
            )
        if not (0.0 <= crash_rate <= 1.0):
            raise ConfigurationError("crash_rate must be in [0, 1]")
        if mean_width < 1.0:
            raise ConfigurationError("mean_width must be >= 1")
        rng = as_generator(seed)
        target = int(round(partition_fraction * horizon))
        k_isl = max(2, min(int(n_islands), n_regions))
        windows: list[PartitionWindow] = []
        cursor, covered = 0, 0
        while covered < target:
            gap = int(rng.geometric(0.25))  # mean 4 healthy rounds
            start = cursor + gap
            if start >= horizon:
                break
            width = int(rng.geometric(1.0 / mean_width))
            end = min(start + max(1, width), horizon)
            if end <= start:
                break
            labels = [int(x) for x in rng.integers(0, k_isl, n_regions)]
            islands = list(_dense_islands(labels))
            if len(set(islands)) < 2:
                islands[-1] = 1
            windows.append(
                PartitionWindow(start=start, end=end, islands=tuple(islands))
            )
            covered += end - start
            cursor = end
        crashes: list[tuple[int, int]] = []
        if crash_rate > 0:
            for rnd in range(horizon):
                for region in range(n_regions):
                    if rng.random() < crash_rate:
                        crashes.append((rnd, region))
        return cls(
            n_regions=n_regions,
            windows=tuple(windows),
            central_crashes=tuple(crashes),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_regions": self.n_regions,
            "windows": [w.to_dict() for w in self.windows],
            "central_crashes": [list(c) for c in self.central_crashes],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PartitionSchedule":
        return cls(
            n_regions=int(d.get("n_regions", 4)),
            windows=tuple(
                PartitionWindow.from_dict(w) for w in d.get("windows", ())
            ),
            central_crashes=tuple(
                (int(r), int(g)) for r, g in d.get("central_crashes", ())
            ),
        )


# -- reconciliation ----------------------------------------------------------


@dataclass(frozen=True)
class ShardAllocation:
    """One regional commit, as reconciliation sees it."""

    region: int
    server: int
    obj: int
    value: float
    payment: float
    round: int


@dataclass(frozen=True)
class ReconcileOutcome:
    """What the heal-time merge decided.

    ``conflicts`` are the contested object ids (committed by two or
    more islands during the window), sorted ascending.  ``kept`` holds
    the single surviving commit per contested object, ``revoked`` every
    other commit of a contested object; both are sorted by
    ``(obj, server)``.  Uncontested commits are untouched and appear in
    neither list.
    """

    conflicts: tuple[int, ...] = ()
    kept: tuple[ShardAllocation, ...] = ()
    revoked: tuple[ShardAllocation, ...] = ()


def reconcile_divergence(
    commits: Iterable[ShardAllocation],
    island_of_region: Mapping[int, int],
) -> ReconcileOutcome:
    """Resolve split-brain divergence deterministically.

    Pure function of the *set* of commits: the outcome is independent
    of input order and idempotent (feeding the survivors back in
    revokes nothing).  An object is contested when commits for it came
    from at least two distinct islands (``island_of_region`` maps each
    committing region to its island during the window).  Per contested
    object the commit with the highest reported benefit survives —
    lowest-cost-winner — with deterministic tie-breaks (lowest server
    id, then lowest region, then earliest round); all other commits of
    that object are revoked.
    """
    by_obj: dict[int, list[ShardAllocation]] = {}
    for c in commits:
        by_obj.setdefault(int(c.obj), []).append(c)
    conflicts: list[int] = []
    kept: list[ShardAllocation] = []
    revoked: list[ShardAllocation] = []
    for obj in sorted(by_obj):
        group = by_obj[obj]
        islands = {island_of_region[c.region] for c in group}
        if len(islands) < 2:
            continue
        conflicts.append(obj)
        winner = min(
            group, key=lambda c: (-c.value, c.server, c.region, c.round)
        )
        kept.append(winner)
        revoked.extend(c for c in group if c is not winner)
    key = lambda c: (c.obj, c.server)  # noqa: E731 — canonical order
    return ReconcileOutcome(
        conflicts=tuple(conflicts),
        kept=tuple(sorted(kept, key=key)),
        revoked=tuple(sorted(revoked, key=key)),
    )


# -- runtime -----------------------------------------------------------------


@dataclass
class _Island:
    """One side of a partition: the regions that can still reach each
    other, their forked state, and the benefit engine over it."""

    index: int
    regions: list[int]
    state: ReplicationState
    engine: Any
    commits: list[ShardAllocation] = field(default_factory=list)


@dataclass
class ShardedAGTRam:
    """Concurrent regional AGT-RAM under partitions, crashes and
    Byzantine bids.  See the module docstring for the model.

    Parameters mirror :class:`~repro.core.hierarchical.HierarchicalAGTRam`
    (``n_regions``/``partition``/``seed``/``engine``), plus:

    plan:
        The :class:`PartitionSchedule`; ``None`` means
        :meth:`PartitionSchedule.null` — the run is then byte-identical
        (event-stream-wise) to an explicitly null-scheduled run.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan`; agent
        crashes and stragglers abstain from bidding, and
        ``checkpoint_period`` drives the per-region
        :class:`CheckpointStore` (no plan disables checkpointing).
    adversary:
        Optional :class:`~repro.runtime.adversary.AdversaryPlan`;
        corruption happens at the lying agent, and every regional
        central screens through a shared
        :class:`~repro.runtime.adversary.TrustBoundary` (the defence
        policy is replicated across shards, so strikes survive
        partitions).
    quarantine:
        Optional :class:`~repro.runtime.adversary.QuarantinePolicy` for
        that shared boundary; ``None`` uses the defaults.  Only
        consulted when an adversary plan is supplied.
    """

    n_regions: int = 4
    partition: Optional[np.ndarray] = None
    plan: Optional[PartitionSchedule] = None
    faults: Optional[FaultPlan] = None
    adversary: Optional[AdversaryPlan] = None
    quarantine: Optional[QuarantinePolicy] = None
    engine: str = "auto"
    seed: SeedLike = None
    max_rounds: Optional[int] = None
    keep_messages: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"engine must be one of {ENGINE_NAMES}, got {self.engine!r}"
            )

    # -- helpers -----------------------------------------------------------

    def _regions(self, instance: DRPInstance) -> np.ndarray:
        if self.partition is not None:
            part = np.asarray(self.partition, dtype=np.int64)
            if part.shape != (instance.n_servers,):
                raise ConfigurationError(
                    f"partition must have shape ({instance.n_servers},), "
                    f"got {part.shape}"
                )
            if part.min() < 0:
                raise ConfigurationError("region ids must be non-negative")
            return part
        return partition_by_proximity(instance, self.n_regions, seed=self.seed)

    # -- run ----------------------------------------------------------------

    def run(self, instance: DRPInstance) -> PlacementResult:
        timer = Timer()
        with timer:
            result = self._run(instance)
        result.runtime_s = timer.elapsed
        return result

    def _run(self, instance: DRPInstance) -> PlacementResult:
        m = instance.n_servers
        part = self._regions(instance)
        region_ids = sorted(set(int(r) for r in part))
        k = len(region_ids)
        if region_ids != list(range(k)):
            raise ConfigurationError(
                f"region ids must be dense 0..{k - 1}, got {region_ids}"
            )
        plan = self.plan if self.plan is not None else PartitionSchedule.null(k)
        if plan.n_regions != k:
            raise ConfigurationError(
                f"schedule covers {plan.n_regions} regions, partition has {k}"
            )
        engine_name = resolve_engine(self.engine)
        rows = {r: [int(a) for a in np.flatnonzero(part == r)] for r in region_ids}

        schedule = self.faults.schedule if self.faults else FaultSchedule.null()
        ckpt_period = self.faults.checkpoint_period if self.faults else 0
        stores = {r: CheckpointStore(ckpt_period) for r in region_ids}
        injector = (
            AdversaryInjector(self.adversary, m)
            if self.adversary is not None and not self.adversary.is_null
            else None
        )
        boundary = (
            TrustBoundary(instance, self.quarantine)
            if injector is not None
            else None
        )
        central = CentralBody("second_price")

        log = MessageLog(keep_messages=self.keep_messages)
        sink = ev.current()
        eventing = sink.enabled
        payments = np.zeros(m)
        stats = {r: RegionStats(region=r, servers=len(rows[r])) for r in region_ids}
        counters = {
            "windows": 0, "heals": 0, "divergent": 0, "conflicts": 0,
            "revocations": 0, "refunded_capacity": 0, "elections": 0,
            "recoveries": 0, "checkpoints": 0, "crashes_injected": 0,
        }
        refunded_payment = 0.0
        revoked_log: list[ShardAllocation] = []
        reauctioned_all: set[int] = set()

        state = ReplicationState.primaries_only(instance)
        if eventing:
            sink.emit(ev.RunStart(t=ev.now(), algorithm="Sharded-AGT-RAM"))
            state.begin_otc_tracking()
        islands = [
            _Island(
                index=0,
                regions=list(region_ids),
                state=state,
                engine=make_local_engine(engine_name, instance, state),
            )
        ]
        fork_base: Optional[ReplicationState] = None
        active: Optional[PartitionWindow] = None
        next_widx = 0
        crash_set = set(plan.central_crashes)
        # The default cap bounds *work* like the flat mechanism's M*N,
        # plus the partition calendar: idle partitioned rounds are
        # fast-forwarded but still advance the round clock, and revoked
        # objects re-auction after the last heal.
        cap = (
            self.max_rounds
            if self.max_rounds is not None
            else instance.n_servers * instance.n_objects
            + (plan.windows[-1].end if plan.windows else 0)
        )

        def heal(at_round: int) -> None:
            nonlocal islands, fork_base, active, refunded_payment
            assert active is not None and fork_base is not None
            window = active
            commits = [c for isl in islands for c in isl.commits]
            island_of = {r: window.islands[r] for r in region_ids}
            outcome = reconcile_divergence(commits, island_of)
            revoked_pairs = {(c.server, c.obj) for c in outcome.revoked}
            merged = fork_base
            for c in sorted(
                commits, key=lambda c: (c.round, c.region, c.server, c.obj)
            ):
                if (c.server, c.obj) in revoked_pairs:
                    continue
                merged.add_replica(c.server, c.obj)
            refund_cap = int(
                sum(int(instance.sizes[c.obj]) for c in outcome.revoked)
            )
            refund_pay = float(sum(c.payment for c in outcome.revoked))
            reauctioned = tuple(sorted({c.obj for c in outcome.revoked}))
            for c in outcome.revoked:
                payments[c.server] -= c.payment
                stats[c.region].allocations -= 1
                stats[c.region].payments -= c.payment
            refunded_payment += refund_pay
            revoked_log.extend(outcome.revoked)
            reauctioned_all.update(reauctioned)
            counters["heals"] += 1
            counters["divergent"] += len(commits)
            counters["conflicts"] += len(outcome.conflicts)
            counters["revocations"] += len(outcome.revoked)
            counters["refunded_capacity"] += refund_cap
            if eventing:
                sink.emit(
                    ev.ReconcileEvent(
                        t=ev.now(), round=at_round,
                        conflicts=outcome.conflicts,
                        kept=tuple((c.server, c.obj) for c in outcome.kept),
                        revoked=tuple(
                            (c.server, c.obj) for c in outcome.revoked
                        ),
                        refunded_capacity=refund_cap,
                        refunded_payment=refund_pay,
                        reauctioned=reauctioned,
                    )
                )
                sink.emit(
                    ev.HealEvent(
                        t=ev.now(), round=at_round, islands=window.islands,
                        divergent=len(commits),
                    )
                )
            # Heal-time resync: centrals exchange their window commits
            # pairwise, then each region's central pushes the merged
            # NN digest to its own agents.
            objs_by_region: dict[int, list[int]] = {r: [] for r in region_ids}
            for c in commits:
                objs_by_region[c.region].append(c.obj)
            kept_objs = tuple(
                sorted(
                    {
                        c.obj
                        for c in commits
                        if (c.server, c.obj) not in revoked_pairs
                    }
                )
            )
            for r1 in region_ids:
                for r2 in region_ids:
                    if r1 == r2:
                        continue
                    log.record(
                        StateSyncMessage(
                            sender=central_id(r1), receiver=central_id(r2),
                            objs=tuple(objs_by_region[r1]),
                        )
                    )
            for r in region_ids:
                for agent in rows[r]:
                    log.record(
                        NNResyncMessage(
                            sender=central_id(r), receiver=agent,
                            objs=kept_objs,
                        )
                    )
            islands = [
                _Island(
                    index=0,
                    regions=list(region_ids),
                    state=merged,
                    engine=make_local_engine(engine_name, instance, merged),
                )
            ]
            fork_base = None
            active = None

        pround = 0
        while pround < cap:
            if active is not None and pround >= active.end:
                heal(active.end)
            if (
                active is None
                and next_widx < len(plan.windows)
                and plan.windows[next_widx].start <= pround
            ):
                window = plan.windows[next_widx]
                next_widx += 1
                active = window
                counters["windows"] += 1
                base = islands[0].state
                fork_base = base.copy()
                groups = sorted(set(window.islands))
                new_islands: list[_Island] = []
                for g in groups:
                    regions_g = [
                        r for r in region_ids if window.islands[r] == g
                    ]
                    if g == 0:
                        # Island 0 keeps the live state and its engine.
                        new_islands.append(
                            _Island(
                                index=0, regions=regions_g, state=base,
                                engine=islands[0].engine,
                            )
                        )
                    else:
                        forked = base.copy()
                        new_islands.append(
                            _Island(
                                index=g, regions=regions_g, state=forked,
                                engine=make_local_engine(
                                    engine_name, instance, forked
                                ),
                            )
                        )
                islands = new_islands
                if eventing:
                    sink.emit(
                        ev.PartitionEvent(
                            t=ev.now(), round=pround, islands=window.islands,
                        )
                    )

            any_commit = False
            stalled = False
            for island in islands:
                vals, objs = island.engine.best_per_server()
                committed_regions: list[int] = []
                round_objs: list[int] = []
                awake: list[int] = []
                for r in island.regions:
                    if (pround, r) in crash_set:
                        stalled = True
                        awake.append(r)
                        self._regional_crash(
                            pround, r, rows[r], schedule, stores[r],
                            island, log, sink, eventing, counters,
                        )
                        continue
                    commit, participated = self._clear_region(
                        pround, r, rows[r], island, vals, objs, instance,
                        schedule, stores[r], injector, boundary, central,
                        log, sink, eventing, counters,
                    )
                    if participated:
                        awake.append(r)
                    if commit is None:
                        continue
                    any_commit = True
                    island.commits.append(commit)
                    payments[commit.server] += commit.payment
                    stats[r].allocations += 1
                    stats[r].payments += commit.payment
                    committed_regions.append(r)
                    round_objs.append(commit.obj)
                if not committed_regions:
                    continue
                # End-of-round propagation inside the island: engine
                # refresh, pairwise central gossip, batched NN resync.
                for c in island.commits[-len(committed_regions):]:
                    island.engine.refresh_object(c.obj)
                    island.engine.refresh_server(c.server)
                digest = tuple(sorted(set(round_objs)))
                for r1 in committed_regions:
                    for r2 in island.regions:
                        if r1 == r2:
                            continue
                        log.record(
                            StateSyncMessage(
                                sender=central_id(r1),
                                receiver=central_id(r2),
                                objs=tuple(
                                    c.obj
                                    for c in island.commits[
                                        -len(committed_regions):
                                    ]
                                    if c.region == r1
                                ),
                            )
                        )
                # Quiescent regions defer their per-agent digest (the
                # heal-time resync catches them up); a crashed region's
                # recovery ends with its agents current, so it counts
                # as awake for this round's digest.
                for r in awake:
                    for agent in rows[r]:
                        log.record(
                            NNResyncMessage(
                                sender=central_id(r), receiver=agent,
                                objs=digest,
                            )
                        )

            if not any_commit and not stalled:
                if active is not None:
                    # Every island is idle: fast-forward to the heal
                    # (later rounds of the window are inert; any
                    # crashes scheduled inside the skipped span target
                    # idle centrals and are skipped with it).
                    pround = active.end
                    continue
                # Converged with no partition pending or active; any
                # remaining windows fork an idle state and are inert.
                break
            pround += 1

        if active is not None:
            # Round cap hit mid-window: heal so the returned placement
            # is always reconciled.
            heal(pround)

        final = islands[0].state
        if eventing:
            sink.emit(
                ev.RunEnd(
                    t=ev.now(), algorithm="Sharded-AGT-RAM",
                    otc=final.tracked_otc(), rounds=pround,
                )
            )

        extra: dict[str, Any] = {
            "payments": payments,
            "partition": part,
            "region_stats": stats,
            "engine": engine_name,
            "schedule": plan.to_dict(),
            "mode": "sharded",
            "messages": log.total_messages(),
            "message_bytes": log.bytes_total,
            "message_counts": dict(log.counts),
            "message_log": log,
            "refunded_payment": refunded_payment,
            "revoked": [
                (c.region, c.server, c.obj, c.value, c.payment, c.round)
                for c in revoked_log
            ],
            "reauctioned": sorted(reauctioned_all),
            **counters,
        }
        if boundary is not None:
            extra["boundary"] = boundary.summary_dict()
        if injector is not None:
            extra["adversary"] = injector.summary_dict()
        return PlacementResult(
            algorithm="Sharded-AGT-RAM",
            state=final,
            otc=total_otc(final),
            runtime_s=0.0,
            rounds=pround,
            extra=extra,
        )

    # -- one regional round -------------------------------------------------

    def _clear_region(
        self,
        pround: int,
        r: int,
        region_rows: Sequence[int],
        island: _Island,
        vals: np.ndarray,
        objs: np.ndarray,
        instance: DRPInstance,
        schedule: FaultSchedule,
        store: CheckpointStore,
        injector: Optional[AdversaryInjector],
        boundary: Optional[TrustBoundary],
        central: CentralBody,
        log: MessageLog,
        sink: "ev.EventSink",
        eventing: bool,
        counters: dict[str, int],
    ) -> tuple[Optional[ShardAllocation], bool]:
        """Run region ``r``'s sealed-bid round.

        Returns ``(commit, participated)``: the commit if the region
        allocated, and whether the region held its round at all —
        a *quiescent* region (best live benefit non-positive, see the
        module docstring) sends nothing, emits nothing and skips its
        round-end NN digest, which is where the sharded protocol's
        message reduction comes from.

        Mirrors the flat simulator's round otherwise: live agents bid
        their engine-cached best, the adversary corrupts at the sender,
        the trust boundary screens in front of the regional central,
        and :meth:`CentralBody.decide` arbitrates.  Round events are
        only emitted when the region actually attempts an allocation
        (matching ``HierarchicalAGTRam``'s silent skip of exhausted
        regions), and only *accepted* bids are emitted, so the flat and
        per-shard audits verify each regional round independently.
        """
        state = island.state
        rcid = central_id(r)
        live = [a for a in region_rows if not schedule.agent_down(a, pround)]
        if boundary is not None:
            live = boundary.filter_bidders(live, pround)
        if injector is None or injector.dormant(
            pround,
            boundary.quarantine.expelled if boundary is not None else
            frozenset(),
        ):
            # Regional quiescence: with only honest bidders, a round
            # whose best benefit is non-positive is a foregone
            # DO_NOT_REPLICATE — nobody bids, no wire is used.  (While
            # an adversary is *armed* the round must be held: corrupted
            # bids do not respect honest valuations.  Once its window
            # has ended — or every attacker is permanently expelled —
            # only honest traffic remains and quiescence is safe again.)
            best = max(
                (float(vals[a]) for a in live if np.isfinite(vals[a])),
                default=float("-inf"),
            )
            if best <= 0.0:
                return None, False
        arrived: list[int] = []
        for a in live:
            if not np.isfinite(vals[a]):
                continue  # empty L_i: the agent has left the game
            if schedule.is_straggler(pround, a):
                # Sent, but past the regional deadline: the wire was
                # used, the report does not count.
                log.record(
                    BidMessage(
                        sender=a, receiver=rcid, obj=int(objs[a]),
                        value=float(vals[a]),
                    )
                )
                if eventing:
                    sink.emit(
                        ev.FaultEvent(
                            t=ev.now(), round=pround, kind="straggler",
                            agent=a, target="bid", detail=f"region {r}",
                        )
                    )
                continue
            arrived.append(a)
        if not arrived:
            return None, True

        honest = {
            a: Bid(agent=a, obj=int(objs[a]), value=float(vals[a]))
            for a in arrived
        }
        if injector is not None:
            sends = injector.corrupt_round(pround, honest, state, instance)
        else:
            sends = {a: [(b.obj, b.value)] for a, b in honest.items()}
        msgs: list[BidMessage] = []
        for a in arrived:
            for si, (obj, value) in enumerate(sends[a]):
                msg = BidMessage(
                    sender=a, receiver=rcid, obj=obj, value=value, seq=si
                )
                log.record(msg)
                msgs.append(msg)
        if boundary is not None:
            msgs, _ = boundary.screen(msgs, state, island.engine, pround)
        outcome = central.decide(msgs, instance.n_servers, rnd=pround)
        if outcome.decision is Decision.DO_NOT_REPLICATE:
            return None, True
        rejected = set(outcome.rejected)
        survivors: dict[int, tuple[int, float]] = {}
        for msg in msgs:
            if msg.sender in rejected or msg.sender in survivors:
                continue
            survivors[msg.sender] = (msg.obj, msg.value)

        winner, obj = outcome.winner, outcome.obj
        if eventing:
            sink.emit(ev.RoundStart(t=ev.now(), round=pround, region=r))
            for a, (bobj, bval) in survivors.items():
                sink.emit(
                    ev.BidEvent(
                        t=ev.now(), round=pround, agent=a, obj=bobj,
                        value=bval, region=r,
                    )
                )
        if not state.can_host(winner, obj):
            if eventing:
                reason = "duplicate" if state.x[winner, obj] else "capacity"
                sink.emit(
                    ev.CapacityReject(
                        t=ev.now(), round=pround, agent=winner, obj=obj,
                        obj_size=int(instance.sizes[obj]),
                        residual=int(state.residual[winner]),
                        reason=reason, region=r,
                    )
                )
                sink.emit(
                    ev.RoundEnd(
                        t=ev.now(), round=pround, committed=0,
                        otc=state.tracked_otc(), region=r,
                    )
                )
            return None, True
        if eventing:
            sink.emit(
                ev.WinnerEvent(
                    t=ev.now(), round=pround, agent=winner, obj=obj,
                    value=survivors[winner][1],
                    obj_size=int(instance.sizes[obj]),
                    residual_before=int(state.residual[winner]),
                    region=r,
                )
            )
        state.add_replica(winner, obj)
        if store.commit(winner, obj, pround):
            counters["checkpoints"] += 1
            if eventing:
                sink.emit(
                    ev.CheckpointEvent(
                        t=ev.now(), round=pround,
                        allocations=len(store.allocations),
                    )
                )
        # Regional OMAX broadcast + the winner's payment.
        for a in region_rows:
            log.record(AllocateMessage(sender=rcid, receiver=a,
                                       winner=winner, obj=obj))
        log.record(PaymentMessage(sender=rcid, receiver=winner,
                                  amount=outcome.payment))
        if eventing:
            sink.emit(
                ev.PaymentEvent(
                    t=ev.now(), round=pround, agent=winner,
                    amount=outcome.payment, region=r,
                )
            )
            sink.emit(
                ev.RoundEnd(
                    t=ev.now(), round=pround, committed=1,
                    otc=state.tracked_otc(), region=r,
                )
            )
        return ShardAllocation(
            region=r, server=winner, obj=obj,
            value=float(survivors[winner][1]),
            payment=float(outcome.payment), round=pround,
        ), True

    # -- regional central crash ---------------------------------------------

    @staticmethod
    def _regional_crash(
        pround: int,
        r: int,
        region_rows: Sequence[int],
        schedule: FaultSchedule,
        store: CheckpointStore,
        island: _Island,
        log: MessageLog,
        sink: "ev.EventSink",
        eventing: bool,
        counters: dict[str, int],
    ) -> None:
        """Region ``r``'s central crashes at the start of ``pround``:
        the region stalls for the round while its live agents elect the
        lowest live id as stand-in (mirroring the flat simulator's
        election) and the stand-in restores the newest checkpoint,
        re-learning newer commits from agent state-sync reports."""
        counters["crashes_injected"] += 1
        if eventing:
            sink.emit(
                ev.FaultEvent(
                    t=ev.now(), round=pround, kind="central_crash",
                    agent=-1, detail=f"region {r}",
                )
            )
        live = [a for a in region_rows if not schedule.agent_down(a, pround)]
        if not live:
            return  # nobody left to elect; the region sits the epoch out
        stand_in = min(live)
        for a in live:
            for b in live:
                if a != b:
                    log.record(
                        ElectionMessage(sender=a, receiver=b,
                                        candidate=stand_in)
                    )
        counters["elections"] += 1
        if eventing:
            sink.emit(
                ev.ElectionEvent(
                    t=ev.now(), round=pround, candidate=stand_in,
                    voters=len(live),
                )
            )
        ckpt = store.restore()
        replayed = store.lost_since_checkpoint
        for a in live:
            if a == stand_in:
                continue
            held = tuple(int(o) for o in np.flatnonzero(island.state.x[a]))
            log.record(
                StateSyncMessage(sender=a, receiver=central_id(r), objs=held)
            )
        counters["recoveries"] += 1
        if eventing:
            sink.emit(
                ev.RecoveryEvent(
                    t=ev.now(), round=pround, kind="central", agent=-1,
                    checkpoint_round=ckpt.round, replayed=replayed,
                    acting_central=stand_in,
                )
            )
