"""Message-granular simulation of the AGT-RAM protocol.

Drives explicit :class:`~repro.core.agents.ReplicaAgent` objects and a
:class:`~repro.runtime.central.CentralBody` through Figure 2, recording
every message.  Produces byte/round/critical-path accounting the
vectorized engine cannot, and — by construction — the *same final
replication scheme* as :class:`~repro.core.agt_ram.AGTRam` under
truthful agents (a tested equivalence).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.core.agents import ReplicaAgent
from repro.core.strategies import Strategy
from repro.drp.benefit import BenefitEngine
from repro.drp.cost import total_otc
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.result import PlacementResult
from repro.runtime.central import CentralBody, Decision
from repro.runtime.messages import (
    AllocateMessage,
    BidMessage,
    ElectionMessage,
    MessageLog,
    NNUpdateMessage,
    PaymentMessage,
)
from repro.obs import events as ev
from repro.obs import tracer as obs
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.parallel import ParallelBidEvaluator
from repro.utils.timing import Timer, perf_counter

#: The central body's address in the message log.
CENTRAL = -1


class SemiDistributedSimulator:
    """Protocol-faithful AGT-RAM execution.

    Parameters
    ----------
    payment_rule:
        Forwarded to the central body.
    strategies:
        Optional per-agent deviation strategies.
    max_workers:
        Thread-pool width for the PARFOR bid sweep (None = serial).
    keep_messages:
        Retain full message objects in the log (memory-heavy; counts and
        bytes are always kept).
    nn_update_period:
        NN-table broadcast cadence.  1 (the paper's eager protocol)
        broadcasts after every allocation; T > 1 lets agents bid on
        views up to T-1 rounds stale, trading NN-update message volume
        for solution quality (the DESIGN.md §5 ablation).  A winner's
        own row is always fresh — it knows what it hosts.
    failed_agents:
        Servers whose agent process is down; they never bid and so
        never receive replicas, but their primaries keep serving (data
        survives agent failure).  Models the paper's robustness concern
        about per-node failures in a large system.
    central_failure_round:
        If set, the central body crashes at the start of that round.
        The agents self-repair (paper §7): each broadcasts an election
        vote and the lowest-id live agent takes over as acting central.
        The protocol — and the final scheme — are unchanged (the
        central role is stateless); what the failure costs is one
        election round of messages, which the metrics record.
    """

    def __init__(
        self,
        *,
        payment_rule: str = "second_price",
        strategies: Optional[Mapping[int, Strategy]] = None,
        max_workers: Optional[int] = None,
        keep_messages: bool = False,
        nn_update_period: int = 1,
        failed_agents: Optional[set[int]] = None,
        central_failure_round: Optional[int] = None,
    ):
        if nn_update_period < 1:
            raise ValueError("nn_update_period must be >= 1")
        if central_failure_round is not None and central_failure_round < 0:
            raise ValueError("central_failure_round must be >= 0")
        self.central = CentralBody(payment_rule)
        self.strategies = dict(strategies) if strategies else {}
        self.max_workers = max_workers
        self.keep_messages = keep_messages
        self.nn_update_period = nn_update_period
        self.failed_agents = set(failed_agents or ())
        self.central_failure_round = central_failure_round

    def run(self, instance: DRPInstance) -> PlacementResult:
        sink = ev.current()
        if sink.enabled:
            sink.emit(ev.RunStart(t=ev.now(), algorithm="AGT-RAM(simulated)"))
        with obs.current().span("simulator/run"):
            result = self._run(instance)
        if sink.enabled:
            sink.emit(
                ev.RunEnd(
                    t=ev.now(),
                    algorithm=result.algorithm,
                    otc=result.otc,
                    rounds=result.rounds,
                )
            )
        return result

    def _run(self, instance: DRPInstance) -> PlacementResult:
        timer = Timer()
        tracer = obs.current()
        traced = tracer.enabled
        sink = ev.current()
        eventing = sink.enabled
        series = ev.RoundSeries() if eventing else None
        metrics = RuntimeMetrics(log=MessageLog(keep_messages=self.keep_messages))
        m = instance.n_servers

        agents = []
        for i in range(m):
            if i in self.strategies:
                agents.append(ReplicaAgent(server=i, strategy=self.strategies[i]))
            else:
                agents.append(ReplicaAgent(server=i))

        with timer, ParallelBidEvaluator(self.max_workers) as evaluator:
            state = ReplicationState.primaries_only(instance)
            engine = BenefitEngine(instance, state)
            active = set(range(m)) - self.failed_agents
            acting_central = CENTRAL  # the dedicated body, until it fails
            handover_round: Optional[int] = None

            while active:
                # Self-repair (§7): the central body crashes; every live
                # agent broadcasts an election vote for the lowest live
                # id, which becomes the acting central.  The role is
                # stateless, so the game resumes at the next round.
                if (
                    self.central_failure_round is not None
                    and handover_round is None
                    and metrics.rounds >= self.central_failure_round
                ):
                    new_central = min(active)
                    for voter in sorted(active):
                        for peer in sorted(active):
                            if peer != voter:
                                metrics.log.record(
                                    ElectionMessage(
                                        sender=voter,
                                        receiver=peer,
                                        candidate=new_central,
                                    )
                                )
                    acting_central = new_central
                    handover_round = metrics.rounds
                round_idx = metrics.rounds
                msgs_before = metrics.log.total_messages()
                bytes_before = metrics.log.bytes_total
                if eventing:
                    sink.emit(ev.RoundStart(t=ev.now(), round=round_idx))
                # PARFOR bid sweep (Figure 2 lines 03-09).
                t0 = perf_counter() if traced else 0.0
                ordered = sorted(active)
                live_agents = [agents[i] for i in ordered]
                bids = evaluator.evaluate(live_agents, engine)
                if traced:
                    tracer.add("round/bid_sweep", perf_counter() - t0)

                # Per-agent work this round = |L_i| object evaluations.
                eligible_counts = np.isfinite(engine.matrix[ordered]).sum(axis=1)
                metrics.record_round_work([int(c) for c in eligible_counts])

                bid_msgs = []
                for agent_id, bid in zip(ordered, bids):
                    if bid is None:
                        # Empty L_i: the agent leaves the game (line 18).
                        active.discard(agent_id)
                        continue
                    msg = BidMessage(
                        sender=agent_id, receiver=acting_central, obj=bid.obj, value=bid.value
                    )
                    metrics.log.record(msg)
                    bid_msgs.append(msg)
                    if eventing:
                        sink.emit(
                            ev.BidEvent(
                                t=ev.now(),
                                round=round_idx,
                                agent=agent_id,
                                obj=bid.obj,
                                value=bid.value,
                            )
                        )

                t0 = perf_counter() if traced else 0.0
                outcome = self.central.decide(bid_msgs, m)
                if traced:
                    tracer.add("round/decision", perf_counter() - t0)
                if outcome.decision is Decision.DO_NOT_REPLICATE:
                    if eventing:
                        sink.emit(
                            ev.RoundEnd(
                                t=ev.now(),
                                round=round_idx,
                                committed=0,
                                otc=total_otc(state),
                            )
                        )
                    break
                metrics.rounds += 1
                if eventing:
                    sink.emit(
                        ev.WinnerEvent(
                            t=ev.now(),
                            round=round_idx,
                            agent=outcome.winner,
                            obj=outcome.obj,
                            value=next(
                                b.value
                                for b in bid_msgs
                                if b.sender == outcome.winner
                            ),
                            obj_size=int(instance.sizes[outcome.obj]),
                            residual_before=int(state.residual[outcome.winner]),
                        )
                    )
                    sink.emit(
                        ev.PaymentEvent(
                            t=ev.now(),
                            round=round_idx,
                            agent=outcome.winner,
                            amount=outcome.payment,
                            rule=self.central.payment_rule,
                        )
                    )

                # OMAX broadcast (line 13) + payment (line 14).
                t0 = perf_counter() if traced else 0.0
                for agent_id in sorted(active):
                    metrics.log.record(
                        AllocateMessage(
                            sender=acting_central,
                            receiver=agent_id,
                            winner=outcome.winner,
                            obj=outcome.obj,
                        )
                    )
                metrics.log.record(
                    PaymentMessage(
                        sender=acting_central, receiver=outcome.winner, amount=outcome.payment
                    )
                )

                true_value = float(engine.matrix[outcome.winner, outcome.obj])
                agents[outcome.winner].award(outcome.obj, outcome.payment, true_value)
                if traced:
                    tracer.add("round/broadcast", perf_counter() - t0)
                    t0 = perf_counter()

                state.add_replica(outcome.winner, outcome.obj)
                if self.nn_update_period == 1:
                    # Eager protocol (the paper): broadcast after every
                    # allocation; every agent's view is always fresh.
                    engine.notify_allocation(outcome.winner, outcome.obj)
                    for agent_id in sorted(active):
                        metrics.log.record(
                            NNUpdateMessage(
                                sender=agent_id, receiver=agent_id, obj=outcome.obj
                            )
                        )
                else:
                    # Lazy protocol: only the winner learns immediately
                    # (about its own allocation); everyone else resyncs
                    # on the periodic broadcast.
                    engine.refresh_server(outcome.winner)
                    metrics.log.record(
                        NNUpdateMessage(
                            sender=outcome.winner,
                            receiver=outcome.winner,
                            obj=outcome.obj,
                        )
                    )
                    if metrics.rounds % self.nn_update_period == 0:
                        engine.resync()
                        for agent_id in sorted(active):
                            metrics.log.record(
                                NNUpdateMessage(
                                    sender=agent_id,
                                    receiver=agent_id,
                                    obj=outcome.obj,
                                )
                            )
                if traced:
                    tracer.add("round/nn_update", perf_counter() - t0)
                if eventing:
                    sink.emit(
                        ev.NNUpdateEvent(
                            t=ev.now(),
                            round=round_idx,
                            obj=outcome.obj,
                            agents=len(active) if self.nn_update_period == 1 else 1,
                        )
                    )
                    assert series is not None
                    series.append(
                        otc=total_otc(state),
                        best_bid=next(
                            b.value for b in bid_msgs if b.sender == outcome.winner
                        ),
                        payment=outcome.payment,
                        n_bids=len(bid_msgs),
                        messages=metrics.log.total_messages() - msgs_before,
                        bytes=metrics.log.bytes_total - bytes_before,
                    )
                    sink.emit(
                        ev.RoundEnd(
                            t=ev.now(),
                            round=round_idx,
                            committed=1,
                            otc=series.otc[-1],
                        )
                    )

            if traced:
                tracer.count("rounds", metrics.rounds)
                tracer.count("messages", metrics.log.total_messages())
                tracer.count("bytes", metrics.log.bytes_total)

        payments = np.array([a.payments_received for a in agents])
        utilities = np.array([a.utility for a in agents])
        return PlacementResult(
            algorithm="AGT-RAM(simulated)",
            state=state,
            otc=total_otc(state),
            runtime_s=timer.elapsed,
            rounds=metrics.rounds,
            extra={
                "payments": payments,
                "utilities": utilities,
                "metrics": metrics,
                "agents": agents,
                "acting_central": acting_central,
                "central_handover_round": handover_round,
                **({"round_series": series} if series is not None else {}),
            },
        )
