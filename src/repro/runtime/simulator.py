"""Message-granular simulation of the AGT-RAM protocol.

Drives explicit :class:`~repro.core.agents.ReplicaAgent` objects and a
:class:`~repro.runtime.central.CentralBody` through Figure 2, recording
every message.  Produces byte/round/critical-path accounting the
vectorized engine cannot, and — by construction — the *same final
replication scheme* as :class:`~repro.core.agt_ram.AGTRam` under
truthful agents (a tested equivalence).

Fault injection (:mod:`repro.runtime.faults`) layers realistic failure
modes on top of the faithful protocol: agent crash/recover intervals,
central-body crashes with checkpoint recovery, stragglers, and a lossy
channel that drops/delays/duplicates bid and NN-update traffic.  Under
a *null* :class:`~repro.runtime.faults.FaultPlan` (or ``faults=None``)
the execution — final scheme, rounds, message stream — is identical to
the fault-free protocol (a tested equivalence guard).

Byzantine injection (:mod:`repro.runtime.adversary`) layers *strategic*
misbehaviour on top of both: a seeded :class:`AdversaryPlan` corrupts
bids before they hit the (possibly lossy) channel, and a
:class:`TrustBoundary` — validator, online manipulation detector,
strike-based quarantine — screens everything the central body sees.
The same null-equivalence guarantee holds: a null plan leaves the run
byte-identical to the honest path.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.core.agents import Bid, ReplicaAgent
from repro.core.strategies import Strategy
from repro.drp.cost import total_otc
from repro.drp.delta import make_local_engine, resolve_engine
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError, ConvergenceError
from repro.result import PlacementResult
from repro.runtime.adversary import (
    AdversaryInjector,
    AdversaryPlan,
    QuarantinePolicy,
    TrustBoundary,
)
from repro.runtime.central import CentralBody, Decision
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.messages import (
    AllocateMessage,
    BidMessage,
    ElectionMessage,
    MessageLog,
    NNResyncMessage,
    NNUpdateMessage,
    PaymentMessage,
    StateSyncMessage,
)
from repro.obs import events as ev
from repro.obs import tracer as obs
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.parallel import ParallelBidEvaluator
from repro.utils.timing import Timer, perf_counter

#: The central body's address in the message log.
CENTRAL = -1


class SemiDistributedSimulator:
    """Protocol-faithful AGT-RAM execution.

    Parameters
    ----------
    payment_rule:
        Forwarded to the central body.
    strategies:
        Optional per-agent deviation strategies.
    max_workers:
        Thread-pool width for the PARFOR bid sweep (None = serial).
    keep_messages:
        Retain full message objects in the log (memory-heavy; counts and
        bytes are always kept).
    nn_update_period:
        NN-table broadcast cadence.  1 (the paper's eager protocol)
        broadcasts after every allocation; T > 1 lets agents bid on
        views up to T-1 rounds stale, trading NN-update message volume
        for solution quality (the DESIGN.md §5 ablation).  A winner's
        own row is always fresh — it knows what it hosts.  The periodic
        resync is accounted as one :class:`NNResyncMessage` per agent
        carrying every object allocated since the last broadcast.
    failed_agents:
        Servers whose agent process is down for the whole run; they
        never bid and so never receive replicas, but their primaries
        keep serving (data survives agent failure).  Models the paper's
        robustness concern about per-node failures in a large system.
    central_failure_round:
        If set, the central body crashes at the start of that round.
        The agents self-repair (paper §7): each broadcasts an election
        vote and the lowest-id live agent takes over as acting central.
        The protocol — and the final scheme — are unchanged (the
        central role is stateless); what the failure costs is one
        election round of messages, which the metrics record and the
        event stream reports as an :class:`~repro.obs.events.ElectionEvent`.
    faults:
        A :class:`~repro.runtime.faults.FaultPlan` enabling the full
        fault-injection layer: scheduled agent crash/recover intervals
        and stragglers, scheduled central crashes (election + checkpoint
        recovery + state resync), and a seeded lossy channel over bid
        and NN-update traffic with per-round bid deadlines, retries, and
        quorum-based graceful degradation.  ``None`` (default) disables
        the layer entirely; a null plan is behaviourally identical.
    adversary:
        An :class:`~repro.runtime.adversary.AdversaryPlan` scripting
        Byzantine bid corruption per agent (inflation, infeasible bids,
        garbage fields, equivocation, collusion rings).  Corruption is
        applied *before* the lossy channel, so the two layers compose.
        Supplying a plan (even a null one) also arms the trust boundary
        — validator, online detector, quarantine — in front of the
        central body.  ``None`` (default) disables both; a null plan is
        behaviourally identical to the honest path.
    quarantine:
        The :class:`~repro.runtime.adversary.QuarantinePolicy` the
        trust boundary enforces (strike threshold, probation length,
        expulsion).  Supplying one arms the boundary even without an
        adversary plan; ``None`` uses the defaults when a plan is set.
    engine:
        Local-CoR oracle implementation: ``"naive"`` (default — the
        full-matrix :class:`~repro.drp.benefit.BenefitEngine`),
        ``"vectorized"`` (the delta-maintained
        :class:`~repro.drp.delta.DeltaBenefitEngine`; requires the
        eager protocol, ``nn_update_period=1``) or ``"auto"``.  The
        final scheme, payments and message stream are engine-invariant
        (a tested equivalence).
    """

    def __init__(
        self,
        *,
        payment_rule: str = "second_price",
        strategies: Optional[Mapping[int, Strategy]] = None,
        max_workers: Optional[int] = None,
        keep_messages: bool = False,
        nn_update_period: int = 1,
        failed_agents: Optional[set[int]] = None,
        central_failure_round: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        adversary: Optional[AdversaryPlan] = None,
        quarantine: Optional[QuarantinePolicy] = None,
        engine: str = "naive",
    ):
        if nn_update_period < 1:
            raise ValueError("nn_update_period must be >= 1")
        self.engine = resolve_engine(engine)
        if self.engine == "vectorized" and nn_update_period != 1:
            raise ConfigurationError(
                "engine='vectorized' requires the eager protocol "
                "(nn_update_period=1): the delta engine computes agent "
                "views from the live state and cannot model the lazy "
                "protocol's deliberately stale views"
            )
        if central_failure_round is not None and central_failure_round < 0:
            raise ValueError("central_failure_round must be >= 0")
        self.central = CentralBody(payment_rule)
        self.strategies = dict(strategies) if strategies else {}
        self.max_workers = max_workers
        self.keep_messages = keep_messages
        self.nn_update_period = nn_update_period
        self.failed_agents = set(failed_agents or ())
        self.central_failure_round = central_failure_round
        self.faults = faults
        self.adversary = adversary
        self.quarantine = quarantine

    def run(self, instance: DRPInstance) -> PlacementResult:
        sink = ev.current()
        if sink.enabled:
            sink.emit(ev.RunStart(t=ev.now(), algorithm="AGT-RAM(simulated)"))
        with obs.current().span("simulator/run"):
            result = self._run(instance)
        if sink.enabled:
            sink.emit(
                ev.RunEnd(
                    t=ev.now(),
                    algorithm=result.algorithm,
                    otc=result.otc,
                    rounds=result.rounds,
                )
            )
        return result

    # -- §7 self-repair ----------------------------------------------------

    def _elect(
        self,
        electorate: set[int],
        metrics: RuntimeMetrics,
        sink: ev.EventSink,
        rnd: int,
    ) -> int:
        """Leader election: every live agent broadcasts a vote for the
        lowest live id, which becomes the acting central."""
        new_central = min(electorate)
        for voter in sorted(electorate):
            for peer in sorted(electorate):
                if peer != voter:
                    metrics.log.record(
                        ElectionMessage(
                            sender=voter,
                            receiver=peer,
                            candidate=new_central,
                        )
                    )
        if sink.enabled:
            sink.emit(
                ev.ElectionEvent(
                    t=ev.now(),
                    round=rnd,
                    candidate=new_central,
                    voters=len(electorate),
                )
            )
        return new_central

    def _recover_central(
        self,
        injector: FaultInjector,
        active: set[int],
        down: set[int],
        agents: list[ReplicaAgent],
        metrics: RuntimeMetrics,
        sink: ev.EventSink,
        rnd: int,
    ) -> int:
        """Scheduled central crash: elect a successor, restore the last
        checkpoint, and re-learn the newer commits from the agents'
        state-sync reports.  Returns the new acting central."""
        injector.summary["central_crashes"] += 1
        if sink.enabled:
            sink.emit(
                ev.FaultEvent(
                    t=ev.now(), round=rnd, kind="central_crash", agent=CENTRAL
                )
            )
        electorate = set(active - down) or set(active)
        new_central = self._elect(electorate, metrics, sink, rnd)
        ckpt = injector.checkpoints.restore()
        replayed = injector.checkpoints.lost_since_checkpoint
        for agent_id in sorted(active - down):
            if agent_id == new_central:
                continue  # the acting central knows its own holdings
            injector.send_reliable(
                lambda a=agent_id: StateSyncMessage(
                    sender=a,
                    receiver=new_central,
                    objs=tuple(agents[a].objects_won),
                ),
                rnd=rnd,
                agent=agent_id,
                target="resync",
                log=metrics.log,
            )
        injector.summary["recoveries"] += 1
        if sink.enabled:
            sink.emit(
                ev.RecoveryEvent(
                    t=ev.now(),
                    round=rnd,
                    kind="central",
                    agent=CENTRAL,
                    checkpoint_round=ckpt.round,
                    replayed=replayed,
                    acting_central=new_central,
                )
            )
        return new_central

    # -- the protocol loop -------------------------------------------------

    def _run(self, instance: DRPInstance) -> PlacementResult:
        timer = Timer()
        tracer = obs.current()
        traced = tracer.enabled
        sink = ev.current()
        eventing = sink.enabled
        series = ev.RoundSeries() if eventing else None
        metrics = RuntimeMetrics(log=MessageLog(keep_messages=self.keep_messages))
        m = instance.n_servers
        injector = (
            FaultInjector(self.faults, m) if self.faults is not None else None
        )
        adv = (
            AdversaryInjector(self.adversary, m)
            if self.adversary is not None
            else None
        )
        boundary = (
            TrustBoundary(instance, self.quarantine)
            if (self.adversary is not None or self.quarantine is not None)
            else None
        )

        agents = []
        for i in range(m):
            if i in self.strategies:
                agents.append(ReplicaAgent(server=i, strategy=self.strategies[i]))
            else:
                agents.append(ReplicaAgent(server=i))

        with timer, ParallelBidEvaluator(self.max_workers) as evaluator:
            state = ReplicationState.primaries_only(instance)
            engine = make_local_engine(self.engine, instance, state)
            if eventing:
                # Per-round OTC telemetry (stalls, fruitless rounds, the
                # series, RoundEnd) reads the delta-maintained tracker —
                # O(1) per round instead of the O(M·N) closed-form
                # recompute.  The headline result below still reports the
                # exact total_otc.
                state.begin_otc_tracking()
            active = set(range(m)) - self.failed_agents
            acting_central = CENTRAL  # the dedicated body, until it fails
            handover_round: Optional[int] = None
            pround = 0  # protocol rounds, including stalled ones
            stalled = 0
            prev_down: set[int] = set()
            stale_objs: set[int] = set()  # lazy protocol: unsynced objects

            fruitless = 0  # consecutive no-commit rounds behind the boundary
            if boundary is not None:
                policy = boundary.quarantine.policy
                # Every quarantine is finite and expulsions are permanent,
                # so rejection/probation wait-outs are bounded; this cap
                # only guards against a configuration-level livelock.
                max_fruitless = 200 + policy.probation * policy.max_quarantines
            else:
                max_fruitless = 200

            def stall(otc_now: float) -> None:
                """Close a round without a commit and charge the stall
                budget; raises once the run stops making progress."""
                nonlocal stalled, pround
                assert injector is not None
                stalled += 1
                injector.summary["stalled_rounds"] += 1
                if eventing:
                    sink.emit(
                        ev.RoundEnd(
                            t=ev.now(), round=pround, committed=0, otc=otc_now
                        )
                    )
                pround += 1
                if stalled > injector.quorum.max_stalled_rounds:
                    raise ConvergenceError(
                        f"{stalled} consecutive stalled rounds (quorum misses "
                        f"or blackouts) exceed max_stalled_rounds="
                        f"{injector.quorum.max_stalled_rounds}"
                    )

            def fruitless_round(otc_now: float) -> None:
                """Close a round whose only outcome was rejected or
                quarantined bids; the game must not end on it (the quiet
                view is an artifact of screening, not of convergence)."""
                nonlocal fruitless, pround
                assert boundary is not None
                fruitless += 1
                boundary.rejected_stalls += 1
                if eventing:
                    sink.emit(
                        ev.RoundEnd(
                            t=ev.now(), round=pround, committed=0, otc=otc_now
                        )
                    )
                pround += 1
                if fruitless > max_fruitless:
                    raise ConvergenceError(
                        f"{fruitless} consecutive rounds produced only "
                        f"rejected or quarantined bids (adversary livelock?)"
                    )

            def otc_now() -> float:
                """Round-granular OTC for stall/fruitless telemetry:
                the O(1) tracker when eventing, never read otherwise."""
                return state.tracked_otc() if eventing else 0.0

            while active:
                # Self-repair (§7): the central body crashes; every live
                # agent broadcasts an election vote for the lowest live
                # id, which becomes the acting central.  The role is
                # stateless, so the game resumes at the next round.
                if (
                    self.central_failure_round is not None
                    and handover_round is None
                    and metrics.rounds >= self.central_failure_round
                ):
                    acting_central = self._elect(
                        active, metrics, sink, metrics.rounds
                    )
                    handover_round = metrics.rounds

                round_idx = pround
                down: set[int] = set()
                if injector is not None:
                    # Scheduled agent crash/recover transitions.
                    down = {
                        i
                        for i in active
                        if injector.schedule.agent_down(i, pround)
                    }
                    for i in sorted(down - prev_down):
                        injector.summary["agent_crashes"] += 1
                        if eventing:
                            sink.emit(
                                ev.FaultEvent(
                                    t=ev.now(),
                                    round=pround,
                                    kind="agent_crash",
                                    agent=i,
                                )
                            )
                    for i in sorted((prev_down & active) - down):
                        injector.summary["agent_recoveries"] += 1
                        if eventing:
                            sink.emit(
                                ev.RecoveryEvent(
                                    t=ev.now(),
                                    round=pround,
                                    kind="agent",
                                    agent=i,
                                )
                            )
                    prev_down = down
                    # Scheduled central crash: election + checkpoint
                    # recovery + state resync from the live agents.
                    if injector.schedule.central_crashes_at(pround):
                        acting_central = self._recover_central(
                            injector, active, down, agents, metrics, sink,
                            pround,
                        )

                msgs_before = metrics.log.total_messages()
                bytes_before = metrics.log.bytes_total
                if eventing:
                    sink.emit(ev.RoundStart(t=ev.now(), round=round_idx))

                ordered = sorted(active - down)
                if injector is not None and not ordered:
                    # Total blackout: every live agent is crashed this
                    # round; wait for the schedule to bring one back.
                    stall(otc_now())
                    continue
                if boundary is not None:
                    ordered = boundary.filter_bidders(ordered, pround)
                    if not ordered and (active - down):
                        if boundary.quarantine.quarantined:
                            # Every eligible bidder is quarantined; wait
                            # out the (finite) probation.
                            fruitless_round(otc_now())
                            continue
                        # Only expelled agents could still bid: nobody
                        # will ever commit again, the game is over.
                        break

                # PARFOR bid sweep (Figure 2 lines 03-09).
                t0 = perf_counter() if traced else 0.0
                live_agents = [agents[i] for i in ordered]
                bids = evaluator.evaluate(live_agents, engine)
                if traced:
                    tracer.add("round/bid_sweep", perf_counter() - t0)

                # Per-agent work this round = |L_i| object evaluations.
                eligible_counts = engine.eligible_counts(np.asarray(ordered))
                metrics.record_round_work([int(c) for c in eligible_counts])

                honest: dict[int, Bid] = {}
                for agent_id, bid in zip(ordered, bids):
                    if bid is None:
                        # Empty L_i: the agent leaves the game (line 18).
                        active.discard(agent_id)
                    else:
                        honest[agent_id] = bid
                if adv is not None:
                    # Byzantine corruption happens at the (lying) agent,
                    # before the lossy channel sees the traffic.
                    sends = adv.corrupt_round(round_idx, honest, state, instance)
                else:
                    sends = {a: [(b.obj, b.value)] for a, b in honest.items()}

                bid_msgs: list[BidMessage] = []  # arrived at the central
                missing: list[int] = []  # bids lost to the channel
                n_senders = 0
                for agent_id in sorted(sends):
                    n_senders += 1
                    arrived = False
                    for si, (obj, value) in enumerate(sends[agent_id]):
                        if injector is None:
                            msg = BidMessage(
                                sender=agent_id,
                                receiver=acting_central,
                                obj=obj,
                                value=value,
                                seq=si,
                            )
                            metrics.log.record(msg)
                            bid_msgs.append(msg)
                            arrived = True
                        else:
                            copies = injector.send_bid(
                                rnd=pround,
                                sender=agent_id,
                                receiver=acting_central,
                                obj=obj,
                                value=value,
                                log=metrics.log,
                            )
                            if copies:
                                bid_msgs.extend(copies)
                                arrived = True
                    if not arrived:
                        missing.append(agent_id)
                    if eventing:
                        obj, value = sends[agent_id][0]
                        sink.emit(
                            ev.BidEvent(
                                t=ev.now(),
                                round=round_idx,
                                agent=agent_id,
                                obj=obj,
                                value=value,
                            )
                        )

                if injector is not None and missing:
                    # The bid deadline passed with reports still in
                    # flight: degrade gracefully if a quorum arrived,
                    # stall and retry otherwise.
                    received = n_senders - len(missing)
                    required = injector.quorum.required(n_senders)
                    quorum_met = received >= required
                    injector.summary["timeouts"] += 1
                    if eventing:
                        sink.emit(
                            ev.TimeoutEvent(
                                t=ev.now(),
                                round=round_idx,
                                agents=tuple(missing),
                                expected=n_senders,
                                received=received,
                                quorum_met=quorum_met,
                            )
                        )
                    if not quorum_met or received == 0:
                        stall(otc_now())
                        continue

                t0 = perf_counter() if traced else 0.0
                offended = False
                if boundary is not None:
                    # Validator + online detector + strike accounting in
                    # front of the central body.
                    bid_msgs, offended = boundary.screen(
                        bid_msgs, state, engine, round_idx
                    )
                outcome = self.central.decide(bid_msgs, m, rnd=round_idx)
                offended = offended or bool(outcome.rejected)
                if traced:
                    tracer.add("round/decision", perf_counter() - t0)
                if outcome.decision is Decision.DO_NOT_REPLICATE:
                    if injector is not None and (missing or down):
                        # The quiet view may be an artifact of lost bids
                        # or crashed agents; only a clean round may end
                        # the game.
                        stall(otc_now())
                        continue
                    if boundary is not None and (
                        offended or boundary.quarantine.quarantined
                    ):
                        # Rejected/flagged bids (or bidders sitting out
                        # a finite probation) made the round quiet; only
                        # a clean round may end the game.  Expelled
                        # agents never return, so they don't block
                        # termination.
                        fruitless_round(otc_now())
                        continue
                    if eventing:
                        sink.emit(
                            ev.RoundEnd(
                                t=ev.now(),
                                round=round_idx,
                                committed=0,
                                otc=state.tracked_otc(),
                            )
                        )
                    pround += 1  # the terminal probing round counts too
                    break
                metrics.rounds += 1
                stalled = 0
                fruitless = 0
                if eventing:
                    sink.emit(
                        ev.WinnerEvent(
                            t=ev.now(),
                            round=round_idx,
                            agent=outcome.winner,
                            obj=outcome.obj,
                            value=next(
                                b.value
                                for b in bid_msgs
                                if b.sender == outcome.winner
                            ),
                            obj_size=int(instance.sizes[outcome.obj]),
                            residual_before=int(state.residual[outcome.winner]),
                        )
                    )
                    sink.emit(
                        ev.PaymentEvent(
                            t=ev.now(),
                            round=round_idx,
                            agent=outcome.winner,
                            amount=outcome.payment,
                            rule=self.central.payment_rule,
                        )
                    )

                # OMAX broadcast (line 13) + payment (line 14).
                t0 = perf_counter() if traced else 0.0
                for agent_id in sorted(active):
                    metrics.log.record(
                        AllocateMessage(
                            sender=acting_central,
                            receiver=agent_id,
                            winner=outcome.winner,
                            obj=outcome.obj,
                        )
                    )
                metrics.log.record(
                    PaymentMessage(
                        sender=acting_central,
                        receiver=outcome.winner,
                        amount=outcome.payment,
                    )
                )

                true_value = engine.value_at(outcome.winner, outcome.obj)
                agents[outcome.winner].award(
                    outcome.obj, outcome.payment, true_value
                )
                if traced:
                    tracer.add("round/broadcast", perf_counter() - t0)
                    t0 = perf_counter()

                state.add_replica(outcome.winner, outcome.obj)
                if injector is not None and injector.checkpoints.commit(
                    outcome.winner, outcome.obj, pround
                ):
                    injector.summary["checkpoints"] += 1
                    if eventing:
                        sink.emit(
                            ev.CheckpointEvent(
                                t=ev.now(),
                                round=round_idx,
                                allocations=len(
                                    injector.checkpoints.allocations
                                ),
                            )
                        )
                if self.nn_update_period == 1:
                    # Eager protocol (the paper): broadcast after every
                    # allocation; every agent's view is always fresh.
                    engine.notify_allocation(outcome.winner, outcome.obj)
                    for agent_id in sorted(active):
                        if injector is None:
                            metrics.log.record(
                                NNUpdateMessage(
                                    sender=agent_id,
                                    receiver=agent_id,
                                    obj=outcome.obj,
                                )
                            )
                        else:
                            injector.send_reliable(
                                lambda a=agent_id: NNUpdateMessage(
                                    sender=a, receiver=a, obj=outcome.obj
                                ),
                                rnd=pround,
                                agent=agent_id,
                                target="nn_update",
                                log=metrics.log,
                            )
                else:
                    # Lazy protocol: only the winner learns immediately
                    # (about its own allocation); everyone else resyncs
                    # on the periodic broadcast.
                    engine.refresh_server(outcome.winner)
                    stale_objs.add(outcome.obj)
                    if injector is None:
                        metrics.log.record(
                            NNUpdateMessage(
                                sender=outcome.winner,
                                receiver=outcome.winner,
                                obj=outcome.obj,
                            )
                        )
                    else:
                        injector.send_reliable(
                            lambda: NNUpdateMessage(
                                sender=outcome.winner,
                                receiver=outcome.winner,
                                obj=outcome.obj,
                            ),
                            rnd=pround,
                            agent=outcome.winner,
                            target="nn_update",
                            log=metrics.log,
                        )
                    if metrics.rounds % self.nn_update_period == 0:
                        # Batched refresh: every object allocated since
                        # the last broadcast, for every agent — the
                        # honest per-object accounting of the resync.
                        engine.resync()
                        batch = tuple(sorted(stale_objs))
                        for agent_id in sorted(active):
                            if injector is None:
                                metrics.log.record(
                                    NNResyncMessage(
                                        sender=agent_id,
                                        receiver=agent_id,
                                        objs=batch,
                                    )
                                )
                            else:
                                injector.send_reliable(
                                    lambda a=agent_id: NNResyncMessage(
                                        sender=a, receiver=a, objs=batch
                                    ),
                                    rnd=pround,
                                    agent=agent_id,
                                    target="resync",
                                    log=metrics.log,
                                )
                        stale_objs.clear()
                if traced:
                    tracer.add("round/nn_update", perf_counter() - t0)
                if eventing:
                    sink.emit(
                        ev.NNUpdateEvent(
                            t=ev.now(),
                            round=round_idx,
                            obj=outcome.obj,
                            agents=len(active)
                            if self.nn_update_period == 1
                            else 1,
                        )
                    )
                    assert series is not None
                    series.append(
                        otc=state.tracked_otc(),
                        best_bid=next(
                            b.value for b in bid_msgs if b.sender == outcome.winner
                        ),
                        payment=outcome.payment,
                        n_bids=len({b.sender for b in bid_msgs}),
                        messages=metrics.log.total_messages() - msgs_before,
                        bytes=metrics.log.bytes_total - bytes_before,
                    )
                    sink.emit(
                        ev.RoundEnd(
                            t=ev.now(),
                            round=round_idx,
                            committed=1,
                            otc=series.otc[-1],
                        )
                    )
                pround += 1

            if traced:
                tracer.count("rounds", metrics.rounds)
                tracer.count("messages", metrics.log.total_messages())
                tracer.count("bytes", metrics.log.bytes_total)

        payments = np.array([a.payments_received for a in agents])
        utilities = np.array([a.utility for a in agents])
        return PlacementResult(
            algorithm="AGT-RAM(simulated)",
            state=state,
            otc=total_otc(state),
            runtime_s=timer.elapsed,
            rounds=metrics.rounds,
            extra={
                "payments": payments,
                "utilities": utilities,
                "engine": self.engine,
                "metrics": metrics,
                "agents": agents,
                "acting_central": acting_central,
                "central_handover_round": handover_round,
                "protocol_rounds": pround,
                **(
                    {"fault_summary": injector.summary_dict()}
                    if injector is not None
                    else {}
                ),
                **(
                    {"adversary_summary": adv.summary_dict()}
                    if adv is not None
                    else {}
                ),
                **(
                    {"trust_summary": boundary.summary_dict()}
                    if boundary is not None
                    else {}
                ),
                **({"round_series": series} if series is not None else {}),
            },
        )
