"""repro.serving — the resilient online serving layer.

The mechanism places replicas; this package *serves* from them.  A
seeded, byte-reproducible request loop streams workload traffic
against an AGT-RAM placement and keeps answering under injected
failure:

* :mod:`repro.serving.router` — nearest-replica routing with failover
  ordering over the placement's NN structure,
* :mod:`repro.serving.policies` — backoff, admission control, hedge
  quantiles, EWMA replica health,
* :mod:`repro.serving.drift` — total-variation drift detection over
  the served object mix,
* :mod:`repro.serving.streams` — workload adapters (WC'98 trace,
  drifting popularity, flash crowds),
* :mod:`repro.serving.loop` — the serving loop tying it together,
  including the drift-triggered incremental re-auction
  (:mod:`repro.core.reauction`).

``python -m repro serve`` is the CLI wrapper with SLO gates.
"""

from repro.serving.policies import (
    BackoffPolicy,
    EwmaHealth,
    QuantileTracker,
    TokenBucket,
)
from repro.serving.router import RequestRouter
from repro.serving.drift import DriftDetector
from repro.serving.streams import (
    SERVE_WORKLOADS,
    ServeRequest,
    ServingTraffic,
    epoch_stream,
    make_stream,
    make_traffic,
    with_demand,
    worldcup_stream,
)
from repro.serving.loop import ServeConfig, ServeReport, serve

__all__ = [
    "BackoffPolicy",
    "TokenBucket",
    "QuantileTracker",
    "EwmaHealth",
    "RequestRouter",
    "DriftDetector",
    "ServeRequest",
    "ServingTraffic",
    "worldcup_stream",
    "epoch_stream",
    "make_traffic",
    "make_stream",
    "with_demand",
    "SERVE_WORKLOADS",
    "ServeConfig",
    "ServeReport",
    "serve",
]
