"""Online drift detection over the served request mix.

The placement was auctioned for one demand profile; when the live
request mix wanders away from it, serving cost quietly decays.  The
detector keeps per-object request counts over a sliding window and
compares the window's empirical object-popularity distribution against
the *reference* distribution (the demand the current placement was
optimized for) by total-variation distance.  Crossing the threshold
names the objects contributing the most mass shift — the candidate set
for an incremental re-auction (:mod:`repro.core.reauction`) — after
which the reference is rebased to the observed window.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DriftDetector"]


class DriftDetector:
    """Sliding-window total-variation drift detector.

    Parameters
    ----------
    reference:
        (N,) non-negative weights of the demand profile the current
        placement was built for (e.g. ``instance.reads.sum(axis=0)``).
    window:
        Number of requests per detection window.
    threshold:
        Total-variation distance (in [0, 1]) above which drift fires.
    top_k:
        How many objects the detector names when it fires — the
        largest contributors to ``|observed - reference|``.
    """

    def __init__(
        self,
        reference: np.ndarray,
        *,
        window: int = 2000,
        threshold: float = 0.25,
        top_k: int = 8,
    ):
        reference = np.asarray(reference, dtype=np.float64)
        if reference.ndim != 1 or len(reference) == 0:
            raise ConfigurationError("reference must be a non-empty 1-D array")
        if reference.sum() <= 0:
            raise ConfigurationError("reference must have positive mass")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if not (0.0 < threshold <= 1.0):
            raise ConfigurationError("threshold must be in (0, 1]")
        if top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        self.reference = reference / reference.sum()
        self.window = window
        self.threshold = threshold
        self.top_k = top_k
        self.counts = np.zeros(len(reference), dtype=np.int64)
        self.seen = 0

    def observe(self, obj: int) -> bool:
        """Count one request; True when a full window shows drift.

        The window resets after every check (drifted or not), so each
        verdict covers a disjoint span of requests.
        """
        self.counts[obj] += 1
        self.seen += 1
        if self.seen < self.window:
            return False
        drifted = self.distance() > self.threshold
        if not drifted:
            self._reset()
        return drifted

    def distance(self) -> float:
        """Total-variation distance of the current window vs reference."""
        if self.seen == 0:
            return 0.0
        observed = self.counts / self.counts.sum()
        return float(0.5 * np.abs(observed - self.reference).sum())

    def drifted_objects(self) -> list[int]:
        """The ``top_k`` objects carrying the largest mass shift."""
        if self.seen == 0:
            return []
        observed = self.counts / self.counts.sum()
        shift = np.abs(observed - self.reference)
        k = min(self.top_k, int((shift > 0).sum()))
        if k == 0:
            return []
        top = np.argpartition(shift, -k)[-k:]
        return sorted(int(o) for o in top)

    def rebase(self) -> None:
        """Adopt the observed window as the new reference.

        Call after committing a re-auction for the drifted objects: the
        placement now reflects the observed demand, so the detector
        should measure future drift against it.
        """
        if self.seen > 0 and self.counts.sum() > 0:
            self.reference = self.counts / self.counts.sum()
        self._reset()

    def _reset(self) -> None:
        self.counts[:] = 0
        self.seen = 0
