"""The request-level serving loop — the online half of the mechanism.

Streams workload traffic against an AGT-RAM placement and keeps
serving when replicas fail:

* each request routes to the nearest live replica (reads) or the
  primary (writes) via :class:`~repro.serving.router.RequestRouter`;
* a crashed or overloaded attempt times out and **fails over** to the
  next-nearest replica with capped exponential backoff
  (:class:`~repro.serving.policies.BackoffPolicy`);
* slow reads are **hedged** to a second replica once the first attempt
  outlives a trailing latency quantile;
* a token bucket **sheds** traffic the system cannot admit;
* per-replica EWMA health routes around servers that keep failing
  before wasting attempts on them;
* a drift detector watches the served object mix and, when it moves
  beyond tolerance, triggers an **incremental re-auction**
  (:func:`repro.core.reauction.reauction_objects`) for the drifted
  objects while the loop keeps serving the stale placement; the new
  placement is swapped in atomically between requests.

Everything is deterministic: all randomness derives from the campaign
seed via :func:`repro.utils.rng.substream`, "latency" is a seeded
function of link cost, and under
:func:`repro.obs.events.logical_time` the emitted event log is
byte-for-byte reproducible.  Failures come from the same
:class:`~repro.runtime.faults.FaultSchedule` vocabulary as the chaos
protocol campaigns — request ticks map onto fault rounds through
``requests_per_round``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

from repro.core.reauction import reauction_objects
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.obs import events as ev
from repro.runtime.faults import FaultSchedule
from repro.serving.drift import DriftDetector
from repro.serving.policies import (
    BackoffPolicy,
    EwmaHealth,
    QuantileTracker,
    TokenBucket,
)
from repro.serving.router import RequestRouter
from repro.serving.streams import ServeRequest
from repro.utils.rng import SeedLike, substream

__all__ = ["ServeConfig", "ServeReport", "serve"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving loop; defaults suit the smoke campaigns."""

    #: Attempt deadline, in the same units as the latency model.  None
    #: auto-calibrates to the instance's cost diameter (every healthy
    #: origin→replica attempt comfortably fits the deadline).
    timeout: Optional[float] = None
    #: Attempts per request before it is declared failed.
    max_attempts: int = 3
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    #: Hedge reads whose first attempt outlives this trailing quantile.
    hedge_quantile: float = 0.95
    hedge_enabled: bool = True
    #: Token-bucket admission: tokens per request tick / bucket depth.
    rate: float = 1.0
    burst: float = 50.0
    health_alpha: float = 0.3
    health_threshold: float = 0.5
    #: latency = latency_scale * cost(origin, replica) + Exp(latency_noise).
    latency_scale: float = 1.0
    latency_noise: float = 1.0
    #: Latency multiplier while the serving replica is a straggler.
    straggler_factor: float = 10.0
    #: Request ticks per fault-schedule round.
    requests_per_round: int = 500
    drift_window: int = 2000
    drift_threshold: float = 0.25
    drift_top_k: int = 8
    #: Re-auction budget; 0 disables drift-triggered re-auctions.
    max_reauctions: int = 4

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError("timeout must be > 0")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.requests_per_round < 1:
            raise ConfigurationError("requests_per_round must be >= 1")
        if self.latency_scale < 0 or self.latency_noise < 0:
            raise ConfigurationError("latency model must be non-negative")
        if self.straggler_factor < 1.0:
            raise ConfigurationError("straggler_factor must be >= 1")
        if self.max_reauctions < 0:
            raise ConfigurationError("max_reauctions must be >= 0")


@dataclass
class ServeReport:
    """Outcome of one serving campaign (wall-clock free, deterministic)."""

    workload: str
    n_requests: int
    admitted: int = 0
    served: int = 0
    failed: int = 0
    shed: int = 0
    hedges: int = 0
    failovers: int = 0
    timeouts: int = 0
    reauctions: int = 0
    p50: float = 0.0
    p99: float = 0.0
    mean_latency: float = 0.0
    reauction_log: list[dict[str, Any]] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Fraction of *admitted* requests served; sheds are reported
        separately (declining work is not the same as botching it)."""
        return self.served / self.admitted if self.admitted else 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "n_requests": self.n_requests,
            "admitted": self.admitted,
            "served": self.served,
            "failed": self.failed,
            "shed": self.shed,
            "hedges": self.hedges,
            "failovers": self.failovers,
            "timeouts": self.timeouts,
            "reauctions": self.reauctions,
            "availability": self.availability,
            "p50": self.p50,
            "p99": self.p99,
            "mean_latency": self.mean_latency,
            "reauction_log": list(self.reauction_log),
        }


def _replica_pairs(state: ReplicationState) -> tuple[tuple[int, int], ...]:
    """Non-primary (server, object) replica pairs of ``state``."""
    primaries = state.instance.primaries
    servers, objs = np.nonzero(state.x)
    return tuple(
        (int(s), int(k))
        for s, k in zip(servers, objs)
        if primaries[k] != s
    )


def serve(
    instance: DRPInstance,
    state: ReplicationState,
    stream: Iterable[ServeRequest],
    *,
    config: Optional[ServeConfig] = None,
    faults: Optional[FaultSchedule] = None,
    seed: SeedLike = 0,
    workload: str = "custom",
    n_requests: Optional[int] = None,
) -> ServeReport:
    """Serve ``stream`` against ``state``; returns the campaign report.

    ``faults`` is interpreted over *serving rounds* (tick //
    ``requests_per_round``): a crashed server answers nothing for the
    outage, a straggler answers ``straggler_factor`` slower.  ``state``
    is not mutated; re-auctions swap fresh states into the router.
    Event emission follows the repro.obs discipline — nothing is
    recorded unless a sink is installed.
    """
    cfg = config or ServeConfig()
    plan = faults or FaultSchedule.null()
    router = RequestRouter(instance, state.copy())
    bucket = TokenBucket(cfg.rate, cfg.burst)
    health = EwmaHealth(
        instance.n_servers,
        alpha=cfg.health_alpha,
        threshold=cfg.health_threshold,
    )
    quantiles = QuantileTracker(cfg.hedge_quantile)
    detector: Optional[DriftDetector] = None
    demand_ref = instance.reads.sum(axis=0) + instance.writes.sum(axis=0)
    if cfg.max_reauctions > 0 and demand_ref.sum() > 0:
        detector = DriftDetector(
            demand_ref,
            window=cfg.drift_window,
            threshold=cfg.drift_threshold,
            top_k=cfg.drift_top_k,
        )
    lat_rng = substream(seed, "serving/latency")
    backoff_rng = substream(seed, "serving/backoff")
    # Auto-calibrated deadline: cover the worst origin→replica link
    # plus an 8-mean-deviations noise allowance, so only genuinely
    # failed/straggling attempts time out.
    timeout = (
        cfg.timeout
        if cfg.timeout is not None
        else max(
            1.0,
            cfg.latency_scale * float(instance.cost.max())
            + 8.0 * cfg.latency_noise,
        )
    )

    report = ServeReport(
        workload=workload,
        n_requests=0 if n_requests is None else int(n_requests),
    )
    # Observed demand since the last re-auction, the override matrices
    # a drift-triggered sub-auction optimizes for.
    obs_reads = np.zeros_like(instance.reads)
    obs_writes = np.zeros_like(instance.writes)
    latencies: list[float] = []

    sink = ev.current()
    if sink.enabled:
        sink.emit(
            ev.ServeStart(
                t=ev.now(),
                workload=workload,
                n_requests=report.n_requests,
                n_servers=instance.n_servers,
                n_objects=instance.n_objects,
                primaries=tuple(int(p) for p in instance.primaries),
                replicas=_replica_pairs(router.state),
            )
        )

    def attempt_latency(origin: int, target: int, rnd: int) -> float:
        lat = cfg.latency_scale * float(
            instance.cost[origin, target]
        ) + float(lat_rng.exponential(cfg.latency_noise))
        if plan.is_straggler(rnd, target):
            lat *= cfg.straggler_factor
        return lat

    for tick, req in enumerate(stream):
        rnd = tick // cfg.requests_per_round
        if not bucket.admit():
            report.shed += 1
            if sink.enabled:
                sink.emit(
                    ev.ShedEvent(
                        t=ev.now(),
                        tick=tick,
                        client=req.client,
                        obj=req.obj,
                        kind=req.kind,
                        tokens=bucket.tokens,
                    )
                )
            continue
        report.admitted += 1
        if req.kind == "read":
            obs_reads[req.server, req.obj] += 1
        else:
            obs_writes[req.server, req.obj] += 1

        if req.kind == "write":
            # Writes target the primary; when it is down, the
            # next-nearest live replica accepts the update as a hinted
            # hand-off (it hosts the object, so the write lands on a
            # legitimate copy and is forwarded once the primary heals).
            primary = router.write_target(req.obj)
            others = router.read_candidates(
                req.server, req.obj, exclude=(primary,)
            )
            candidates = [primary] + others
        else:
            ordered = router.read_candidates(req.server, req.obj)
            healthy = [s for s in ordered if health.healthy(s)]
            sick = [s for s in ordered if not health.healthy(s)]
            if healthy and sick and sick[0] == ordered[0]:
                # The nearest replica is marked down: route around it
                # without spending an attempt.
                report.failovers += 1
                if sink.enabled:
                    sink.emit(
                        ev.FailoverEvent(
                            t=ev.now(),
                            tick=tick,
                            obj=req.obj,
                            from_server=sick[0],
                            to_server=healthy[0],
                            reason="unhealthy",
                        )
                    )
            candidates = healthy + sick

        # A request may retry a server it already tried (cycling) when
        # it has fewer distinct candidates than the attempt budget.
        plan_targets = [
            candidates[a % len(candidates)]
            for a in range(cfg.max_attempts)
        ] if candidates else []

        total_latency = 0.0
        replica = -1
        attempts = 0
        hedged = False
        for pos, target in enumerate(plan_targets):
            attempts += 1
            crashed = plan.agent_down(target, rnd)
            lat = (
                float("inf")
                if crashed
                else attempt_latency(req.server, target, rnd)
            )
            if lat > timeout:
                report.timeouts += 1
                health.record(target, False)
                total_latency += timeout
                if sink.enabled:
                    sink.emit(
                        ev.RequestTimeout(
                            t=ev.now(),
                            tick=tick,
                            obj=req.obj,
                            replica=target,
                            attempt=attempts,
                            deadline=timeout,
                        )
                    )
                if pos + 1 < len(plan_targets):
                    total_latency += cfg.backoff.delay(attempts, backoff_rng)
                    report.failovers += 1
                    if sink.enabled:
                        sink.emit(
                            ev.FailoverEvent(
                                t=ev.now(),
                                tick=tick,
                                obj=req.obj,
                                from_server=target,
                                to_server=plan_targets[pos + 1],
                                reason="timeout",
                            )
                        )
                continue
            # Attempt succeeded.  Hedge slow reads to the next-nearest
            # replica: the duplicate is issued once the first attempt
            # outlives the trailing quantile, and whichever answer
            # lands first wins.
            threshold = quantiles.quantile()
            final = lat
            winner = target
            if (
                cfg.hedge_enabled
                and req.kind == "read"
                and lat > threshold
            ):
                backups = [
                    s
                    for s in candidates
                    if s != target and not plan.agent_down(s, rnd)
                ]
                if backups:
                    backup = backups[0]
                    lat2 = threshold + attempt_latency(
                        req.server, backup, rnd
                    )
                    report.hedges += 1
                    hedged = True
                    if lat2 < final:
                        final = lat2
                        winner = backup
                    if sink.enabled:
                        sink.emit(
                            ev.HedgeEvent(
                                t=ev.now(),
                                tick=tick,
                                obj=req.obj,
                                primary=target,
                                backup=backup,
                                winner=winner,
                                threshold=threshold,
                            )
                        )
            total_latency += final
            replica = winner
            health.record(winner, True)
            quantiles.observe(final)
            break

        ok = replica >= 0
        if ok:
            report.served += 1
            latencies.append(total_latency)
        else:
            report.failed += 1
        if sink.enabled:
            sink.emit(
                ev.RequestEvent(
                    t=ev.now(),
                    tick=tick,
                    client=req.client,
                    server=req.server,
                    obj=req.obj,
                    kind=req.kind,
                    replica=replica,
                    latency=total_latency,
                    attempts=attempts,
                    hedged=hedged,
                    outcome="ok" if ok else "failed",
                )
            )

        # Drift check after serving: the router keeps answering from
        # the stale placement until the re-auction commits.
        if detector is not None and detector.observe(req.obj):
            objects = detector.drifted_objects()
            scale = float(demand_ref.sum()) / max(
                1.0, float(obs_reads.sum() + obs_writes.sum())
            )
            outcome = reauction_objects(
                instance,
                router.state,
                objects,
                reads=obs_reads * scale,
                writes=obs_writes * scale,
            )
            router.swap_state(outcome.state)
            report.reauctions += 1
            report.reauction_log.append(
                {
                    "tick": tick,
                    "objects": list(outcome.objects),
                    "added": len(outcome.added),
                    "removed": len(outcome.removed),
                    "otc_before": outcome.otc_before,
                    "otc_after": outcome.otc_after,
                    "rounds": outcome.rounds,
                }
            )
            if sink.enabled:
                sink.emit(
                    ev.ReauctionEvent(
                        t=ev.now(),
                        tick=tick,
                        trigger="drift",
                        objects=outcome.objects,
                        added=outcome.added,
                        removed=outcome.removed,
                        otc_before=outcome.otc_before,
                        otc_after=outcome.otc_after,
                        rounds=outcome.rounds,
                    )
                )
            detector.rebase()
            obs_reads[:] = 0.0
            obs_writes[:] = 0.0
            if report.reauctions >= cfg.max_reauctions:
                detector = None

    if report.n_requests == 0:
        report.n_requests = report.admitted + report.shed
    if latencies:
        arr = np.asarray(latencies)
        report.p50 = float(np.percentile(arr, 50))
        report.p99 = float(np.percentile(arr, 99))
        report.mean_latency = float(arr.mean())
    if sink.enabled:
        sink.emit(
            ev.ServeEnd(
                t=ev.now(),
                served=report.served,
                shed=report.shed,
                failed=report.failed,
                hedges=report.hedges,
                failovers=report.failovers,
                reauctions=report.reauctions,
                availability=report.availability,
                p50=report.p50,
                p99=report.p99,
            )
        )
    return report
