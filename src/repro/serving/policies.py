"""Data-path policies of the serving loop.

Four small, fully deterministic building blocks:

* :class:`BackoffPolicy` — capped exponential retry delays with
  seeded jitter (the delay is a pure function of (attempt, rng draw)).
* :class:`TokenBucket` — request-tick admission control; the bucket
  refills ``rate`` tokens per tick, so ``rate >= 1`` never sheds and
  the shed pattern for any ``rate`` is reproducible.
* :class:`QuantileTracker` — a trailing-window latency quantile; the
  serving loop hedges reads whose first attempt is slower than it.
* :class:`EwmaHealth` — per-replica exponentially-weighted success
  score; replicas scoring below the threshold are routed around
  before any attempt is wasted on them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BackoffPolicy", "TokenBucket", "QuantileTracker", "EwmaHealth"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    The delay before retry ``attempt`` (1-based) is
    ``min(cap, base * factor**(attempt-1))``, jittered uniformly into
    ``[delay * (1 - jitter), delay]`` using the caller's generator —
    so two runs with the same seed back off identically.
    """

    base: float = 1.0
    factor: float = 2.0
    cap: float = 8.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base < 0 or self.cap < 0:
            raise ConfigurationError("base and cap must be >= 0")
        if self.factor < 1.0:
            raise ConfigurationError("factor must be >= 1")
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigurationError("jitter must be in [0, 1]")

    def raw_delay(self, attempt: int) -> float:
        """The un-jittered delay for 1-based retry ``attempt``."""
        if attempt < 1:
            raise ConfigurationError("attempt is 1-based")
        return float(min(self.cap, self.base * self.factor ** (attempt - 1)))

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """The jittered delay; always in ``[0, cap]``."""
        raw = self.raw_delay(attempt)
        if self.jitter == 0.0:
            return raw
        lo = raw * (1.0 - self.jitter)
        return float(lo + rng.random() * (raw - lo))


class TokenBucket:
    """Admission control over the request-tick clock.

    The bucket holds up to ``burst`` tokens, gains ``rate`` per tick
    (i.e. per :meth:`admit` call), and each admitted request costs one.
    Deterministic: the admit/shed pattern is a pure function of
    (rate, burst, call sequence).
    """

    def __init__(self, rate: float = 1.0, burst: float = 10.0):
        if rate < 0 or burst < 1.0:
            raise ConfigurationError("need rate >= 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)

    def admit(self) -> bool:
        """Advance one tick; True iff the request may proceed."""
        self.tokens = min(self.burst, self.tokens + self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class QuantileTracker:
    """Trailing-window latency quantile, recomputed lazily.

    Keeps the last ``window`` observations in a ring buffer; the
    quantile is recomputed at most every ``refresh`` observations (the
    cached value is served in between), keeping per-request cost O(1)
    amortized.  Until ``min_samples`` observations arrive the quantile
    reports ``inf`` — the hedger stays off while it has no signal.
    """

    def __init__(
        self,
        q: float = 0.95,
        *,
        window: int = 512,
        min_samples: int = 32,
        refresh: int = 64,
    ):
        if not (0.0 < q < 1.0):
            raise ConfigurationError("q must be in (0, 1)")
        if window < 1 or min_samples < 1 or refresh < 1:
            raise ConfigurationError("window/min_samples/refresh must be >= 1")
        self.q = q
        self.window = window
        self.min_samples = min_samples
        self.refresh = refresh
        self._buf = np.zeros(window, dtype=np.float64)
        self._n = 0
        self._cached = float("inf")
        self._since_refresh = 0

    def observe(self, latency: float) -> None:
        self._buf[self._n % self.window] = latency
        self._n += 1
        self._since_refresh += 1

    def quantile(self) -> float:
        """The tracked quantile; ``inf`` until warmed up."""
        if self._n < self.min_samples:
            return float("inf")
        if self._since_refresh >= self.refresh or self._cached == float("inf"):
            filled = self._buf[: min(self._n, self.window)]
            self._cached = float(np.quantile(filled, self.q))
            self._since_refresh = 0
        return self._cached


class EwmaHealth:
    """Per-server EWMA success score; starts healthy at 1.0.

    Each outcome moves the score toward 1 (success) or 0 (failure) by
    factor ``alpha``; a server whose score drops below ``threshold``
    is reported unhealthy until successes pull it back up.
    """

    def __init__(
        self, n_servers: int, *, alpha: float = 0.3, threshold: float = 0.5
    ):
        if n_servers < 1:
            raise ConfigurationError("need n_servers >= 1")
        if not (0.0 < alpha <= 1.0):
            raise ConfigurationError("alpha must be in (0, 1]")
        if not (0.0 <= threshold <= 1.0):
            raise ConfigurationError("threshold must be in [0, 1]")
        self.alpha = alpha
        self.threshold = threshold
        self.score = np.ones(n_servers, dtype=np.float64)

    def record(self, server: int, ok: bool) -> None:
        s = self.score[server]
        self.score[server] = (1.0 - self.alpha) * s + self.alpha * (
            1.0 if ok else 0.0
        )

    def healthy(self, server: int) -> bool:
        return bool(self.score[server] >= self.threshold)
