"""Request routing over the placement's NN structure.

The router answers one question per request: *which server should this
origin read ``obj`` from (or write it to) right now?*  Reads prefer the
nearest replica by link cost — the same metric the mechanism's NN
tables encode — and fall back outward through the remaining replicas,
ending at the primary (which, per the paper, can never drop its copy).
Writes always target the primary, matching the cost model's
ship-to-primary-then-broadcast semantics (Eq. 2).

The placement is swappable: a drift-triggered re-auction builds a new
:class:`~repro.drp.state.ReplicationState` off to the side and
:meth:`RequestRouter.swap_state` installs it atomically between
requests, so the router serves the stale placement while the
re-auction runs.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState

__all__ = ["RequestRouter"]


class RequestRouter:
    """Nearest-replica-first routing with failover ordering."""

    def __init__(self, instance: DRPInstance, state: ReplicationState):
        self.instance = instance
        self.state = state

    def swap_state(self, state: ReplicationState) -> ReplicationState:
        """Install a new placement; returns the one it replaced."""
        previous = self.state
        self.state = state
        return previous

    def read_candidates(
        self, origin: int, obj: int, *, exclude: Iterable[int] = ()
    ) -> list[int]:
        """Replica servers for a read, nearest first, primary included.

        Ordered by link cost from ``origin`` (ties break to the lower
        server id, keeping the order deterministic); ``exclude`` drops
        servers the caller already knows are unusable (crashed,
        unhealthy, or already tried).
        """
        reps = self.state.replica_set(obj)
        dropped = set(int(s) for s in exclude)
        if dropped:
            reps = np.array(
                [s for s in reps if int(s) not in dropped], dtype=np.int64
            )
        if len(reps) == 0:
            return []
        costs = self.instance.cost[origin, reps]
        order = np.lexsort((reps, costs))
        return [int(s) for s in reps[order]]

    def write_target(self, obj: int) -> int:
        """Writes go to the primary (the cost model's update path)."""
        return int(self.instance.primaries[obj])

    def route_read(
        self, origin: int, obj: int, *, exclude: Iterable[int] = ()
    ) -> int:
        """Best read target, or ``-1`` when every replica is excluded."""
        candidates = self.read_candidates(origin, obj, exclude=exclude)
        return candidates[0] if candidates else -1
