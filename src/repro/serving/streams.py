"""Workload adapters: turn workload generators into serving traffic.

The serving loop consumes a flat iterator of :class:`ServeRequest`
records — (client, origin server, object, read/write) — so every
workload family plugs in through one of the adapters here:

* :func:`worldcup_stream` — the WC'98-style synthetic trace, streamed
  chunk-by-chunk (:meth:`~repro.workload.worldcup.WorldCupLogGenerator.iter_requests`)
  with clients mapped onto servers by the paper's 1-M random mapping.
  Stationary: the drift detector should stay quiet.
* :func:`epoch_stream` — samples requests from a sequence of
  :class:`~repro.workload.drift.WorkloadEpoch` read/write matrices
  (drifting popularity or flash crowds), so the served mix *changes*
  mid-campaign and exercises the re-auction path.

Every random draw derives from the campaign seed through
:func:`repro.utils.rng.substream`, so arming one adapter never
perturbs another subsystem's stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.drp.instance import DRPInstance
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, substream
from repro.workload.clients import map_clients_to_servers
from repro.workload.drift import WorkloadEpoch, drifting_workloads
from repro.workload.flashcrowd import flash_crowd_workloads
from repro.workload.worldcup import WorldCupLogGenerator

__all__ = [
    "ServeRequest",
    "ServingTraffic",
    "worldcup_stream",
    "epoch_stream",
    "make_traffic",
    "make_stream",
    "with_demand",
    "SERVE_WORKLOADS",
]


@dataclass(frozen=True)
class ServeRequest:
    """One unit of serving traffic, already anchored to an origin server."""

    client: int
    server: int
    obj: int
    kind: str  # "read" | "write"


def worldcup_stream(
    n_requests: int,
    *,
    n_servers: int,
    n_objects: int,
    seed: SeedLike = 0,
    n_clients: int = 100,
    write_fraction: float = 0.05,
    chunk_size: int = 65_536,
) -> Iterator[ServeRequest]:
    """Stream WC'98-style traffic mapped onto ``n_servers`` origins."""
    if n_requests < 0:
        raise ConfigurationError("n_requests must be >= 0")
    gen = WorldCupLogGenerator(
        n_objects=n_objects,
        n_clients=n_clients,
        write_fraction=write_fraction,
        seed=substream(seed, "serving/worldcup"),
    )
    mapping = map_clients_to_servers(
        n_clients, n_servers, seed=substream(seed, "serving/client-map")
    )
    for req in gen.iter_requests(n_requests, chunk_size=chunk_size):
        yield ServeRequest(
            client=req.client,
            server=int(mapping[req.client]),
            obj=req.obj,
            kind=req.kind,
        )


def epoch_stream(
    epochs: Sequence[WorkloadEpoch],
    n_requests: int,
    *,
    seed: SeedLike = 0,
    chunk_size: int = 8_192,
) -> Iterator[ServeRequest]:
    """Sample serving traffic from each epoch's demand matrices in turn.

    ``n_requests`` is split as evenly as possible across the epochs;
    within an epoch, each request draws a (server, object, kind) cell
    with probability proportional to the epoch's read/write weight for
    it.  The origin server doubles as the client id.
    """
    if not epochs:
        raise ConfigurationError("need at least one epoch")
    if n_requests < 0:
        raise ConfigurationError("n_requests must be >= 0")
    rng = substream(seed, "serving/epoch-stream")
    per = n_requests // len(epochs)
    extra = n_requests - per * len(epochs)
    for e, epoch in enumerate(epochs):
        quota = per + (1 if e < extra else 0)
        w = epoch.workload
        m, n = w.reads.shape
        combined = np.concatenate([w.reads.ravel(), w.writes.ravel()])
        total = combined.sum()
        if total <= 0:
            raise ConfigurationError(f"epoch {epoch.index} has no demand")
        p = combined / total
        emitted = 0
        while emitted < quota:
            batch = min(chunk_size, quota - emitted)
            idx = rng.choice(len(combined), size=batch, p=p)
            for flat in idx:
                is_write = flat >= m * n
                cell = int(flat) % (m * n)
                server, obj = divmod(cell, n)
                yield ServeRequest(
                    client=server,
                    server=server,
                    obj=obj,
                    kind="write" if is_write else "read",
                )
            emitted += batch


#: Workload families ``python -m repro serve --workload`` accepts.
SERVE_WORKLOADS = ("worldcup", "drift", "flashcrowd")


@dataclass
class ServingTraffic:
    """A serving stream plus the demand profile its *opening* traffic
    follows.

    ``reads`` / ``writes`` are the (M, N) matrices the placement should
    be auctioned for: the exact epoch-0 demand for epoch workloads, a
    sampled estimate for the WC'98 stream.  A placement built for a
    demand profile unrelated to the traffic it serves fails over
    constantly — auctioning against this profile is what makes the
    serving SLOs meaningful (and makes later epochs register as
    *drift* rather than noise)."""

    workload: str
    stream: Iterator[ServeRequest]
    reads: np.ndarray
    writes: np.ndarray


def with_demand(
    instance: DRPInstance, traffic: ServingTraffic
) -> DRPInstance:
    """``instance`` with its demand matrices replaced by the traffic's.

    Topology, sizes, capacities, and primaries stay; only reads/writes
    change — the instance to auction before serving ``traffic``.
    """
    from dataclasses import replace

    return replace(
        instance,
        reads=traffic.reads,
        writes=traffic.writes,
        name=f"{instance.name}/{traffic.workload}",
    )


def make_traffic(
    workload: str,
    instance: DRPInstance,
    n_requests: int,
    *,
    seed: SeedLike = 0,
    n_epochs: int = 4,
    calibration: int = 20_000,
) -> ServingTraffic:
    """Build the named workload's serving traffic over ``instance``.

    ``drift`` / ``flashcrowd`` generate ``n_epochs`` epochs whose
    demand moves mid-campaign — the traffic the drift detector and
    re-auction are there for; ``worldcup`` is stationary.  For the
    WC'98 stream the demand profile is estimated by aggregating the
    first ``min(n_requests, calibration)`` requests (an identically
    seeded prefix of the same stream).
    """
    m, n = instance.n_servers, instance.n_objects
    if workload == "worldcup":
        reads = np.zeros((m, n), dtype=np.float64)
        writes = np.zeros((m, n), dtype=np.float64)
        for req in worldcup_stream(
            min(n_requests, calibration), n_servers=m, n_objects=n, seed=seed
        ):
            if req.kind == "read":
                reads[req.server, req.obj] += 1
            else:
                writes[req.server, req.obj] += 1
        return ServingTraffic(
            workload=workload,
            stream=worldcup_stream(
                n_requests, n_servers=m, n_objects=n, seed=seed
            ),
            reads=reads,
            writes=writes,
        )
    if workload == "drift":
        epochs = drifting_workloads(
            m,
            n,
            n_epochs,
            total_requests=max(1, n_requests // max(1, n_epochs)),
            seed=substream(seed, "serving/drift-epochs"),
        )
    elif workload == "flashcrowd":
        epochs, _crowds = flash_crowd_workloads(
            m,
            n,
            n_epochs,
            total_requests=max(1, n_requests // max(1, n_epochs)),
            seed=substream(seed, "serving/crowd-epochs"),
        )
    else:
        raise ConfigurationError(
            f"unknown serving workload {workload!r}; pick from "
            f"{SERVE_WORKLOADS}"
        )
    first = epochs[0].workload
    return ServingTraffic(
        workload=workload,
        stream=epoch_stream(epochs, n_requests, seed=seed),
        reads=first.reads.astype(np.float64),
        writes=first.writes.astype(np.float64),
    )


def make_stream(
    workload: str,
    instance: DRPInstance,
    n_requests: int,
    *,
    seed: SeedLike = 0,
    n_epochs: int = 4,
) -> Iterator[ServeRequest]:
    """Just the stream of :func:`make_traffic` (tests, ad-hoc runs)."""
    return make_traffic(
        workload, instance, n_requests, seed=seed, n_epochs=n_epochs
    ).stream
