"""Network topology substrate.

The paper drew topologies from the GT-ITM and Inet generators.  This
package reimplements the generative families those tools produce:

* :func:`random_graph` — GT-ITM's "pure random" model G(M, P(edge=p)),
* :func:`waxman_graph` — the Waxman locality model,
* :func:`transit_stub_graph` — GT-ITM's hierarchical transit-stub model,
* :func:`powerlaw_graph` — an Inet-style AS-level preferential-attachment
  power-law topology,

plus :func:`cost_matrix` which turns any of them into the all-pairs
communication-cost matrix the Data Replication Problem consumes (shortest
paths over link costs; the paper reverse-maps link distance onto the cost
of shipping 1 kB).
"""

from repro.topology.graph import Topology
from repro.topology.random_graph import random_graph
from repro.topology.waxman import waxman_graph
from repro.topology.transit_stub import transit_stub_graph
from repro.topology.powerlaw import powerlaw_graph
from repro.topology.costs import cost_matrix, propagation_delays, COPPER_SPEED_M_PER_S
from repro.topology.generators import TOPOLOGY_GENERATORS, make_topology
from repro.topology.io import read_edge_list, write_edge_list

__all__ = [
    "Topology",
    "random_graph",
    "waxman_graph",
    "transit_stub_graph",
    "powerlaw_graph",
    "cost_matrix",
    "propagation_delays",
    "COPPER_SPEED_M_PER_S",
    "TOPOLOGY_GENERATORS",
    "make_topology",
    "read_edge_list",
    "write_edge_list",
]
