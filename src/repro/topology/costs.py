"""All-pairs communication-cost matrices.

The DRP's c(i, j) is "the sum of the costs of all the links in a chosen
path" when i and j are not adjacent — i.e. the shortest-path closure of
the link-cost graph.  We compute it with scipy's C Dijkstra over a sparse
adjacency, which is the standard vectorized route (an O(M^2) dense Python
loop would dominate instance-construction time).
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.errors import InfeasibleInstanceError
from repro.topology.graph import Topology

#: Signal propagation speed used by the paper's latency remark
#: ("the latency on a link was assumed to be ... m/s (copper wire)").
#: Electrical signalling in copper propagates at roughly 2/3 c.
COPPER_SPEED_M_PER_S: float = 2.0e8


def cost_matrix(topology: Topology, *, validate: bool = True) -> np.ndarray:
    """Dense symmetric all-pairs shortest-path cost matrix.

    Parameters
    ----------
    topology:
        Any :class:`~repro.topology.graph.Topology`.
    validate:
        When True (default), raise :class:`InfeasibleInstanceError` if the
        graph is disconnected (infinite entries would poison the DRP).

    Returns
    -------
    numpy.ndarray
        (M, M) float matrix with zero diagonal, ``c[i, j] == c[j, i]``.
    """
    n = topology.n_nodes
    if topology.n_edges == 0:
        if n == 1:
            return np.zeros((1, 1))
        raise InfeasibleInstanceError("edgeless multi-node topology is disconnected")
    u, v = topology.edges[:, 0], topology.edges[:, 1]
    w = topology.weights
    adj = csr_matrix(
        (np.concatenate([w, w]), (np.concatenate([u, v]), np.concatenate([v, u]))),
        shape=(n, n),
    )
    c = shortest_path(adj, method="D", directed=False)
    if validate and not np.isfinite(c).all():
        raise InfeasibleInstanceError("topology is disconnected (infinite path cost)")
    # Dijkstra over a symmetric graph is symmetric up to float noise;
    # symmetrize exactly so c(i,j) == c(j,i) holds bit-for-bit (the DRP
    # formulation assumes it).
    c = np.minimum(c, c.T)
    np.fill_diagonal(c, 0.0)
    return c


def propagation_delays(
    cost: np.ndarray,
    *,
    meters_per_cost_unit: float = 1_000.0,
    speed_m_per_s: float = COPPER_SPEED_M_PER_S,
) -> np.ndarray:
    """Map a cost matrix to one-way propagation delays in seconds.

    The paper reverse-maps distance to the cost of shipping 1 kB and
    assumes copper-wire propagation; this helper exposes that latency view
    for reporting (the optimization itself runs on costs).
    """
    if meters_per_cost_unit <= 0 or speed_m_per_s <= 0:
        raise ValueError("scale factors must be positive")
    return np.asarray(cost, dtype=np.float64) * meters_per_cost_unit / speed_m_per_s
