"""Topology generator registry.

Experiments name their topology family by string (e.g. in a sweep config);
:func:`make_topology` dispatches to the matching generator.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.topology.graph import Topology
from repro.topology.powerlaw import powerlaw_graph
from repro.topology.random_graph import random_graph
from repro.topology.transit_stub import transit_stub_graph
from repro.topology.waxman import waxman_graph
from repro.utils.rng import SeedLike


def _make_random(n_nodes: int, seed: SeedLike, **kw) -> Topology:
    kw.setdefault("p", 0.4)
    return random_graph(n_nodes, seed=seed, **kw)


def _make_waxman(n_nodes: int, seed: SeedLike, **kw) -> Topology:
    return waxman_graph(n_nodes, seed=seed, **kw)


def _make_powerlaw(n_nodes: int, seed: SeedLike, **kw) -> Topology:
    return powerlaw_graph(n_nodes, seed=seed, **kw)


def _make_transit_stub(n_nodes: int, seed: SeedLike, **kw) -> Topology:
    """Pick transit-stub shape parameters so the node count is >= n_nodes.

    The hierarchical model's size is a product of its shape parameters, so
    an arbitrary ``n_nodes`` cannot always be hit exactly; we choose the
    number of stub domains to reach at least ``n_nodes`` and callers that
    need an exact count should build the shape explicitly via
    :func:`repro.topology.transit_stub_graph`.
    """
    transit_size = kw.pop("transit_size", 4)
    stub_size = kw.pop("stub_size", 4)
    n_transit_domains = kw.pop("n_transit_domains", 1)
    per_stub = stub_size
    base = n_transit_domains * transit_size
    remaining = max(0, n_nodes - base)
    stubs_total = -(-remaining // per_stub)  # ceil
    stubs_per_transit_node = max(1, -(-stubs_total // base))
    return transit_stub_graph(
        n_transit_domains=n_transit_domains,
        transit_size=transit_size,
        stubs_per_transit_node=stubs_per_transit_node,
        stub_size=stub_size,
        seed=seed,
        **kw,
    )


TOPOLOGY_GENERATORS: dict[str, Callable[..., Topology]] = {
    "random": _make_random,
    "waxman": _make_waxman,
    "powerlaw": _make_powerlaw,
    "transit-stub": _make_transit_stub,
}


def make_topology(kind: str, n_nodes: int, *, seed: SeedLike = None, **kwargs) -> Topology:
    """Build a topology of family ``kind`` with roughly ``n_nodes`` nodes.

    ``kind`` is one of ``"random"``, ``"waxman"``, ``"powerlaw"``,
    ``"transit-stub"``.  Extra keyword arguments are forwarded to the
    family's generator.
    """
    try:
        gen = TOPOLOGY_GENERATORS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology kind {kind!r}; expected one of "
            f"{sorted(TOPOLOGY_GENERATORS)}"
        ) from None
    return gen(n_nodes, seed, **kwargs)
