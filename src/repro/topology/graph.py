"""The :class:`Topology` container shared by all generators.

A topology is an undirected, connected, weighted graph over ``n_nodes``
servers.  Edge weights are positive link costs (the paper's c(i, j) for a
direct link); the DRP consumes the all-pairs shortest-path closure computed
in :mod:`repro.topology.costs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class Topology:
    """An undirected weighted graph in edge-list form.

    Parameters
    ----------
    n_nodes:
        Number of servers (the paper's M).
    edges:
        Integer array of shape (n_edges, 2); each row is an undirected edge
        (u, v) with u != v.  Duplicate or reversed duplicates are rejected.
    weights:
        Positive float array of shape (n_edges,) with per-link costs.
    name:
        Generator family label, e.g. ``"random(p=0.4)"``.
    positions:
        Optional (n_nodes, 2) array of plane coordinates (Waxman /
        transit-stub generators attach them; random graphs may not).
    """

    n_nodes: int
    edges: np.ndarray
    weights: np.ndarray
    name: str = "topology"
    positions: Optional[np.ndarray] = field(default=None)

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
        self.weights = np.asarray(self.weights, dtype=np.float64).reshape(-1)
        if self.n_nodes <= 0:
            raise ConfigurationError(f"n_nodes must be > 0, got {self.n_nodes}")
        if len(self.edges) != len(self.weights):
            raise ConfigurationError(
                f"{len(self.edges)} edges but {len(self.weights)} weights"
            )
        if len(self.edges):
            if self.edges.min() < 0 or self.edges.max() >= self.n_nodes:
                raise ConfigurationError("edge endpoint out of range")
            if np.any(self.edges[:, 0] == self.edges[:, 1]):
                raise ConfigurationError("self-loops are not allowed")
            if np.any(self.weights <= 0):
                raise ConfigurationError("link weights must be positive")
            canon = np.sort(self.edges, axis=1)
            keys = canon[:, 0] * self.n_nodes + canon[:, 1]
            if len(np.unique(keys)) != len(keys):
                raise ConfigurationError("duplicate edges are not allowed")
        if self.positions is not None:
            self.positions = np.asarray(self.positions, dtype=np.float64)
            if self.positions.shape != (self.n_nodes, 2):
                raise ConfigurationError(
                    f"positions must have shape ({self.n_nodes}, 2), "
                    f"got {self.positions.shape}"
                )

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def degree(self) -> np.ndarray:
        """Per-node degree vector."""
        deg = np.zeros(self.n_nodes, dtype=np.int64)
        if self.n_edges:
            np.add.at(deg, self.edges[:, 0], 1)
            np.add.at(deg, self.edges[:, 1], 1)
        return deg

    def adjacency(self) -> np.ndarray:
        """Dense symmetric weight matrix with 0 meaning "no direct link"."""
        a = np.zeros((self.n_nodes, self.n_nodes), dtype=np.float64)
        if self.n_edges:
            u, v = self.edges[:, 0], self.edges[:, 1]
            a[u, v] = self.weights
            a[v, u] = self.weights
        return a

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        for (u, v), w in zip(self.edges, self.weights):
            yield int(u), int(v), float(w)

    def is_connected(self) -> bool:
        """Union-find connectivity check (no scipy needed)."""
        parent = np.arange(self.n_nodes)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for u, v in self.edges:
            ru, rv = find(int(u)), find(int(v))
            if ru != rv:
                parent[ru] = rv
        return len({find(i) for i in range(self.n_nodes)}) == 1

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` (weights under ``"weight"``)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n_nodes))
        g.add_weighted_edges_from(
            (int(u), int(v), float(w)) for (u, v), w in zip(self.edges, self.weights)
        )
        return g

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, n_nodes={self.n_nodes}, "
            f"n_edges={self.n_edges})"
        )


def ensure_connected(
    edges: list[tuple[int, int]],
    n_nodes: int,
    rng: np.random.Generator,
    weight_fn,
) -> list[tuple[int, int, float]]:
    """Add minimal random bridging edges so the graph is connected.

    Components are found via union-find over ``edges``; one random
    representative pair per component boundary is bridged with a weight
    drawn from ``weight_fn(u, v)``.  Returns the list of added
    ``(u, v, w)`` triples.
    """
    parent = list(range(n_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv

    comps: dict[int, list[int]] = {}
    for i in range(n_nodes):
        comps.setdefault(find(i), []).append(i)
    roots = list(comps)
    added: list[tuple[int, int, float]] = []
    # Chain the components together in random order.
    rng.shuffle(roots)
    for a, b in zip(roots, roots[1:]):
        u = int(rng.choice(comps[a]))
        v = int(rng.choice(comps[b]))
        added.append((u, v, float(weight_fn(u, v))))
    return added
