"""Topology file I/O.

A plain edge-list text format compatible in spirit with GT-ITM's
``sgb2alt`` output, so real generated topologies (or hand-written ones)
can be dropped into the pipeline:

.. code-block:: text

    # comment lines start with '#'
    nodes 4
    0 1 2.5
    1 2 1.0
    2 3 4.25

Each edge line is ``u v weight``; the ``nodes`` header is optional (the
maximum endpoint + 1 is used when absent, which silently drops trailing
isolated nodes — declare the count when they matter).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.topology.graph import Topology

PathLike = Union[str, Path]


def write_edge_list(topology: Topology, path: PathLike) -> Path:
    """Write a topology as an edge-list file."""
    path = Path(path)
    lines = [
        f"# topology: {topology.name}",
        f"nodes {topology.n_nodes}",
    ]
    lines.extend(f"{u} {v} {w:.12g}" for u, v, w in topology.iter_edges())
    path.write_text("\n".join(lines) + "\n")
    return path


def read_edge_list(path: PathLike, *, name: str | None = None) -> Topology:
    """Parse an edge-list file into a :class:`Topology`.

    Raises :class:`~repro.errors.ConfigurationError` on malformed lines
    with the offending line number, as a parser must.
    """
    path = Path(path)
    declared_nodes: int | None = None
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "nodes":
            if len(parts) != 2:
                raise ConfigurationError(f"{path}:{lineno}: malformed nodes header")
            try:
                declared_nodes = int(parts[1])
            except ValueError:
                raise ConfigurationError(
                    f"{path}:{lineno}: node count must be an integer"
                ) from None
            continue
        if len(parts) != 3:
            raise ConfigurationError(
                f"{path}:{lineno}: expected 'u v weight', got {line!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2])
        except ValueError:
            raise ConfigurationError(
                f"{path}:{lineno}: could not parse edge {line!r}"
            ) from None
        edges.append((u, v))
        weights.append(w)

    if not edges and declared_nodes is None:
        raise ConfigurationError(f"{path}: no edges and no node count")
    n_nodes = (
        declared_nodes
        if declared_nodes is not None
        else int(max(max(u, v) for u, v in edges)) + 1
    )
    return Topology(
        n_nodes=n_nodes,
        edges=np.array(edges, dtype=np.int64).reshape(-1, 2),
        weights=np.array(weights, dtype=np.float64),
        name=name or path.stem,
    )
