"""Inet-style power-law (AS-level) topologies.

The paper used the Inet generator to estimate the 1998 AS-level Internet
(3718 nodes).  Inet produces graphs whose degree distribution follows a
power law; we reproduce that family with a Barabási–Albert
preferential-attachment process (each new node attaches to ``m`` existing
nodes with probability proportional to degree), which yields the same
heavy-tailed degree structure the DRP evaluation relies on: a few highly
connected hubs that are cheap to reach and many low-degree leaves that
benefit from local replicas.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


def powerlaw_graph(
    n_nodes: int,
    m: int = 2,
    *,
    weight_range: tuple[float, float] = (1.0, 10.0),
    seed: SeedLike = None,
) -> Topology:
    """Barabási–Albert preferential attachment with random link costs.

    Parameters
    ----------
    n_nodes:
        Total number of nodes; must be > ``m``.
    m:
        Edges added per arriving node (also the size of the initial clique).
    weight_range:
        Uniform link-cost interval (lo, hi), lo > 0.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    m = check_positive_int(m, "m")
    if n_nodes <= m:
        raise ValueError(f"n_nodes ({n_nodes}) must exceed m ({m})")
    lo, hi = float(weight_range[0]), float(weight_range[1])
    if not (0 < lo <= hi):
        raise ValueError(f"weight_range must satisfy 0 < lo <= hi, got {weight_range}")
    rng = as_generator(seed)

    edges: list[tuple[int, int]] = []
    # Seed clique over the first m+1 nodes keeps the graph connected and
    # gives preferential attachment a non-degenerate start.
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            edges.append((u, v))

    # "Repeated nodes" trick: sampling uniformly from the endpoint multiset
    # is exactly degree-proportional sampling.
    repeated: list[int] = []
    for u, v in edges:
        repeated.extend((u, v))

    for new in range(m + 1, n_nodes):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(repeated[int(rng.integers(len(repeated)))])
        for t in targets:
            edges.append((new, t))
            repeated.extend((new, t))

    edges_arr = np.array(edges, dtype=np.int64)
    weights = rng.uniform(lo, hi, size=len(edges_arr))
    return Topology(
        n_nodes=n_nodes,
        edges=edges_arr,
        weights=weights,
        name=f"powerlaw(m={m})",
    )
