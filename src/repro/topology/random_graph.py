"""GT-ITM-style "pure random" topologies G(M, P(edge = p)).

The paper's experimental setup: "A random graph G(M, P(edge = p)) with
0 <= p <= 1 contains all graphs with nodes (servers) M in which the edges
are chosen independently and with a probability p.  The pure random
topologies were obtained with p = {0.4, 0.5, 0.6, 0.7, 0.8}."

Link weights model the cost of shipping one simple data unit (1 kB in the
paper) across the link and are drawn uniformly from ``weight_range``; the
paper reverse-mapped plane distance to cost, which the Waxman generator
reproduces — for pure random graphs there is no embedding, so uniform
random costs are the standard stand-in.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology, ensure_connected
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int, check_probability


def random_graph(
    n_nodes: int,
    p: float,
    *,
    weight_range: tuple[float, float] = (1.0, 10.0),
    seed: SeedLike = None,
) -> Topology:
    """Sample an Erdős–Rényi G(n, p) topology, patched to be connected.

    Parameters
    ----------
    n_nodes:
        Number of servers M.
    p:
        Independent edge probability.
    weight_range:
        Closed interval for uniform link costs (lo, hi), lo > 0.
    seed:
        Anything accepted by :func:`repro.utils.rng.as_generator`.

    Notes
    -----
    If the sampled graph is disconnected (likely only for small ``n*p``),
    minimal bridging edges are added so the DRP cost matrix is finite,
    mirroring GT-ITM's behaviour of rejecting/fixing disconnected samples.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    check_probability(p, "p")
    lo, hi = float(weight_range[0]), float(weight_range[1])
    if not (0 < lo <= hi):
        raise ValueError(f"weight_range must satisfy 0 < lo <= hi, got {weight_range}")
    rng = as_generator(seed)

    # Vectorized upper-triangle Bernoulli sampling.
    iu, ju = np.triu_indices(n_nodes, k=1)
    mask = rng.random(len(iu)) < p
    edges = np.stack([iu[mask], ju[mask]], axis=1)
    weights = rng.uniform(lo, hi, size=len(edges))

    def bridge_weight(_u: int, _v: int) -> float:
        return float(rng.uniform(lo, hi))

    extra = ensure_connected([tuple(e) for e in edges.tolist()], n_nodes, rng, bridge_weight)
    if extra:
        edges = np.concatenate(
            [edges.reshape(-1, 2), np.array([(u, v) for u, v, _ in extra], dtype=np.int64)]
        )
        weights = np.concatenate([weights, np.array([w for *_, w in extra])])

    return Topology(
        n_nodes=n_nodes, edges=edges, weights=weights, name=f"random(p={p:g})"
    )
