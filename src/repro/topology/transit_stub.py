"""GT-ITM transit-stub hierarchical topologies.

The transit-stub model composes the Internet's two-level structure: a
small core of *transit* domains (backbones) with *stub* domains (campus /
ISP edge networks) hanging off transit nodes.  Intra-domain links are
cheap, transit-to-stub links moderate, and transit-to-transit (backbone)
links expensive — giving the DRP a realistic locality structure where
replicating into a stub saves that stub's clients the backbone crossing.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology, ensure_connected
from repro.utils.rng import SeedLike, as_generator, spawn_children
from repro.utils.validation import check_positive_int, check_probability


def _dense_component(
    nodes: list[int], p: float, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Random connected edge set over ``nodes``: a random spanning chain
    plus independent extra edges with probability ``p``."""
    edges: list[tuple[int, int]] = []
    order = list(nodes)
    rng.shuffle(order)
    for a, b in zip(order, order[1:]):
        edges.append((a, b))
    present = {tuple(sorted(e)) for e in edges}
    for idx, u in enumerate(nodes):
        for v in nodes[idx + 1 :]:
            key = (min(u, v), max(u, v))
            if key in present:
                continue
            if rng.random() < p:
                edges.append((u, v))
                present.add(key)
    return edges


def transit_stub_graph(
    n_transit_domains: int = 2,
    transit_size: int = 4,
    stubs_per_transit_node: int = 2,
    stub_size: int = 4,
    *,
    p_transit: float = 0.6,
    p_stub: float = 0.42,
    transit_link_cost: float = 20.0,
    transit_stub_cost: float = 8.0,
    stub_link_cost: float = 2.0,
    jitter: float = 0.25,
    seed: SeedLike = None,
) -> Topology:
    """Build a transit-stub topology.

    Total node count is
    ``n_transit_domains * transit_size * (1 + stubs_per_transit_node * stub_size)``.

    Parameters
    ----------
    p_transit, p_stub:
        Extra intra-domain edge densities (a spanning chain guarantees each
        domain is internally connected regardless).
    transit_link_cost, transit_stub_cost, stub_link_cost:
        Mean link costs for the three link classes; each sampled cost is
        multiplied by ``Uniform(1 - jitter, 1 + jitter)``.
    """
    n_transit_domains = check_positive_int(n_transit_domains, "n_transit_domains")
    transit_size = check_positive_int(transit_size, "transit_size")
    stub_size = check_positive_int(stub_size, "stub_size")
    if stubs_per_transit_node < 0:
        raise ValueError("stubs_per_transit_node must be >= 0")
    check_probability(p_transit, "p_transit")
    check_probability(p_stub, "p_stub")
    check_probability(jitter, "jitter")
    rng = as_generator(seed)
    rng_domains, rng_costs, rng_bridge = spawn_children(rng, 3)

    def cost(mean: float) -> float:
        return float(mean * rng_costs.uniform(1.0 - jitter, 1.0 + jitter))

    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    next_id = 0
    transit_nodes_by_domain: list[list[int]] = []

    # Transit domains.
    for _ in range(n_transit_domains):
        nodes = list(range(next_id, next_id + transit_size))
        next_id += transit_size
        transit_nodes_by_domain.append(nodes)
        for u, v in _dense_component(nodes, p_transit, rng_domains):
            edges.append((u, v))
            weights.append(cost(transit_link_cost))

    # Backbone: chain the transit domains (one inter-domain edge per pair of
    # consecutive domains, plus a closing edge when there are > 2 domains).
    for d in range(n_transit_domains):
        nxt = (d + 1) % n_transit_domains
        if n_transit_domains > 1 and not (n_transit_domains == 2 and d == 1):
            u = int(rng_domains.choice(transit_nodes_by_domain[d]))
            v = int(rng_domains.choice(transit_nodes_by_domain[nxt]))
            if u != v:
                edges.append((u, v))
                weights.append(cost(transit_link_cost * 1.5))

    # Stub domains hanging off each transit node.
    for domain in transit_nodes_by_domain:
        for t_node in domain:
            for _ in range(stubs_per_transit_node):
                nodes = list(range(next_id, next_id + stub_size))
                next_id += stub_size
                for u, v in _dense_component(nodes, p_stub, rng_domains):
                    edges.append((u, v))
                    weights.append(cost(stub_link_cost))
                gateway = int(rng_domains.choice(nodes))
                edges.append((t_node, gateway))
                weights.append(cost(transit_stub_cost))

    n_nodes = next_id
    # Deduplicate any accidental duplicate inter-domain edge.
    seen: dict[tuple[int, int], float] = {}
    for (u, v), w in zip(edges, weights):
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen[key] = w
    edges_arr = np.array(sorted(seen), dtype=np.int64).reshape(-1, 2)
    weights_arr = np.array([seen[tuple(e)] for e in edges_arr.tolist()])

    extra = ensure_connected(
        [tuple(e) for e in edges_arr.tolist()],
        n_nodes,
        rng_bridge,
        lambda _u, _v: cost(transit_link_cost),
    )
    if extra:
        edges_arr = np.concatenate(
            [edges_arr, np.array([(u, v) for u, v, _ in extra], dtype=np.int64)]
        )
        weights_arr = np.concatenate([weights_arr, np.array([w for *_, w in extra])])

    return Topology(
        n_nodes=n_nodes,
        edges=edges_arr,
        weights=weights_arr,
        name=(
            f"transit-stub(T={n_transit_domains}x{transit_size},"
            f"S={stubs_per_transit_node}x{stub_size})"
        ),
    )
