"""Waxman locality topologies.

Waxman's model places nodes uniformly in the unit square and links each
pair (u, v) with probability ``alpha * exp(-d(u, v) / (beta * L))`` where
``d`` is Euclidean distance and ``L`` the maximum possible distance.  The
link cost is proportional to plane distance — exactly the paper's
"distance between two servers was reverse mapped to the communication cost
of transmitting 1 kB".
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology, ensure_connected
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int


def waxman_graph(
    n_nodes: int,
    *,
    alpha: float = 0.4,
    beta: float = 0.3,
    cost_scale: float = 10.0,
    min_cost: float = 1.0,
    seed: SeedLike = None,
) -> Topology:
    """Sample a Waxman graph with distance-proportional link costs.

    Parameters
    ----------
    alpha:
        Overall link density knob in (0, 1].
    beta:
        Locality knob in (0, 1]; small beta favours short links.
    cost_scale:
        Cost of a link spanning the full unit-square diagonal.
    min_cost:
        Floor on link cost so arbitrarily-close nodes still pay something.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    check_positive(alpha, "alpha")
    check_positive(beta, "beta")
    check_positive(cost_scale, "cost_scale")
    check_positive(min_cost, "min_cost")
    rng = as_generator(seed)

    pos = rng.random((n_nodes, 2))
    diff = pos[:, None, :] - pos[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=-1))
    l_max = np.sqrt(2.0)

    iu, ju = np.triu_indices(n_nodes, k=1)
    p_link = alpha * np.exp(-dist[iu, ju] / (beta * l_max))
    mask = rng.random(len(iu)) < p_link
    edges = np.stack([iu[mask], ju[mask]], axis=1)
    weights = np.maximum(min_cost, cost_scale * dist[edges[:, 0], edges[:, 1]] / l_max)

    def bridge_weight(u: int, v: int) -> float:
        return float(max(min_cost, cost_scale * dist[u, v] / l_max))

    extra = ensure_connected([tuple(e) for e in edges.tolist()], n_nodes, rng, bridge_weight)
    if extra:
        edges = np.concatenate(
            [edges.reshape(-1, 2), np.array([(u, v) for u, v, _ in extra], dtype=np.int64)]
        )
        weights = np.concatenate([weights, np.array([w for *_, w in extra])])

    return Topology(
        n_nodes=n_nodes,
        edges=edges,
        weights=weights,
        name=f"waxman(a={alpha:g},b={beta:g})",
        positions=pos,
    )
