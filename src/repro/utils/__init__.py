"""Shared utilities: RNG fan-out, timing, validation, table rendering."""

from repro.utils.rng import RngFactory, as_generator, spawn_children, substream
from repro.utils.timing import Timer, format_seconds
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.tables import render_table
from repro.utils.ascii_chart import ascii_chart

__all__ = [
    "ascii_chart",
    "RngFactory",
    "as_generator",
    "spawn_children",
    "substream",
    "Timer",
    "format_seconds",
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "render_table",
]
