"""Terminal line charts for figure series.

No plotting dependency is available offline, so the examples and
benchmark reports render figure series as ASCII charts — enough to see
the saturation and crossover shapes the paper's plots show.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Plot glyph per series, cycled in insertion order.
_GLYPHS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a fixed-size ASCII chart.

    Points that collide on a cell keep the first-drawn series' glyph; a
    legend maps glyphs back to names.  Raises on empty input.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("nothing to plot")
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if math.isclose(x_lo, x_hi):
        x_hi = x_lo + 1.0
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        cx = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        cy = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return height - 1 - cy, cx

    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph} = {name}")
        for x, y in pts:
            r, c = cell(x, y)
            if grid[r][c] == " ":
                grid[r][c] = glyph

    top = f"{y_hi:10.2f} +"
    bottom = f"{y_lo:10.2f} +"
    pad = " " * 11
    out = []
    if y_label:
        out.append(f"{y_label}")
    for r, row in enumerate(grid):
        prefix = top if r == 0 else (bottom if r == height - 1 else pad + "|")
        out.append(prefix + "".join(row))
    out.append(pad + "+" + "-" * width)
    out.append(pad + f" {x_lo:g}" + f"{x_hi:g}".rjust(width - len(f"{x_lo:g}")))
    if x_label:
        out.append(pad + x_label.center(width))
    out.append("  ".join(legend))
    return "\n".join(out)
