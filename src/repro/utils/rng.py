"""Deterministic random-number-generator handling.

Every stochastic component of the library accepts a ``seed`` argument that
may be ``None``, an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  Components that need several independent
streams (e.g. topology vs. workload vs. genetic algorithm) derive child
generators through :func:`spawn_children`, which uses numpy's
``SeedSequence.spawn`` so the streams are statistically independent and the
whole experiment is reproducible from a single integer.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (no reseeding), so
    callers can thread one stream through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_children(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    If ``seed`` is already a generator, children are spawned from its
    internal bit generator's seed sequence, so repeated calls advance and
    remain independent.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} child generators")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in ss.spawn(n)]


def substream(seed: SeedLike, name: str) -> np.random.Generator:
    """Derive the named, order-independent substream of ``seed``.

    The stream is keyed by hashing ``name`` into the seed sequence's
    spawn key, so ``substream(s, "serving/latency")`` yields the same
    generator no matter which — or how many — *other* substreams were
    derived from ``s`` before it.  That null-composition identity is
    what keeps composed subsystems (serving loop, fault plan, workload
    draws) byte-reproducible: arming one subsystem cannot perturb
    another's draws.

    Passing a :class:`numpy.random.Generator` keys off the entropy its
    bit generator was seeded with (the generator's current position is
    irrelevant — substreams are derived, not consumed).
    """
    if isinstance(seed, np.random.Generator):
        root = seed.bit_generator.seed_seq
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
    child = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(int(x) for x in key)
    )
    return np.random.default_rng(child)


class RngFactory:
    """Named, reproducible RNG streams derived from one root seed.

    >>> f = RngFactory(42)
    >>> a = f.get("topology")
    >>> b = f.get("workload")

    The same name always yields a generator seeded identically across
    factory instances built from the same root seed, regardless of request
    order, because each name is hashed into the spawn key.
    """

    def __init__(self, root_seed: Optional[int] = None):
        self._root = np.random.SeedSequence(root_seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name`` (created on first use)."""
        if name not in self._cache:
            # Deterministic per-name entropy: combine the root entropy with a
            # stable hash of the name so streams are order-independent.
            key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=tuple(int(x) for x in key)
            )
            self._cache[name] = np.random.default_rng(child)
        return self._cache[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(root={self._root.entropy!r}, streams={sorted(self._cache)})"
