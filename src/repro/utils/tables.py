"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned, pipe-separated text that is readable both
in a terminal and when pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned markdown-ish table.

    Every row must have exactly ``len(headers)`` cells; floats are shown
    with two decimals.
    """
    header_cells = [str(h) for h in headers]
    body = []
    for r, row in enumerate(rows):
        cells = [_fmt(c) for c in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row {r} has {len(cells)} cells, expected {len(header_cells)}"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, c in enumerate(cells):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(header_cells))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(cells) for cells in body)
    return "\n".join(out)
