"""Wall-clock timing helpers used by the experiment harness.

The paper's Table 1 compares algorithm termination times; we measure with
:func:`time.perf_counter` which is the highest-resolution monotonic clock
available from Python.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Monotonic high-resolution clock used across the library (one shared
#: alias keeps instrumented hot loops free of module-attribute lookups).
perf_counter = time.perf_counter


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True

    A single :class:`Timer` may be entered repeatedly; ``elapsed``
    accumulates across uses (useful for timing only the hot section of a
    loop).
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        if self._running:
            raise RuntimeError("Timer already running")
        self._start = time.perf_counter()
        self._running = True

    def stop(self) -> float:
        if not self._running:
            raise RuntimeError("Timer not running")
        self.elapsed += time.perf_counter() - self._start
        self._running = False
        return self.elapsed

    def reset(self) -> None:
        if self._running:
            raise RuntimeError("cannot reset a running Timer")
        self.elapsed = 0.0


def format_seconds(seconds: float) -> str:
    """Human-readable duration: ``"13.2 ms"``, ``"4.71 s"``, ``"2m 03s"``."""
    if seconds < 0:
        raise ValueError("duration cannot be negative")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    minutes, secs = divmod(seconds, 60.0)
    return f"{int(minutes)}m {secs:02.0f}s"
