"""Argument-validation helpers with uniform error messages.

These raise :class:`repro.errors.ConfigurationError` (a ``ValueError``
subclass) so user-facing constructors fail fast with a message naming the
offending parameter.
"""

from __future__ import annotations

from numbers import Integral, Real

import numpy as np

from repro.errors import ConfigurationError


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is an integer > 0 and return it as ``int``."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return int(value)


def check_positive(value, name: str) -> float:
    """Validate that ``value`` is a real number > 0 and return it as float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return float(value)


def check_probability(value, name: str) -> float:
    """Validate ``0 <= value <= 1``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def check_fraction(value, name: str, *, open_left: bool = False, open_right: bool = False) -> float:
    """Validate a fraction in [0, 1] with optionally open endpoints."""
    v = check_probability(value, name)
    if open_left and v == 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    if open_right and v == 1.0:
        raise ConfigurationError(f"{name} must be < 1, got {value}")
    return v


def check_finite_array(
    arr: np.ndarray, name: str, *, nonnegative: bool = False
) -> np.ndarray:
    """Validate every entry of ``arr`` is finite (and optionally >= 0).

    On failure the error names the first offending index *and* its
    value, so a NaN read count or an ``inf`` link cost in a thousand-row
    matrix is immediately locatable instead of propagating silently into
    the benefit math.  Returns ``arr`` unchanged.
    """
    arr = np.asarray(arr)
    bad = ~np.isfinite(arr)
    if bad.any():
        idx = tuple(int(i) for i in np.argwhere(bad)[0])
        pos = idx[0] if len(idx) == 1 else idx
        raise ConfigurationError(
            f"{name} must be finite, but entry {pos} is {float(arr[idx])!r} "
            f"— check the generator or input file that produced it"
        )
    if nonnegative:
        neg = arr < 0
        if neg.any():
            idx = tuple(int(i) for i in np.argwhere(neg)[0])
            pos = idx[0] if len(idx) == 1 else idx
            raise ConfigurationError(
                f"{name} must be non-negative, but entry {pos} is "
                f"{float(arr[idx])!r} — check the generator or input file "
                f"that produced it"
            )
    return arr
