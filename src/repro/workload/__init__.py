"""Workload substrate.

The paper drives the DRP with access logs from the Soccer World Cup 1998
web site: 25,000 objects common to thirteen Friday logs, the top 500
clients, 1–2 million requests per instance, object sizes with measured
mean/variance, and a random 1-M client→server mapping.

The real trace is not redistributable, so this package provides:

* :mod:`repro.workload.zipf` — Zipf popularity sampling (web object
  popularity is classically Zipf-like),
* :mod:`repro.workload.worldcup` — a synthetic common-log-format
  generator matching the trace's aggregate statistics **and** a parser
  that ingests real logs when available,
* :mod:`repro.workload.clients` — the 1-M client→server random mapping,
* :mod:`repro.workload.synthetic` — direct read/write matrix synthesis
  with R/W-ratio and update-ratio controls,
* :mod:`repro.workload.stats` — aggregation of request streams into the
  (reads, writes, sizes) matrices the DRP consumes.
"""

from repro.workload.zipf import zipf_weights, sample_zipf
from repro.workload.trace import Request, RequestStream, Trace, ObjectCatalog
from repro.workload.clients import map_clients_to_servers
from repro.workload.worldcup import (
    WorldCupLogGenerator,
    parse_common_log_line,
    parse_common_log,
    parse_common_log_file,
)
from repro.workload.stats import aggregate_trace, trace_to_matrices
from repro.workload.synthetic import SyntheticWorkload, synthesize_workload
from repro.workload.drift import WorkloadEpoch, drifting_workloads, rank_displacement
from repro.workload.flashcrowd import (
    FlashCrowd,
    flash_crowd_workloads,
    crowd_traffic_share,
)
from repro.workload.epochs import epochs_from_trace

__all__ = [
    "zipf_weights",
    "sample_zipf",
    "Request",
    "RequestStream",
    "Trace",
    "ObjectCatalog",
    "map_clients_to_servers",
    "WorldCupLogGenerator",
    "parse_common_log_line",
    "parse_common_log",
    "parse_common_log_file",
    "aggregate_trace",
    "trace_to_matrices",
    "SyntheticWorkload",
    "synthesize_workload",
    "WorkloadEpoch",
    "drifting_workloads",
    "rank_displacement",
    "FlashCrowd",
    "flash_crowd_workloads",
    "crowd_traffic_share",
    "epochs_from_trace",
]
