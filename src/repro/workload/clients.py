"""Client → server mapping.

The paper: "A random mapping was then performed of the clients to the
nodes of the topologies.  Note that this mapping is not 1-1, rather 1-M" —
i.e. each client is attached to exactly one server but a server may host
many clients, producing the skew that makes replica placement non-trivial.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int


def map_clients_to_servers(
    n_clients: int,
    n_servers: int,
    *,
    skew: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Assign each client to one server.

    Parameters
    ----------
    skew:
        Concentration of the server-popularity distribution used for the
        assignment.  ``skew == 0`` gives a uniform mapping; larger values
        sample server weights from ``Dirichlet(1/(1+skew))`` making a few
        servers host most clients — the "enough skewed workload to mimic
        real world scenarios" the paper wants.

    Returns
    -------
    numpy.ndarray
        int array of shape (n_clients,) with values in [0, n_servers).
    """
    n_clients = check_positive_int(n_clients, "n_clients")
    n_servers = check_positive_int(n_servers, "n_servers")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    rng = as_generator(seed)
    if skew == 0:
        return rng.integers(0, n_servers, size=n_clients)
    concentration = 1.0 / (1.0 + check_positive(skew, "skew"))
    weights = rng.dirichlet(np.full(n_servers, concentration))
    return rng.choice(n_servers, size=n_clients, p=weights)
