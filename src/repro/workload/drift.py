"""Workload drift: epoch sequences with shifting object popularity.

The paper frames AGT-RAM as "a protocol for automatic replication and
migration of objects in response to demand changes".  To exercise that,
this module produces a sequence of workload epochs whose Zipf popularity
ranking rotates gradually — yesterday's hot match report cools down,
today's heats up — while sizes and totals stay fixed, so any OTC change
across epochs is attributable to demand movement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator, spawn_children
from repro.utils.validation import check_fraction, check_positive_int
from repro.workload.synthetic import SyntheticWorkload
from repro.workload.zipf import zipf_weights


@dataclass(frozen=True)
class WorkloadEpoch:
    """One epoch: the workload plus the popularity permutation used."""

    index: int
    workload: SyntheticWorkload
    popularity_rank: np.ndarray  # rank position of each object (0 = hottest)


def drifting_workloads(
    n_servers: int,
    n_objects: int,
    n_epochs: int,
    *,
    total_requests: int = 50_000,
    rw_ratio: float = 0.9,
    popularity_alpha: float = 0.85,
    server_skew: float = 1.2,
    drift_fraction: float = 0.2,
    mean_object_size: float = 12.0,
    size_cv: float = 1.0,
    seed: SeedLike = None,
) -> list[WorkloadEpoch]:
    """Generate ``n_epochs`` workloads with rotating popularity.

    Between consecutive epochs, ``drift_fraction`` of the objects swap
    popularity ranks with random partners; object sizes are sampled once
    and shared by every epoch (the catalog itself does not change).
    """
    check_positive_int(n_epochs, "n_epochs")
    check_fraction(drift_fraction, "drift_fraction")
    rng_sizes, rng_perm, rng_counts = spawn_children(as_generator(seed), 3)

    # One catalog of sizes for all epochs.
    base = _sizes(n_objects, mean_object_size, size_cv, rng_sizes)
    pop = zipf_weights(n_objects, popularity_alpha)
    act = zipf_weights(n_servers, server_skew) if server_skew > 0 else (
        np.full(n_servers, 1.0 / n_servers)
    )
    act = act[rng_perm.permutation(n_servers)]

    # rank_of_object[k] = popularity rank of object k this epoch.
    rank_of_object = rng_perm.permutation(n_objects)
    epochs: list[WorkloadEpoch] = []
    n_swaps = max(1, int(drift_fraction * n_objects / 2))
    for e in range(n_epochs):
        if e > 0:
            for _ in range(n_swaps):
                a, b = rng_perm.integers(0, n_objects, size=2)
                rank_of_object[a], rank_of_object[b] = (
                    rank_of_object[b],
                    rank_of_object[a],
                )
        obj_weights = pop[rank_of_object]
        mean = total_requests * np.outer(act, obj_weights)
        counts = rng_counts.poisson(mean)
        reads = rng_counts.binomial(counts, rw_ratio)
        writes = counts - reads
        epochs.append(
            WorkloadEpoch(
                index=e,
                workload=SyntheticWorkload(
                    reads=reads.astype(np.int64),
                    writes=writes.astype(np.int64),
                    sizes=base,
                    rw_ratio=rw_ratio,
                ),
                popularity_rank=rank_of_object.copy(),
            )
        )
    return epochs


def _sizes(
    n_objects: int, mean: float, cv: float, rng: np.random.Generator
) -> np.ndarray:
    import math

    if cv < 0:
        raise ConfigurationError("size_cv must be >= 0")
    if cv == 0:
        return np.full(n_objects, round(mean), dtype=np.int64)
    sigma2 = math.log(1.0 + cv**2)
    mu = math.log(mean) - sigma2 / 2.0
    return np.maximum(
        1, np.round(rng.lognormal(mu, math.sqrt(sigma2), size=n_objects))
    ).astype(np.int64)


def rank_displacement(epochs: list[WorkloadEpoch]) -> list[float]:
    """Mean |rank shift| between consecutive epochs — a drift magnitude
    diagnostic for experiments."""
    out = []
    for a, b in zip(epochs, epochs[1:]):
        out.append(float(np.abs(a.popularity_rank - b.popularity_rank).mean()))
    return out
