"""Slice a request trace into time epochs.

The WorldCup'98 logs have strong diurnal structure (the generator's
load curve reproduces it); slicing a day's trace into windows yields
epoch workloads whose demand genuinely moves — the natural input to
:class:`repro.core.adaptive.AdaptiveReplicator`, replacing the
synthetic drift model with trace-driven drift.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive_int
from repro.workload.drift import WorkloadEpoch
from repro.workload.stats import trace_to_matrices
from repro.workload.synthetic import SyntheticWorkload
from repro.workload.trace import Trace


def epochs_from_trace(
    trace: Trace,
    client_to_server: np.ndarray,
    n_servers: int,
    n_epochs: int,
) -> list[WorkloadEpoch]:
    """Split ``trace`` into ``n_epochs`` equal time windows.

    Each window becomes a :class:`WorkloadEpoch` with per-server request
    matrices via the client mapping.  Windows are by *time span* (not
    request count), so busy hours produce heavier epochs — the point of
    trace-driven adaptation.  Every window, even an idle one, yields an
    epoch; the catalog (object sizes) is shared.
    """
    check_positive_int(n_epochs, "n_epochs")
    if not len(trace):
        raise ConfigurationError("cannot slice an empty trace")
    ts = np.array([r.timestamp for r in trace])
    lo, hi = float(ts.min()), float(ts.max())
    span = hi - lo
    if span == 0:
        bins = np.zeros(len(ts), dtype=np.int64)
    else:
        bins = np.minimum(
            n_epochs - 1, ((ts - lo) / span * n_epochs).astype(np.int64)
        )

    sizes = np.asarray(trace.catalog.sizes)
    epochs: list[WorkloadEpoch] = []
    for e in range(n_epochs):
        sub = Trace(
            catalog=trace.catalog,
            requests=[r for r, b in zip(trace.requests, bins) if b == e],
            n_clients=trace.n_clients,
        )
        reads, writes = trace_to_matrices(sub, client_to_server, n_servers)
        total = reads.sum() + writes.sum()
        rw = float(reads.sum() / total) if total else 1.0
        per_obj = (reads + writes).sum(axis=0)
        rank = np.empty(trace.catalog.n_objects, dtype=np.int64)
        rank[np.argsort(-per_obj, kind="stable")] = np.arange(
            trace.catalog.n_objects
        )
        epochs.append(
            WorkloadEpoch(
                index=e,
                workload=SyntheticWorkload(
                    reads=reads, writes=writes, sizes=sizes, rw_ratio=rw
                ),
                popularity_rank=rank,
            )
        )
    return epochs
