"""Flash-crowd workload epochs.

The WorldCup'98 trace is the canonical flash-crowd dataset: when a
match kicks off, a handful of pages absorb orders of magnitude more
traffic within minutes.  This module injects that behaviour into epoch
sequences so the adaptive protocol can be stressed with the workload's
hardest feature: demand that *concentrates suddenly* rather than
drifting smoothly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator, spawn_children
from repro.utils.validation import check_fraction, check_positive, check_positive_int
from repro.workload.drift import WorkloadEpoch
from repro.workload.synthetic import SyntheticWorkload
from repro.workload.zipf import zipf_weights


@dataclass(frozen=True)
class FlashCrowd:
    """One flash-crowd event: objects, onset epoch, duration, intensity."""

    objects: tuple[int, ...]
    onset: int
    duration: int
    intensity: float


def flash_crowd_workloads(
    n_servers: int,
    n_objects: int,
    n_epochs: int,
    *,
    total_requests: int = 50_000,
    rw_ratio: float = 0.95,
    popularity_alpha: float = 0.85,
    server_skew: float = 1.2,
    n_crowds: int = 2,
    crowd_size: int = 3,
    crowd_intensity: float = 20.0,
    crowd_duration: int = 2,
    mean_object_size: float = 12.0,
    size_cv: float = 1.0,
    seed: SeedLike = None,
) -> tuple[list[WorkloadEpoch], list[FlashCrowd]]:
    """Generate epochs with superimposed flash-crowd events.

    Each crowd multiplies the request weight of ``crowd_size`` randomly
    chosen (previously unremarkable) objects by ``crowd_intensity`` for
    ``crowd_duration`` consecutive epochs starting at a random onset.
    The per-epoch request budget is fixed, so a crowd *redistributes*
    traffic — the baseline objects cool correspondingly, exactly as a
    real trace's share-of-traffic plot shows.

    Returns the epoch list plus the injected crowd events (ground truth
    for tests and examples).
    """
    check_positive_int(n_epochs, "n_epochs")
    check_positive_int(crowd_size, "crowd_size")
    check_positive(crowd_intensity, "crowd_intensity")
    check_positive_int(crowd_duration, "crowd_duration")
    check_fraction(rw_ratio, "rw_ratio")
    if n_crowds < 0:
        raise ConfigurationError("n_crowds must be >= 0")
    if crowd_size > n_objects:
        raise ConfigurationError("crowd_size cannot exceed n_objects")

    rng_sizes, rng_struct, rng_counts = spawn_children(as_generator(seed), 3)

    from repro.workload.drift import _sizes

    sizes = _sizes(n_objects, mean_object_size, size_cv, rng_sizes)
    base_pop = zipf_weights(n_objects, popularity_alpha)
    base_pop = base_pop[rng_struct.permutation(n_objects)]
    act = zipf_weights(n_servers, server_skew) if server_skew > 0 else (
        np.full(n_servers, 1.0 / n_servers)
    )
    act = act[rng_struct.permutation(n_servers)]

    # Crowds target objects from the cold tail (below-median popularity),
    # which is what makes them disruptive to a placed scheme.
    cold = np.flatnonzero(base_pop < np.median(base_pop))
    crowds: list[FlashCrowd] = []
    for _ in range(n_crowds):
        chosen = rng_struct.choice(
            cold if len(cold) >= crowd_size else n_objects,
            size=crowd_size,
            replace=False,
        )
        onset = int(rng_struct.integers(0, max(1, n_epochs - crowd_duration + 1)))
        crowds.append(
            FlashCrowd(
                objects=tuple(int(o) for o in chosen),
                onset=onset,
                duration=crowd_duration,
                intensity=crowd_intensity,
            )
        )

    epochs: list[WorkloadEpoch] = []
    for e in range(n_epochs):
        weights = base_pop.copy()
        for crowd in crowds:
            if crowd.onset <= e < crowd.onset + crowd.duration:
                weights[list(crowd.objects)] *= crowd.intensity
        weights = weights / weights.sum()
        mean = total_requests * np.outer(act, weights)
        counts = rng_counts.poisson(mean)
        reads = rng_counts.binomial(counts, rw_ratio)
        writes = counts - reads
        # rank positions for diagnostics (0 = hottest this epoch).
        rank = np.empty(n_objects, dtype=np.int64)
        rank[np.argsort(-weights)] = np.arange(n_objects)
        epochs.append(
            WorkloadEpoch(
                index=e,
                workload=SyntheticWorkload(
                    reads=reads.astype(np.int64),
                    writes=writes.astype(np.int64),
                    sizes=sizes,
                    rw_ratio=rw_ratio,
                ),
                popularity_rank=rank,
            )
        )
    return epochs, crowds


def crowd_traffic_share(
    epochs: list[WorkloadEpoch], crowd: FlashCrowd
) -> list[float]:
    """Per-epoch share of total traffic absorbed by a crowd's objects."""
    out = []
    for e in epochs:
        w = e.workload
        total = w.reads.sum() + w.writes.sum()
        objs = list(crowd.objects)
        hot = w.reads[:, objs].sum() + w.writes[:, objs].sum()
        out.append(float(hot / total) if total else 0.0)
    return out
