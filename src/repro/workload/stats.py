"""Aggregation of request streams into DRP matrices.

The DRP consumes per-*server* per-object read and write counts.  The
pipeline is: trace (per-client requests) → client→server mapping →
(M, N) integer matrices r and w.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.trace import Trace


@dataclass(frozen=True)
class TraceAggregates:
    """Per-client aggregates of a trace.

    ``reads`` / ``writes`` have shape (n_clients, n_objects).
    """

    reads: np.ndarray
    writes: np.ndarray

    @property
    def n_clients(self) -> int:
        return self.reads.shape[0]

    @property
    def n_objects(self) -> int:
        return self.reads.shape[1]

    def total_requests(self) -> int:
        return int(self.reads.sum() + self.writes.sum())


def aggregate_trace(trace: Trace) -> TraceAggregates:
    """Count reads/writes per (client, object) with vectorized bincount."""
    n_c, n_o = trace.n_clients, trace.catalog.n_objects
    if n_c == 0:
        raise ConfigurationError("trace has no clients")
    reads = np.zeros((n_c, n_o), dtype=np.int64)
    writes = np.zeros((n_c, n_o), dtype=np.int64)
    if trace.requests:
        clients = np.fromiter((r.client for r in trace.requests), dtype=np.int64)
        objs = np.fromiter((r.obj for r in trace.requests), dtype=np.int64)
        is_read = np.fromiter(
            (r.kind == "read" for r in trace.requests), dtype=bool
        )
        flat = clients * n_o + objs
        reads.ravel()[:] = np.bincount(flat[is_read], minlength=n_c * n_o)
        writes.ravel()[:] = np.bincount(flat[~is_read], minlength=n_c * n_o)
    return TraceAggregates(reads=reads, writes=writes)


def trace_to_matrices(
    trace: Trace,
    client_to_server: np.ndarray,
    n_servers: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold per-client aggregates onto servers through the 1-M mapping.

    Returns
    -------
    (reads, writes):
        Two (n_servers, n_objects) int matrices; entry [i, k] counts the
        requests of all clients attached to server i for object k.
    """
    client_to_server = np.asarray(client_to_server, dtype=np.int64)
    if client_to_server.shape != (trace.n_clients,):
        raise ConfigurationError(
            f"mapping has shape {client_to_server.shape}, "
            f"expected ({trace.n_clients},)"
        )
    if len(client_to_server) and (
        client_to_server.min() < 0 or client_to_server.max() >= n_servers
    ):
        raise ConfigurationError("client mapping references server out of range")
    agg = aggregate_trace(trace)
    reads = np.zeros((n_servers, agg.n_objects), dtype=np.int64)
    writes = np.zeros((n_servers, agg.n_objects), dtype=np.int64)
    np.add.at(reads, client_to_server, agg.reads)
    np.add.at(writes, client_to_server, agg.writes)
    return reads, writes
