"""Direct synthesis of DRP read/write matrices.

For parameter sweeps it is cheaper to synthesize the (M, N) matrices
directly than to sample and aggregate millions of individual requests.
:func:`synthesize_workload` produces matrices with the same statistical
character as the trace pipeline — Zipf object popularity, skewed server
activity, controllable R/W ratio — and is what the experiment harness
uses for Figures 3–4 and Tables 1–2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator, spawn_children
from repro.utils.validation import check_fraction, check_positive, check_positive_int
from repro.workload.zipf import zipf_weights


@dataclass(frozen=True)
class SyntheticWorkload:
    """Bundle of synthesized DRP inputs.

    Attributes
    ----------
    reads, writes:
        (M, N) integer request-count matrices.
    sizes:
        (N,) positive integer object sizes in data units.
    rw_ratio:
        The requested fraction of reads among all requests.
    """

    reads: np.ndarray
    writes: np.ndarray
    sizes: np.ndarray
    rw_ratio: float

    @property
    def n_servers(self) -> int:
        return self.reads.shape[0]

    @property
    def n_objects(self) -> int:
        return self.reads.shape[1]

    def total_requests(self) -> int:
        return int(self.reads.sum() + self.writes.sum())

    def realized_rw_ratio(self) -> float:
        total = self.total_requests()
        if total == 0:
            raise ConfigurationError("empty workload has no R/W ratio")
        return float(self.reads.sum() / total)


def synthesize_workload(
    n_servers: int,
    n_objects: int,
    *,
    total_requests: int = 100_000,
    rw_ratio: float = 0.75,
    popularity_alpha: float = 0.85,
    server_skew: float = 0.6,
    mean_object_size: float = 12.0,
    size_cv: float = 1.0,
    seed: SeedLike = None,
) -> SyntheticWorkload:
    """Synthesize (reads, writes, sizes) for a DRP instance.

    The expected request mass for cell (i, k) factorizes as
    ``total * server_activity[i] * object_popularity[k]``; actual counts
    are Poisson around that mean, then split read/write by ``rw_ratio``
    (binomially, so the realized ratio concentrates on the requested one).

    Parameters
    ----------
    rw_ratio:
        Fraction of requests that are reads — the paper's R/W knob
        (R/W = 0.95 means a 95%-read workload).
    server_skew:
        Zipf exponent of per-server activity; 0 gives uniform servers.
    """
    n_servers = check_positive_int(n_servers, "n_servers")
    n_objects = check_positive_int(n_objects, "n_objects")
    if total_requests < 0:
        raise ConfigurationError("total_requests must be >= 0")
    check_fraction(rw_ratio, "rw_ratio")
    check_positive(popularity_alpha, "popularity_alpha")
    if server_skew < 0:
        raise ConfigurationError("server_skew must be >= 0")
    check_positive(mean_object_size, "mean_object_size")
    if size_cv < 0:
        raise ConfigurationError("size_cv must be >= 0")

    rng_sizes, rng_counts, rng_split, rng_perm = spawn_children(
        as_generator(seed), 4
    )

    pop = zipf_weights(n_objects, popularity_alpha)
    pop = pop[rng_perm.permutation(n_objects)]
    if server_skew == 0:
        act = np.full(n_servers, 1.0 / n_servers)
    else:
        act = zipf_weights(n_servers, server_skew)
        act = act[rng_perm.permutation(n_servers)]

    mean = total_requests * np.outer(act, pop)
    counts = rng_counts.poisson(mean)
    reads = rng_split.binomial(counts, rw_ratio)
    writes = counts - reads

    if size_cv == 0:
        sizes = np.full(n_objects, round(mean_object_size))
    else:
        sigma2 = math.log(1.0 + size_cv**2)
        mu = math.log(mean_object_size) - sigma2 / 2.0
        sizes = np.round(rng_sizes.lognormal(mu, math.sqrt(sigma2), size=n_objects))
    sizes = np.maximum(1, sizes).astype(np.int64)

    return SyntheticWorkload(
        reads=reads.astype(np.int64),
        writes=writes.astype(np.int64),
        sizes=sizes,
        rw_ratio=rw_ratio,
    )
