"""Request-trace data structures.

A :class:`Trace` is an ordered sequence of :class:`Request` records plus an
:class:`ObjectCatalog` describing the objects the requests touch.  The DRP
only consumes aggregates (per-client per-object read/write counts and
object sizes); keeping the raw stream around lets tests check the
aggregation pipeline and lets examples replay traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Literal

import numpy as np

from repro.errors import ConfigurationError

RequestKind = Literal["read", "write"]


@dataclass(frozen=True)
class Request:
    """One access: ``client`` reads or writes ``obj`` at ``timestamp``."""

    client: int
    obj: int
    kind: RequestKind
    timestamp: float = 0.0
    size: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ConfigurationError(f"kind must be 'read' or 'write', got {self.kind!r}")
        if self.client < 0 or self.obj < 0:
            raise ConfigurationError("client and obj ids must be non-negative")


@dataclass
class ObjectCatalog:
    """Object identities and sizes (the paper's O_k / o_k).

    Sizes are in "simple data units" (the paper used blocks; 1 unit = 1 kB
    in its cost mapping).
    """

    sizes: np.ndarray
    names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.sizes = np.asarray(self.sizes, dtype=np.int64)
        if self.sizes.ndim != 1 or len(self.sizes) == 0:
            raise ConfigurationError("sizes must be a non-empty 1-D array")
        if np.any(self.sizes <= 0):
            raise ConfigurationError("object sizes must be positive")
        if self.names and len(self.names) != len(self.sizes):
            raise ConfigurationError(
                f"{len(self.names)} names for {len(self.sizes)} objects"
            )
        if not self.names:
            self.names = [f"object-{k}" for k in range(len(self.sizes))]

    @property
    def n_objects(self) -> int:
        return len(self.sizes)

    def total_size(self) -> int:
        return int(self.sizes.sum())


@dataclass
class RequestStream:
    """A *lazy* request stream over a catalog.

    Where :class:`Trace` materializes every :class:`Request` up front,
    a ``RequestStream`` wraps a generator so million-request serving
    campaigns hold one chunk of requests in memory at a time.  The
    stream is single-pass: iterate it once, or call
    :meth:`materialize` to collect it into a :class:`Trace` (tests,
    small campaigns).

    ``length`` is the declared number of requests the generator will
    yield (serving campaigns use it for progress/SLO accounting without
    consuming the stream).
    """

    catalog: ObjectCatalog
    requests: Iterator[Request]
    n_clients: int
    length: int

    def __post_init__(self) -> None:
        if self.n_clients < 0 or self.length < 0:
            raise ConfigurationError("n_clients and length must be >= 0")

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __len__(self) -> int:
        return self.length

    def materialize(self) -> "Trace":
        """Drain the stream into an ordinary :class:`Trace`."""
        return Trace(
            catalog=self.catalog,
            requests=list(self.requests),
            n_clients=self.n_clients,
        )


@dataclass
class Trace:
    """An ordered request stream over a catalog."""

    catalog: ObjectCatalog
    requests: list[Request] = field(default_factory=list)
    n_clients: int = 0

    def __post_init__(self) -> None:
        max_client = -1
        for r in self.requests:
            if r.obj >= self.catalog.n_objects:
                raise ConfigurationError(
                    f"request references object {r.obj} outside catalog "
                    f"of {self.catalog.n_objects}"
                )
            max_client = max(max_client, r.client)
        if self.n_clients == 0:
            self.n_clients = max_client + 1
        elif max_client >= self.n_clients:
            raise ConfigurationError(
                f"request references client {max_client} but n_clients={self.n_clients}"
            )

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def extend(self, requests: Iterable[Request]) -> None:
        for r in requests:
            if r.obj >= self.catalog.n_objects:
                raise ConfigurationError(
                    f"request references object {r.obj} outside catalog"
                )
            self.requests.append(r)
            self.n_clients = max(self.n_clients, r.client + 1)

    def n_reads(self) -> int:
        return sum(1 for r in self.requests if r.kind == "read")

    def n_writes(self) -> int:
        return len(self.requests) - self.n_reads()

    def read_write_ratio(self) -> float:
        """Fraction of requests that are reads (the paper's R/W knob)."""
        if not self.requests:
            raise ConfigurationError("empty trace has no read/write ratio")
        return self.n_reads() / len(self.requests)
